//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the panic-free `lock()`/`read()`/`write()` API shape of
//! `parking_lot` (no `Result`, poisoning is ignored) over the std
//! primitives, so callers keep the exact call sites they would have with
//! the real crate.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
