//! Offline stand-in for `criterion`.
//!
//! Benches are authored against the real criterion API (`criterion_group!`,
//! `criterion_main!`, `BenchmarkGroup::bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BenchmarkId`) and this crate runs them with a
//! plain wall-clock harness: per benchmark it performs a warmup iteration
//! plus `sample_size` timed samples and prints min/median/mean. No plots,
//! no statistics engine, no baseline storage — the printed series is the
//! deliverable (the paper-shape claims live in `cargo test`, not here).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Batching hint, accepted for API compatibility; the stub harness always
/// runs setup once per timed sample, which matches `SmallInput` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup per sample (the only behavior the stub implements).
    SmallInput,
    /// Treated as `SmallInput`.
    LargeInput,
    /// Treated as `SmallInput`.
    PerIteration,
}

/// Timing callback handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warmup
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.into_id(), &mut bencher.samples);
        self
    }

    /// Ends the group (separator line in the report).
    pub fn finish(self) {
        println!();
    }
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples (bench closure never called iter)");
        return;
    }
    samples.sort();
    let min = samples.first().copied().unwrap_or_default();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len().max(1) as u32;
    println!(
        "{group}/{id}: min {} | median {} | mean {} ({} samples)",
        fmt_dur(min),
        fmt_dur(median),
        fmt_dur(mean),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Harness entry point; one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        report("bench", id, &mut bencher.samples);
        self
    }
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
