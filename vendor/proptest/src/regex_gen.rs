//! Generator for the regex subset used as string strategies.
//!
//! Supported syntax: literal chars, escapes (`\n \t \r \- \" \\` and other
//! escaped punctuation as literals), character classes with ranges
//! (`[a-z0-9_ ']`), groups with alternation (`(a|bb|ccc)`), quantifiers
//! (`{m}`, `{m,n}`, `?`, `*`, `+`), and `\PC` (any non-control Unicode
//! scalar, approximated by printable ASCII plus a spread of wider scalars).
//! Unsupported constructs panic with the offending pattern so a new test's
//! needs surface immediately.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Inclusive char ranges, uniformly weighted by span.
    Class(Vec<(char, char)>),
    /// `\PC` — any non-control scalar.
    NonControl,
    /// `(a|b|c)` — one branch, each a sequence.
    Alt(Vec<Vec<Node>>),
    /// `node{m,n}` (also `?`, `*`, `+` with bounded max).
    Rep(Box<Node>, u32, u32),
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = Parser::new(pattern).parse_sequence(true);
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.usize_below(total as usize) as u32;
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class range is valid"));
                    return;
                }
                pick -= span;
            }
            unreachable!("pick within total span");
        }
        Node::NonControl => out.push(rng.printable_char()),
        Node::Alt(branches) => {
            for n in &branches[rng.usize_below(branches.len())] {
                emit(n, rng, out);
            }
        }
        Node::Rep(inner, min, max) => {
            let n = *min + rng.usize_below((*max - *min + 1) as usize) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            pattern,
            chars: pattern.chars().peekable(),
        }
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!(
            "regex strategy: unsupported {what} in pattern {:?}",
            self.pattern
        );
    }

    /// Parses a sequence of quantified atoms, optionally splitting on `|`
    /// at this level (top level and inside groups).
    fn parse_sequence(&mut self, top: bool) -> Vec<Node> {
        let mut branches: Vec<Vec<Node>> = vec![Vec::new()];
        loop {
            match self.chars.peek().copied() {
                None => break,
                Some(')') if !top => break,
                Some(')') => self.unsupported("unbalanced ')'"),
                Some('|') => {
                    self.chars.next();
                    branches.push(Vec::new());
                }
                Some(_) => {
                    let atom = self.parse_atom();
                    let atom = self.parse_quantifier(atom);
                    branches.last_mut().expect("non-empty").push(atom);
                }
            }
        }
        if branches.len() == 1 {
            branches.pop().expect("non-empty")
        } else {
            vec![Node::Alt(branches)]
        }
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next().expect("peeked") {
            '\\' => self.parse_escape(),
            '[' => self.parse_class(),
            '(' => {
                let inner = self.parse_sequence(false);
                match self.chars.next() {
                    Some(')') => {}
                    _ => self.unsupported("unterminated group"),
                }
                // A group is just its (possibly single-branch) sequence.
                if inner.len() == 1 {
                    inner.into_iter().next().expect("len checked")
                } else {
                    Node::Alt(vec![inner])
                }
            }
            '.' => Node::NonControl,
            c @ ('*' | '+' | '?' | '{') => self.unsupported(&format!("dangling quantifier '{c}'")),
            c => Node::Lit(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.chars.next() {
            Some('n') => Node::Lit('\n'),
            Some('t') => Node::Lit('\t'),
            Some('r') => Node::Lit('\r'),
            Some('P') => {
                // Single-letter negated category: only \PC is supported.
                match self.chars.next() {
                    Some('C') => Node::NonControl,
                    other => self.unsupported(&format!("\\P{other:?}")),
                }
            }
            Some('p') => self.unsupported("\\p category"),
            Some('d') => Node::Class(vec![('0', '9')]),
            Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            Some('s') => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
            Some(c) => Node::Lit(c),
            None => self.unsupported("trailing backslash"),
        }
    }

    fn parse_class(&mut self) -> Node {
        if self.chars.peek() == Some(&'^') {
            self.unsupported("negated class");
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match self.chars.next() {
                None => self.unsupported("unterminated class"),
                Some(']') => break,
                Some('\\') => match self.parse_escape() {
                    Node::Lit(c) => c,
                    Node::Class(mut rs) => {
                        ranges.append(&mut rs);
                        continue;
                    }
                    _ => self.unsupported("escape in class"),
                },
                Some(c) => c,
            };
            // Range `c-x` (a '-' right before ']' is a literal).
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&n| n != ']') {
                    self.chars.next();
                    let hi = match self.chars.next() {
                        Some('\\') => match self.parse_escape() {
                            Node::Lit(c) => c,
                            _ => self.unsupported("range endpoint"),
                        },
                        Some(h) => h,
                        None => self.unsupported("unterminated range"),
                    };
                    assert!(c <= hi, "regex strategy: inverted range {c}-{hi}");
                    ranges.push((c, hi));
                    continue;
                }
            }
            ranges.push((c, c));
        }
        if ranges.is_empty() {
            self.unsupported("empty class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek().copied() {
            Some('?') => {
                self.chars.next();
                Node::Rep(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.chars.next();
                Node::Rep(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Node::Rep(Box::new(atom), 1, 8)
            }
            Some('{') => {
                self.chars.next();
                let mut min = String::new();
                while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    min.push(self.chars.next().expect("peeked"));
                }
                let min: u32 = min
                    .parse()
                    .unwrap_or_else(|_| self.unsupported("quantifier"));
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let mut max = String::new();
                        while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                            max.push(self.chars.next().expect("peeked"));
                        }
                        match self.chars.next() {
                            Some('}') => {}
                            _ => self.unsupported("unterminated quantifier"),
                        }
                        max.parse().unwrap_or(min + 8)
                    }
                    _ => self.unsupported("unterminated quantifier"),
                };
                if max < min {
                    self.unsupported(&format!("inverted quantifier {{{min},{max}}}"));
                }
                Node::Rep(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("regex_gen", 0)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,6}", &mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().expect("non-empty").is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn alternation_group() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("(lower|upper|abs|coalesce)", &mut r);
            assert!(
                ["lower", "upper", "abs", "coalesce"].contains(&s.as_str()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn escapes_in_class() {
        let mut r = rng();
        let allowed = |c: char| c.is_ascii_alphanumeric() || " _-\n\t\"\\".contains(c);
        for _ in 0..300 {
            let s = generate("[a-zA-Z0-9 _\\-\\n\\t\"\\\\]{0,20}", &mut r);
            assert!(s.chars().all(allowed), "{s:?}");
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn non_control() {
        let mut r = rng();
        for _ in 0..300 {
            let s = generate("\\PC{0,80}", &mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 80);
        }
    }
}
