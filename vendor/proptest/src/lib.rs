//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! slice of the proptest API the KathDB property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_recursive`, [`Just`](strategy::Just), tuple and range strategies,
//! regex-subset string strategies, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros.
//!
//! Differences from the real crate, chosen for an offline, deterministic
//! test suite:
//!
//! - **No shrinking.** A failing case reports its inputs via the assertion
//!   message (all generated bindings are `Debug`-printed by `proptest!`).
//! - **Deterministic seeding.** Case `i` of test `t` always sees the same
//!   inputs (seeded from a hash of the test path and `i`), so CI runs are
//!   reproducible.
//! - **Regex strategies** support the subset actually used by the tests:
//!   literals, escapes, character classes, `(a|b)` groups, `{m,n}` / `?` /
//!   `*` / `+` quantifiers, and `\PC` (any non-control scalar).

pub mod strategy;
pub mod test_runner;

mod regex_gen;

/// `any::<T>()` — the "arbitrary value of `T`" strategy.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, symmetric around zero; magnitudes span many decades.
            let mag = rng.f64_unit();
            let exp = rng.usize_below(25) as i32 - 12;
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            sign * mag * 10f64.powi(exp)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.printable_char()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary + std::fmt::Debug> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Container/combinator strategy modules (`prop::collection`, `prop::option`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.usize_below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `prop::option::of`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (`None` one time in four).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.usize_below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between heterogeneous strategies sharing a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `name in strategy` binding is generated
/// fresh for every case; the body runs once per case with `prop_assert*!`
/// failures reported alongside the case number and generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        case + 1, config.cases, err, inputs
                    );
                }
            }
        }
    )*};
}
