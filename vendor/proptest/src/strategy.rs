//! The [`Strategy`] trait and its combinators.

use crate::regex_gen;
use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// draws one concrete value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// sub-values and returns the strategy for one composite level. `depth`
    /// bounds nesting; the remaining proptest parameters (desired size,
    /// expected branch size) are accepted for API compatibility but unused
    /// because generation is bounded structurally rather than by size
    /// accounting.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mixing the leaf back in at every level makes generated trees
            // vary in depth instead of always bottoming out at `depth`.
            let inner = Union::new(vec![leaf.clone(), level]).boxed();
            level = recurse(inner).boxed();
        }
        Union::new(vec![leaf, level]).boxed()
    }

    /// Type-erases the strategy (cheaply clonable via `Arc`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice across type-erased alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---- Range strategies -------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.f64_unit() * (self.end - self.start);
        // Interpolation can round up to the exclusive bound; keep half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.f64_unit() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// ---- Regex string strategies ------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

// ---- Tuple strategies -------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
