//! Deterministic RNG, config, and error types for the `proptest!` harness.

use std::fmt;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// A failed case, carrying the assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator, seeded deterministically from the test path and
/// case index so every CI run sees identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from `(test_path, case)` via FNV-1a.
    pub fn deterministic(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes().chain(case.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// A printable scalar: mostly ASCII, sometimes wider Unicode.
    pub fn printable_char(&mut self) -> char {
        const WIDE: &[char] = &[
            'é', 'ß', 'Ø', 'λ', 'Ω', 'ж', 'ü', '€', '¥', '±', '∑', '√', '日', '本', '語', '中',
            '文', '한', '글', '🙂', '🦀', '🌍',
        ];
        if self.usize_below(5) == 0 {
            WIDE[self.usize_below(WIDE.len())]
        } else {
            char::from(0x20 + self.usize_below(0x5F) as u8)
        }
    }
}
