//! Offline stand-in for the `rand` 0.8 API surface KathDB uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — statistically fine for corpus synthesis
//! and benchmarking, deterministic for a fixed seed (which is all the
//! `kath-data` generators require). Not cryptographically secure.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Types usable as `gen_range` endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Vigna 2015).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }
}
