//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of the `bytes` API that
//! `kath-storage`'s binary persistence layer uses: [`Bytes`], [`BytesMut`],
//! and big-endian [`Buf`]/[`BufMut`] accessors. Semantics (byte order,
//! panics on out-of-bounds reads) match the real crate so swapping the
//! genuine dependency back in is a one-line manifest change.

use std::ops::Deref;

/// An immutable byte buffer, produced by [`BytesMut::freeze`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer implementing [`BufMut`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (big-endian, like the real `bytes` crate).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64);
    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn put_u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
}

/// Read-side accessors (big-endian). Implemented for `&[u8]`, advancing the
/// slice in place. Reads past the end panic, exactly like the real crate —
/// callers are expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64;
    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().unwrap())
    }
    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_be_bytes(head.try_into().unwrap())
    }
    fn get_i64(&mut self) -> i64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        i64::from_be_bytes(head.try_into().unwrap())
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_i64(-42);
        b.put_f64(1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.remaining(), 3);
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::new();
        b.put_u32(1);
        assert_eq!(&b[..], &[0, 0, 0, 1]);
    }
}
