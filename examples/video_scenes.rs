//! Video scene graphs (§3): two videos — "a man jumped off a plane" and
//! "a dog fell into a pool" — populated into the Table-1 relational views
//! with object tracking across frames, then queried with plain SQL and
//! scored for "excitement" the way the paper's example distinguishes them:
//! the scene graph lets KathDB explain why the dog in the pool does *not*
//! make a movie exciting.
//!
//! ```sh
//! cargo run --example video_scenes
//! ```

use kath_media::{BBox, Image, ImageObject, MediaFormat, Video};
use kath_model::{SimLlm, SimVlm, TokenMeter};
use kath_multimodal::{populate_video, SceneGraphViews};
use kath_storage::Catalog;

fn tracked(class: &str, track: u32, y: f64) -> ImageObject {
    let mut o = ImageObject::new(class, BBox::new(0.3, y, 0.5, (y + 0.25).min(1.0)));
    o.track_id = Some(track);
    o
}

fn main() {
    // Video 1: a man (track 1) and a plane (track 2); across frames the man
    // moves downward — the "jumped off a plane" scene.
    let plane_jump = Video::new("vid://plane_jump/1")
        .with_frame(
            Image::new("f0.png", MediaFormat::Png)
                .with_object(tracked("person", 1, 0.1))
                .with_object(tracked("plane", 2, 0.05))
                .with_rel(0, "inside", 1),
        )
        .with_frame(
            Image::new("f1.png", MediaFormat::Png)
                .with_object(tracked("person", 1, 0.4))
                .with_object(tracked("plane", 2, 0.05))
                .with_rel(0, "below", 1),
        )
        .with_frame(
            Image::new("f2.png", MediaFormat::Png)
                .with_object(tracked("person", 1, 0.75))
                .with_object(tracked("plane", 2, 0.05))
                .with_rel(0, "below", 1),
        );

    // Video 2: a dog (track 1) and a pool (track 2) — the not-actually-
    // dangerous scene.
    let dog_pool = Video::new("vid://dog_pool/2")
        .with_frame(
            Image::new("g0.png", MediaFormat::Png)
                .with_object(tracked("dog", 1, 0.3))
                .with_object(tracked("pool", 2, 0.7))
                .with_rel(0, "above", 1),
        )
        .with_frame(
            Image::new("g1.png", MediaFormat::Png)
                .with_object(tracked("dog", 1, 0.65))
                .with_object(tracked("pool", 2, 0.7))
                .with_rel(0, "inside", 1),
        );

    // Populate the Table-1 views.
    let vlm = SimVlm::accurate(7, TokenMeter::new());
    let mut views = SceneGraphViews::empty();
    let mut next_lid = {
        let mut c = 0i64;
        move || {
            c += 1;
            c
        }
    };
    populate_video(&mut views, 1, &plane_jump, &vlm, &mut next_lid).expect("video 1");
    populate_video(&mut views, 2, &dog_pool, &vlm, &mut next_lid).expect("video 2");

    println!("== Objects view (Table 1) ==");
    println!("{}", views.objects.render());
    println!("== Relationships view ==");
    println!("{}", views.relationships.render());

    // Query the views with plain SQL: which videos show something falling
    // ("below"/"inside" transitions of a tracked subject)?
    let mut catalog = Catalog::new();
    catalog.register(views.objects.clone()).expect("register");
    catalog
        .register(views.relationships.clone())
        .expect("register");
    let per_video = kath_sql::execute(
        &mut catalog,
        "SELECT vid, COUNT(*) AS n_relationships FROM scene_relationships \
         GROUP BY vid ORDER BY vid",
        "rel_counts",
    )
    .expect("sql runs");
    println!("== SQL over the views: relationships per video ==");
    println!("{}", per_video.render());

    // Score each video's NL scene description against "danger" keywords —
    // the embedding-based reasoning that lets KathDB call the plane jump
    // exciting and the pool splash mundane (§3).
    let llm = SimLlm::new(42, TokenMeter::new());
    let keywords = llm.generate_keywords("dangerous scenes that are uncommon in real life");
    println!("== Concept scoring of the two scenes ==");
    for (desc, label) in [
        ("a man jumped off a plane", "plane_jump"),
        ("a dog fell into a pool", "dog_pool"),
    ] {
        let score = llm.concept_score(desc, &keywords);
        println!("{label:<12} \"{desc}\"  danger score = {score:.3}");
    }
    println!(
        "\nThe scene-graph views plus concept scoring explain *why*: the jump \
         involves a person and a plane (uncommon, dangerous classes), the \
         splash involves a dog and a pool (common, benign)."
    );
}
