//! The flagship pipeline end to end, printing every intermediate artifact
//! the paper's figures show: the clarification dialogue (Fig. 4), the sketch
//! versions, the logical plan in its exact JSON layout (Fig. 3), the
//! verifier report, the optimizer's selections, and the final table (Fig. 6).
//!
//! ```sh
//! cargo run --example movie_excitement
//! ```

use kath_data::mmqa_small;
use kath_json::to_string_pretty;
use kath_model::ScriptedChannel;
use kathdb::KathDB;

fn main() {
    let mut db = KathDB::new(42);
    db.load_corpus(&mmqa_small()).expect("corpus loads");

    let channel = ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "Oh I prefer a more recent movie as well when scoring",
        "OK",
    ]);
    let result = db
        .query(
            "Sort the given films in the table by how exciting they are, \
             but the poster should be 'boring'",
            channel.as_ref(),
        )
        .expect("query runs");

    println!("== Interaction transcript (Fig. 4) ==");
    for (question, reply) in channel.transcript() {
        let q = question.lines().next().unwrap_or(&question);
        println!("KathDB: {q}");
        if !reply.is_empty() {
            println!("User:   {reply}");
        }
    }

    println!("\n== Sketch versions ==");
    for sketch in &result.parse.history {
        println!("{}", sketch.render());
    }

    println!("== Logical plan (exact JSON layout, Fig. 3) ==");
    println!("{}", to_string_pretty(&result.logical.to_json()));

    println!("\n== Plan verification ==");
    println!(
        "approved: {} after {} round(s), {} tool invocation(s)",
        result.verification.approved,
        result.verification.rounds,
        result.verification.tool_invocations
    );

    println!("\n== Optimizer ==");
    for r in &result.compile.rewrites {
        println!("rewrite [{}]: {}", r.rule, r.detail);
    }
    for s in &result.compile.selections {
        println!(
            "selection: {} -> {} ({} candidates, cost {:.0}, accuracy {:.2})",
            s.func_id, s.chosen, s.candidates, s.cost, s.accuracy
        );
    }
    for c in &result.compile.critiques {
        println!(
            "critique: {} v{} -> v{} ({})",
            c.func_id, c.from_ver, c.to_ver, c.hint
        );
    }

    println!("\n== Execution ==");
    for t in &result.exec.timings {
        println!(
            "{:<24} {:>8.2} ms  {:>5} rows",
            t.func_id, t.elapsed_ms, t.rows_out
        );
    }

    println!("\n== Final result (Fig. 6) ==");
    println!("{}", result.display_table().render());
}
