//! Interactive-style result explanation (§5, Fig. 5): run the flagship
//! query, then walk the provenance graph — the Table-3 lineage relation,
//! coarse pipeline explanation, fine-grained per-tuple derivations, and NL
//! questions over the lineage.
//!
//! ```sh
//! cargo run --example lineage_explorer
//! ```

use kath_data::mmqa_small;
use kath_model::ScriptedChannel;
use kathdb::KathDB;

fn main() {
    let mut db = KathDB::new(42);
    db.load_corpus(&mmqa_small()).expect("corpus loads");
    let channel = ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "Oh I prefer a more recent movie as well when scoring",
        "OK",
    ]);
    let result = db
        .query(
            "Sort the given films in the table by how exciting they are, \
             but the poster should be 'boring'",
            channel.as_ref(),
        )
        .expect("query runs");

    // The unified lineage relation (Table 3 / Fig. 2).
    let lineage = db.lineage_table().expect("lineage renders");
    println!(
        "== Lineage relation: {} edges (showing the last 8, cf. Fig. 2) ==",
        lineage.len()
    );
    let tail_start = lineage.len().saturating_sub(8);
    let mut tail = kath_storage::Table::new("lineage_tail", lineage.schema().clone());
    for row in &lineage.rows()[tail_start..] {
        tail.push(row.clone()).unwrap();
    }
    println!("{}", tail.render());

    // Coarse mode (Fig. 5 left).
    println!("== Q: Explain the pipeline? ==");
    println!("{}", db.explain("Explain the pipeline?").unwrap());

    // Fine mode (Fig. 5 right) for every result tuple.
    let display = result.display_table();
    let lid_col = display.schema().index_of("lid").expect("lid column");
    for row in display.rows().iter().take(2) {
        let lid = row[lid_col].as_int().expect("integer lid");
        println!("== Q: Explain tuple {lid}? ==");
        println!("{}", db.explain(&format!("Explain tuple {lid}?")).unwrap());
    }

    // Other NL questions the explainer answers.
    for q in [
        "what produced column final_score?",
        "how many versions of classify_boring exist?",
    ] {
        println!("== Q: {q} ==");
        println!("{}\n", db.explain(q).unwrap());
    }
}
