//! On-the-fly error repair (§5): a corpus whose posters include unsupported
//! HEIC files. The first execution of `classify_boring` fails on those rows;
//! the monitor's reviewer diagnoses the exception, the rewriter patches the
//! function (adding a format-conversion step), the version bumps, and the
//! pipeline resumes — tuples unaffected by the error kept flowing.
//!
//! ```sh
//! cargo run --example self_repair
//! ```

use kath_data::{generate_corpus, CorpusSpec};
use kath_model::ScriptedChannel;
use kathdb::KathDB;

fn main() {
    // 10% of posters are HEIC — the exact failure of the paper's example.
    let corpus = generate_corpus(&CorpusSpec {
        movies: 40,
        exciting_fraction: 0.5,
        boring_fraction: 0.5,
        heic_fraction: 0.10,
        seed: 9,
    });
    let heic = corpus
        .images
        .iter()
        .filter(|i| !i.format.is_supported())
        .count();
    println!(
        "corpus: {} movies, {} HEIC poster(s)\n",
        corpus.movies.len(),
        heic
    );

    let mut db = KathDB::new(42);
    db.load_corpus(&corpus).expect("corpus loads");

    let channel = ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "OK",
    ]);
    let result = db
        .query(
            "Sort the given films in the table by how exciting they are, \
             but the poster should be 'boring'",
            channel.as_ref(),
        )
        .expect("query survives the HEIC rows via self-repair");

    println!("== Repairs performed by the monitor ==");
    if result.exec.repairs.is_empty() {
        println!("(none needed)");
    }
    for r in &result.exec.repairs {
        println!(
            "{}: v{} -> v{}\n  diagnosis: {}\n  {} unaffected tuple(s) continued, {} reprocessed",
            r.func_id, r.from_ver, r.to_ver, r.diagnosis, r.unaffected_tuples, r.failed_tuples
        );
    }

    println!("\n== Version history of the repaired functions ==");
    for name in db.registry().names() {
        let entry = db.registry().get(name).expect("listed name");
        if entry.versions.len() > 1 {
            for v in &entry.versions {
                println!("{name} v{}: {}", v.ver_id, v.note);
            }
        }
    }

    println!("\n== Final result (top 5) ==");
    let display = result.display_table();
    println!("{}", display.sample(5).render());
    println!(
        "({} result rows; every HEIC poster was classified after the repair)",
        display.len()
    );
}
