//! Quickstart: load the MMQA-like corpus, run the paper's flagship NL query
//! with scripted user replies, and print the final ranked table (Fig. 6).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use kath_data::mmqa_small;
use kath_model::ScriptedChannel;
use kathdb::KathDB;

fn main() {
    // 1. A fresh KathDB instance (seed fixes all simulated-model behavior).
    let mut db = KathDB::new(42);

    // 2. Ingest the corpus: a movie table plus plot documents and poster
    //    image descriptors.
    db.load_corpus(&mmqa_small()).expect("corpus loads");

    // 3. The paper's query, with the user replies of §6 scripted:
    //    one clarification, one reactive correction, then approval.
    let channel = ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "Oh I prefer a more recent movie as well when scoring",
        "OK",
    ]);
    let result = db
        .query(
            "Sort the given films in the table by how exciting they are, \
             but the poster should be 'boring'",
            channel.as_ref(),
        )
        .expect("query runs");

    // 4. The final ranked list (Fig. 6).
    println!("{}", result.display_table().render());

    // 5. One-line explanation of how the winner was derived.
    let lid = result.top_lid().expect("lids present");
    println!("{}", db.explain(&format!("explain tuple {lid}")).unwrap());

    println!(
        "simulated token usage: {} tokens over {} model calls",
        db.token_usage().total(),
        db.token_usage().calls
    );
}
