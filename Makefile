# Developer / CI entry points. `make verify` is the tier-1 gate.

CARGO ?= cargo

.PHONY: verify build test bench bench-no-run bench-smoke recovery-smoke chaos-smoke session-smoke clippy fmt lint lint-baseline examples figures

EXAMPLES := $(basename $(notdir $(wildcard examples/*.rs)))

verify: fmt build test clippy lint bench-no-run recovery-smoke chaos-smoke session-smoke examples

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

bench:
	$(CARGO) bench -p kath_bench

bench-no-run:
	$(CARGO) bench --no-run

# Quick end-to-end runs of the perf benches (small corpora, few reps):
# prove the morsel-parallel, durable-recovery, vector-search, paged
# out-of-core storage, compiled-pipeline, and concurrent-transaction
# paths still run and refresh BENCH_parallel.json / BENCH_recovery.json /
# BENCH_vector.json / BENCH_storage.json / BENCH_compiled.json /
# BENCH_txn.json's schemas without the full sweeps.
bench-smoke:
	$(CARGO) run -q --release -p kath_bench --bin parallel_bench -- --quick
	$(CARGO) run -q --release -p kath_bench --bin recovery_bench -- --quick
	$(CARGO) run -q --release -p kath_bench --bin vector_bench -- --quick
	$(CARGO) run -q --release -p kath_bench --bin storage_bench -- --quick
	$(CARGO) run -q --release -p kath_bench --bin compiled_bench -- --quick
	$(CARGO) run -q --release -p kath_bench --bin fault_bench -- --quick
	$(CARGO) run -q --release -p kath_bench --bin txn_bench -- --quick

# Crash-recovery smoke: a child process populates a durable DB (WAL-logged
# inserts around a checkpoint) and dies via abort(); the parent reopens and
# asserts every committed row survived.
recovery-smoke:
	$(CARGO) run -q --release -p kath_bench --bin recovery_smoke

# Fault-injection smoke: seeded fault schedules on the I/O seam drive a
# durable SQL workload; the run asserts every failure is typed and a
# fault-free reopen recovers exactly the acknowledged prefix, plus a 0ms
# query-deadline cancellation leg (see docs/robustness.md).
chaos-smoke:
	$(CARGO) run -q --release -p kath_bench --bin chaos_smoke

# Concurrent-session smoke: 8 writer sessions commit framed transactions
# while 8 readers take MVCC snapshots under seeded interleavings; asserts
# no torn reads (every snapshot is a per-writer committed prefix of
# complete transactions) and that post-crash recovery — including a
# hand-torn Begin-without-Commit WAL tail — equals the acked commits
# exactly (see docs/concurrency.md). CI also runs this under
# KATHDB_FAULTS as a chaos leg.
session-smoke:
	$(CARGO) run -q --release -p kath_bench --bin session_smoke

fmt:
	$(CARGO) fmt --all --check

# Workspace static analysis: io-seam, panic ratchet, lock order, atomics,
# nondeterminism (see docs/static-analysis.md). Fails on any finding.
lint:
	$(CARGO) run -q --release -p kath_lint --bin kathdb-lint

# Regenerates lint-baseline.json from the current panic-site counts — the
# only sanctioned way to change the ratchet (it may only shrink).
lint-baseline:
	$(CARGO) run -q --release -p kath_lint --bin kathdb-lint -- --write-baseline

examples:
	for e in $(EXAMPLES); do \
		$(CARGO) run -q --release --example $$e </dev/null || exit 1; \
	done

figures:
	$(CARGO) run -q --release -p kath_bench --bin paper_figures
