# Developer / CI entry points. `make verify` is the tier-1 gate.

CARGO ?= cargo

.PHONY: verify build test bench bench-no-run bench-smoke clippy fmt examples figures

EXAMPLES := $(basename $(notdir $(wildcard examples/*.rs)))

verify: fmt build test clippy bench-no-run examples

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --all-targets -- -D warnings

bench:
	$(CARGO) bench -p kath_bench

bench-no-run:
	$(CARGO) bench --no-run

# Quick end-to-end run of the parallel perf bench (small corpus, few reps):
# proves the morsel-parallel path still runs and refreshes
# BENCH_parallel.json's schema without the full 100k-row sweep.
bench-smoke:
	$(CARGO) run -q --release -p kath_bench --bin parallel_bench -- --quick

fmt:
	$(CARGO) fmt --all --check

examples:
	for e in $(EXAMPLES); do \
		$(CARGO) run -q --release --example $$e </dev/null || exit 1; \
	done

figures:
	$(CARGO) run -q --release -p kath_bench --bin paper_figures
