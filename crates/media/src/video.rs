//! Video descriptors: frame sequences with object tracks.

use crate::{Image, MediaError};

/// A video is a sequence of frame descriptors; objects that persist across
/// frames share a `track_id`, which is what lets the scene-graph layer treat
/// "each unique object … tracked across frames" (§3).
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    /// Source URI.
    pub uri: String,
    /// Frames in order.
    pub frames: Vec<Image>,
    /// Frames per second (metadata).
    pub fps: f64,
}

impl Video {
    /// A new empty video.
    pub fn new(uri: impl Into<String>) -> Self {
        Self {
            uri: uri.into(),
            frames: Vec::new(),
            fps: 24.0,
        }
    }

    /// Appends a frame (builder style).
    pub fn with_frame(mut self, frame: Image) -> Self {
        self.frames.push(frame);
        self
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the video has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Distinct track ids across all frames.
    pub fn track_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .frames
            .iter()
            .flat_map(|f| f.objects.iter().filter_map(|o| o.track_id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Frames (index, frame) where a given track appears.
    pub fn track_frames(&self, track_id: u32) -> Vec<(usize, &Image)> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.objects.iter().any(|o| o.track_id == Some(track_id)))
            .collect()
    }

    /// Validates every frame descriptor.
    pub fn validate(&self) -> Result<(), MediaError> {
        for f in &self.frames {
            f.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BBox, ImageObject, MediaFormat};

    fn tracked(class: &str, track: u32) -> ImageObject {
        let mut o = ImageObject::new(class, BBox::new(0.1, 0.1, 0.4, 0.4));
        o.track_id = Some(track);
        o
    }

    fn video() -> Video {
        Video::new("vid://1")
            .with_frame(
                Image::new("f0", MediaFormat::Png)
                    .with_object(tracked("person", 1))
                    .with_object(tracked("dog", 2)),
            )
            .with_frame(Image::new("f1", MediaFormat::Png).with_object(tracked("person", 1)))
            .with_frame(Image::new("f2", MediaFormat::Png).with_object(tracked("pool", 3)))
    }

    #[test]
    fn tracks_are_collected_across_frames() {
        let v = video();
        assert_eq!(v.track_ids(), vec![1, 2, 3]);
        assert_eq!(v.track_frames(1).len(), 2);
        assert_eq!(v.track_frames(3).len(), 1);
        assert!(v.track_frames(9).is_empty());
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(video().len(), 3);
        assert!(!video().is_empty());
        assert!(Video::new("v").is_empty());
    }

    #[test]
    fn validate_propagates_frame_errors() {
        let bad_frame = Image::new("f", MediaFormat::Png)
            .with_object(ImageObject::new("a", BBox::new(0.0, 0.0, 0.1, 0.1)))
            .with_rel(0, "rel", 7);
        let v = Video::new("v").with_frame(bad_frame);
        assert!(v.validate().is_err());
    }
}
