//! Structured image descriptors.

use crate::{MediaError, MediaFormat};

/// An RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Constructs a color.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }

    /// HSV-style saturation in `[0,1]` — the "vivid colors" signal the
    /// paper's `classify_boring` body reads off the poster (§2.1).
    pub fn saturation(&self) -> f64 {
        let max = self.r.max(self.g).max(self.b) as f64;
        let min = self.r.min(self.g).min(self.b) as f64;
        if max == 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }

    /// Perceptual brightness in `[0,1]` (Rec. 601 luma).
    pub fn brightness(&self) -> f64 {
        (0.299 * self.r as f64 + 0.587 * self.g as f64 + 0.114 * self.b as f64) / 255.0
    }

    /// Whether this color reads as vivid (saturated and not too dark).
    pub fn is_vivid(&self) -> bool {
        self.saturation() > 0.5 && self.brightness() > 0.2
    }
}

/// An axis-aligned bounding box in relative coordinates `[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Upper-left x.
    pub x1: f64,
    /// Upper-left y.
    pub y1: f64,
    /// Bottom-right x.
    pub x2: f64,
    /// Bottom-right y.
    pub y2: f64,
}

impl BBox {
    /// Constructs a box; coordinates are clamped to `[0,1]` and ordered.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        let (x1, x2) = (x1.clamp(0.0, 1.0), x2.clamp(0.0, 1.0));
        let (y1, y2) = (y1.clamp(0.0, 1.0), y2.clamp(0.0, 1.0));
        Self {
            x1: x1.min(x2),
            y1: y1.min(y2),
            x2: x1.max(x2),
            y2: y1.max(y2),
        }
    }

    /// Box area (relative units).
    pub fn area(&self) -> f64 {
        (self.x2 - self.x1) * (self.y2 - self.y1)
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f64 {
        let ix1 = self.x1.max(other.x1);
        let iy1 = self.y1.max(other.y1);
        let ix2 = self.x2.min(other.x2);
        let iy2 = self.y2.min(other.y2);
        let iw = (ix2 - ix1).max(0.0);
        let ih = (iy2 - iy1).max(0.0);
        let inter = iw * ih;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Whether two boxes overlap at all.
    pub fn overlaps(&self, other: &BBox) -> bool {
        self.iou(other) > 0.0
    }
}

/// One object depicted in an image (what a detector would find).
#[derive(Debug, Clone, PartialEq)]
pub struct ImageObject {
    /// Class label, e.g. "person", "motorcycle".
    pub class: String,
    /// Location in the frame.
    pub bbox: BBox,
    /// Key/value attributes, e.g. ("color", "black").
    pub attributes: Vec<(String, String)>,
    /// How visually prominent the object is, `[0,1]`; detectors miss
    /// low-saliency objects first.
    pub saliency: f64,
    /// Legible text on the object, if any (what OCR would read).
    pub text: Option<String>,
    /// Track id shared by the same physical object across video frames.
    pub track_id: Option<u32>,
}

impl ImageObject {
    /// A minimal object with a class and box.
    pub fn new(class: impl Into<String>, bbox: BBox) -> Self {
        Self {
            class: class.into(),
            bbox,
            attributes: Vec::new(),
            saliency: 1.0,
            text: None,
            track_id: None,
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.attributes.push((k.into(), v.into()));
        self
    }

    /// Sets the saliency (builder style).
    pub fn with_saliency(mut self, s: f64) -> Self {
        self.saliency = s.clamp(0.0, 1.0);
        self
    }

    /// Sets legible text (builder style).
    pub fn with_text(mut self, t: impl Into<String>) -> Self {
        self.text = Some(t.into());
        self
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A structured image descriptor (the reproduction's stand-in for pixels).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Source URI, e.g. `file://posters/1621.png`.
    pub uri: String,
    /// Container format; unsupported formats fail the decode path.
    pub format: MediaFormat,
    /// Width in pixels (metadata only).
    pub width: u32,
    /// Height in pixels (metadata only).
    pub height: u32,
    /// Depicted objects.
    pub objects: Vec<ImageObject>,
    /// Dominant palette (up to ~8 colors).
    pub palette: Vec<Color>,
    /// Pairwise relationships: (subject idx, predicate, object idx).
    pub relationships: Vec<(usize, String, usize)>,
}

impl Image {
    /// A new empty image descriptor.
    pub fn new(uri: impl Into<String>, format: MediaFormat) -> Self {
        Self {
            uri: uri.into(),
            format,
            width: 1024,
            height: 1536,
            objects: Vec::new(),
            palette: Vec::new(),
            relationships: Vec::new(),
        }
    }

    /// Adds an object (builder style).
    pub fn with_object(mut self, o: ImageObject) -> Self {
        self.objects.push(o);
        self
    }

    /// Adds a palette color (builder style).
    pub fn with_color(mut self, c: Color) -> Self {
        self.palette.push(c);
        self
    }

    /// Adds a relationship between objects by index (builder style).
    pub fn with_rel(mut self, subj: usize, pred: impl Into<String>, obj: usize) -> Self {
        self.relationships.push((subj, pred.into(), obj));
        self
    }

    /// Validates internal consistency (relationship indices in range).
    pub fn validate(&self) -> Result<(), MediaError> {
        for (s, p, o) in &self.relationships {
            if *s >= self.objects.len() || *o >= self.objects.len() {
                return Err(MediaError::Malformed(format!(
                    "relationship '{p}' references object out of range"
                )));
            }
        }
        Ok(())
    }

    /// Simulated decode: fails exactly when the container format is
    /// unsupported, reproducing the cv2-on-HEIC failure of §5.
    pub fn decode(&self) -> Result<&Image, MediaError> {
        if self.format.is_supported() {
            Ok(self)
        } else {
            Err(MediaError::UnsupportedFormat(self.format))
        }
    }

    /// Converts to a supported format (what the rewriter agent's patch adds).
    pub fn convert_to(&self, format: MediaFormat) -> Image {
        let mut out = self.clone();
        out.format = format;
        out.uri = match self.uri.rsplit_once('.') {
            Some((stem, _)) => format!("{stem}.{}", format.extension()),
            None => format!("{}.{}", self.uri, format.extension()),
        };
        out
    }

    /// Fraction of palette colors that are vivid — the "lacks vivid colors"
    /// feature of `classify_boring` (§2.1).
    pub fn colorfulness(&self) -> f64 {
        if self.palette.is_empty() {
            return 0.0;
        }
        self.palette.iter().filter(|c| c.is_vivid()).count() as f64 / self.palette.len() as f64
    }

    /// Mean object saliency — the "little action" feature.
    pub fn visual_activity(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().map(|o| o.saliency).sum::<f64>() / self.objects.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_measures() {
        let red = Color::rgb(230, 20, 20);
        assert!(red.saturation() > 0.8);
        assert!(red.is_vivid());
        let grey = Color::rgb(120, 120, 120);
        assert_eq!(grey.saturation(), 0.0);
        assert!(!grey.is_vivid());
        let black = Color::rgb(0, 0, 0);
        assert_eq!(black.saturation(), 0.0);
        assert_eq!(black.brightness(), 0.0);
    }

    #[test]
    fn bbox_normalizes_and_measures() {
        let b = BBox::new(0.8, 0.9, 0.2, 0.1);
        assert!(b.x1 < b.x2 && b.y1 < b.y2);
        assert!((b.area() - 0.48).abs() < 1e-12);
        let c = BBox::new(0.0, 0.0, 0.2, 0.2);
        let d = BBox::new(0.1, 0.1, 0.3, 0.3);
        assert!(c.overlaps(&d));
        assert!(c.iou(&d) > 0.0 && c.iou(&d) < 1.0);
        assert!((c.iou(&c) - 1.0).abs() < 1e-12);
        let far = BBox::new(0.9, 0.9, 1.0, 1.0);
        assert_eq!(c.iou(&far), 0.0);
    }

    #[test]
    fn decode_respects_format_support() {
        let ok = Image::new("file://p/1.png", MediaFormat::Png);
        assert!(ok.decode().is_ok());
        let bad = Image::new("file://p/2.heic", MediaFormat::Heic);
        assert!(matches!(
            bad.decode(),
            Err(MediaError::UnsupportedFormat(MediaFormat::Heic))
        ));
    }

    #[test]
    fn convert_changes_format_and_uri() {
        let bad = Image::new("file://p/2.heic", MediaFormat::Heic);
        let good = bad.convert_to(MediaFormat::Png);
        assert!(good.decode().is_ok());
        assert_eq!(good.uri, "file://p/2.png");
    }

    #[test]
    fn colorfulness_and_activity() {
        let img = Image::new("u", MediaFormat::Png)
            .with_color(Color::rgb(230, 10, 10))
            .with_color(Color::rgb(128, 128, 128))
            .with_object(
                ImageObject::new("person", BBox::new(0.1, 0.1, 0.5, 0.9)).with_saliency(0.8),
            )
            .with_object(ImageObject::new("gun", BBox::new(0.4, 0.4, 0.6, 0.6)).with_saliency(0.6));
        assert!((img.colorfulness() - 0.5).abs() < 1e-12);
        assert!((img.visual_activity() - 0.7).abs() < 1e-12);
        let empty = Image::new("u", MediaFormat::Png);
        assert_eq!(empty.colorfulness(), 0.0);
        assert_eq!(empty.visual_activity(), 0.0);
    }

    #[test]
    fn validate_checks_relationship_indices() {
        let img = Image::new("u", MediaFormat::Png)
            .with_object(ImageObject::new("person", BBox::new(0.0, 0.0, 0.5, 0.5)))
            .with_rel(0, "holds", 3);
        assert!(img.validate().is_err());
    }

    #[test]
    fn object_attributes() {
        let o = ImageObject::new("car", BBox::new(0.0, 0.0, 1.0, 1.0))
            .with_attr("color", "black")
            .with_text("POLICE");
        assert_eq!(o.attr("color"), Some("black"));
        assert_eq!(o.attr("size"), None);
        assert_eq!(o.text.as_deref(), Some("POLICE"));
    }
}
