//! Media types for KathDB.
//!
//! The paper's prototype stores posters as "pixel values or, more commonly, a
//! file path to the image stored on disk" (§1) and analyzes them with VLMs
//! and OpenCV. Per the reproduction rules (DESIGN.md §1), this crate replaces
//! raster images with *structured descriptors*: an [`Image`] carries the
//! objects, palette, and layout a vision model would extract. Everything the
//! relational scene-graph layer consumes — detections, attributes, bounding
//! boxes — is derivable from these descriptors, including the failure modes
//! (unsupported formats like HEIC) that drive the execution monitor's repair
//! loop (§5).

#![warn(missing_docs)]

mod doc;
mod image;
mod registry;
mod video;

pub use doc::{split_sentences, Document};
pub use image::{BBox, Color, Image, ImageObject};
pub use registry::MediaRegistry;
pub use video::Video;

use std::fmt;

/// On-disk media container formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaFormat {
    /// PNG — supported.
    Png,
    /// JPEG — supported.
    Jpeg,
    /// WEBP — supported.
    Webp,
    /// HEIC — **unsupported** by the simulated cv2 pipeline; triggers the
    /// on-the-fly repair loop exactly as in the paper's example (§5).
    Heic,
    /// TIFF — unsupported.
    Tiff,
}

impl MediaFormat {
    /// Whether the baseline decode path supports this format.
    pub fn is_supported(&self) -> bool {
        matches!(
            self,
            MediaFormat::Png | MediaFormat::Jpeg | MediaFormat::Webp
        )
    }

    /// Canonical file extension.
    pub fn extension(&self) -> &'static str {
        match self {
            MediaFormat::Png => "png",
            MediaFormat::Jpeg => "jpg",
            MediaFormat::Webp => "webp",
            MediaFormat::Heic => "heic",
            MediaFormat::Tiff => "tiff",
        }
    }

    /// Parses from a file extension.
    pub fn from_extension(ext: &str) -> Option<MediaFormat> {
        Some(match ext.to_ascii_lowercase().as_str() {
            "png" => MediaFormat::Png,
            "jpg" | "jpeg" => MediaFormat::Jpeg,
            "webp" => MediaFormat::Webp,
            "heic" => MediaFormat::Heic,
            "tif" | "tiff" => MediaFormat::Tiff,
            _ => return None,
        })
    }
}

impl fmt::Display for MediaFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.extension())
    }
}

/// Errors when handling media.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MediaError {
    /// The decode path does not support the container format (the paper's
    /// HEIC example, §5).
    UnsupportedFormat(MediaFormat),
    /// The referenced media does not exist.
    NotFound(String),
    /// The descriptor is internally inconsistent.
    Malformed(String),
}

impl fmt::Display for MediaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaError::UnsupportedFormat(m) => {
                write!(f, "unsupported file format: {}", m.extension())
            }
            MediaError::NotFound(uri) => write!(f, "media not found: {uri}"),
            MediaError::Malformed(m) => write!(f, "malformed media descriptor: {m}"),
        }
    }
}

impl std::error::Error for MediaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_support_matrix() {
        assert!(MediaFormat::Png.is_supported());
        assert!(MediaFormat::Jpeg.is_supported());
        assert!(!MediaFormat::Heic.is_supported());
        assert!(!MediaFormat::Tiff.is_supported());
    }

    #[test]
    fn extension_round_trip() {
        for f in [
            MediaFormat::Png,
            MediaFormat::Jpeg,
            MediaFormat::Webp,
            MediaFormat::Heic,
            MediaFormat::Tiff,
        ] {
            assert_eq!(MediaFormat::from_extension(f.extension()), Some(f));
        }
        assert_eq!(MediaFormat::from_extension("JPEG"), Some(MediaFormat::Jpeg));
        assert_eq!(MediaFormat::from_extension("gif"), None);
    }

    #[test]
    fn error_messages_name_the_format() {
        let e = MediaError::UnsupportedFormat(MediaFormat::Heic);
        assert!(e.to_string().contains("heic"));
    }
}
