//! The media registry: URI → descriptor lookup.
//!
//! KathDB stores media by "a file path to the image stored on disk" (§1);
//! the relational views carry URIs and the execution engine resolves them
//! here when a function body needs the underlying content.

use crate::{Document, Image, MediaError, Video};
use std::collections::HashMap;

/// In-memory registry of all media known to a KathDB instance.
#[derive(Debug, Clone, Default)]
pub struct MediaRegistry {
    images: HashMap<String, Image>,
    documents: HashMap<String, Document>,
    videos: HashMap<String, Video>,
}

impl MediaRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an image under its URI (replaces any previous entry —
    /// the repair loop re-registers converted images).
    pub fn add_image(&mut self, image: Image) {
        self.images.insert(image.uri.clone(), image);
    }

    /// Registers a document under its URI.
    pub fn add_document(&mut self, doc: Document) {
        self.documents.insert(doc.uri.clone(), doc);
    }

    /// Registers a video under its URI.
    pub fn add_video(&mut self, video: Video) {
        self.videos.insert(video.uri.clone(), video);
    }

    /// Removes an image by URI (e.g. after converting it to a new format).
    pub fn remove_image(&mut self, uri: &str) -> Option<Image> {
        self.images.remove(uri)
    }

    /// Looks up an image.
    pub fn image(&self, uri: &str) -> Result<&Image, MediaError> {
        self.images
            .get(uri)
            .ok_or_else(|| MediaError::NotFound(uri.to_string()))
    }

    /// Looks up a document.
    pub fn document(&self, uri: &str) -> Result<&Document, MediaError> {
        self.documents
            .get(uri)
            .ok_or_else(|| MediaError::NotFound(uri.to_string()))
    }

    /// Looks up a video.
    pub fn video(&self, uri: &str) -> Result<&Video, MediaError> {
        self.videos
            .get(uri)
            .ok_or_else(|| MediaError::NotFound(uri.to_string()))
    }

    /// All images, sorted by URI for deterministic iteration.
    pub fn images(&self) -> Vec<&Image> {
        let mut v: Vec<&Image> = self.images.values().collect();
        v.sort_by(|a, b| a.uri.cmp(&b.uri));
        v
    }

    /// All documents, sorted by URI.
    pub fn documents(&self) -> Vec<&Document> {
        let mut v: Vec<&Document> = self.documents.values().collect();
        v.sort_by(|a, b| a.uri.cmp(&b.uri));
        v
    }

    /// All videos, sorted by URI.
    pub fn videos(&self) -> Vec<&Video> {
        let mut v: Vec<&Video> = self.videos.values().collect();
        v.sort_by(|a, b| a.uri.cmp(&b.uri));
        v
    }

    /// Counts: (images, documents, videos).
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.images.len(), self.documents.len(), self.videos.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MediaFormat;

    #[test]
    fn register_and_lookup() {
        let mut r = MediaRegistry::new();
        r.add_image(Image::new("file://p/1.png", MediaFormat::Png));
        r.add_document(Document::new("doc://1", "text"));
        assert!(r.image("file://p/1.png").is_ok());
        assert!(r.document("doc://1").is_ok());
        assert!(matches!(r.image("nope"), Err(MediaError::NotFound(_))));
        assert_eq!(r.counts(), (1, 1, 0));
    }

    #[test]
    fn re_registration_replaces() {
        let mut r = MediaRegistry::new();
        r.add_image(Image::new("u", MediaFormat::Heic));
        r.add_image(Image::new("u", MediaFormat::Png));
        assert_eq!(r.image("u").unwrap().format, MediaFormat::Png);
        assert_eq!(r.counts().0, 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut r = MediaRegistry::new();
        r.add_image(Image::new("b", MediaFormat::Png));
        r.add_image(Image::new("a", MediaFormat::Png));
        let uris: Vec<&str> = r.images().iter().map(|i| i.uri.as_str()).collect();
        assert_eq!(uris, vec!["a", "b"]);
    }
}
