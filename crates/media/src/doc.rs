//! Text documents.

/// A text document (e.g. a movie plot crawled from Wikipedia, as in MMQA).
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Source URI.
    pub uri: String,
    /// Optional title.
    pub title: Option<String>,
    /// Full text.
    pub text: String,
}

impl Document {
    /// Builds a document.
    pub fn new(uri: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            uri: uri.into(),
            title: None,
            text: text.into(),
        }
    }

    /// Sets the title (builder style).
    pub fn with_title(mut self, t: impl Into<String>) -> Self {
        self.title = Some(t.into());
        self
    }

    /// The document's sentences with their character spans.
    pub fn sentences(&self) -> Vec<(usize, usize, &str)> {
        split_sentences(&self.text)
    }
}

/// Splits text into sentences, returning `(start, end, slice)` character
/// offsets. Sentence ends are `.`, `!`, `?` followed by whitespace/EOF;
/// common abbreviations ("Mr.", "Mrs.", "Dr.") do not split — the Mentions
/// view (Table 2) records character spans, so offsets must be stable.
pub fn split_sentences(text: &str) -> Vec<(usize, usize, &str)> {
    const ABBREVIATIONS: [&str; 6] = ["Mr", "Mrs", "Ms", "Dr", "St", "vs"];
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'.' || b == b'!' || b == b'?' {
            let next_ws = i + 1 >= bytes.len() || bytes[i + 1].is_ascii_whitespace();
            let is_abbrev = b == b'.'
                && ABBREVIATIONS.iter().any(|a| {
                    text[..i].ends_with(a)
                        && (i < a.len() + 1 || !bytes[i - a.len() - 1].is_ascii_alphanumeric())
                });
            if next_ws && !is_abbrev {
                let end = i + 1;
                let slice = text[start..end].trim();
                if !slice.is_empty() {
                    // Recompute trimmed offsets.
                    let lead = text[start..end].len() - text[start..end].trim_start().len();
                    out.push((start + lead, start + lead + slice.len(), slice));
                }
                start = end;
            }
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        let lead = text[start..].len() - text[start..].trim_start().len();
        out.push((start + lead, start + lead + tail.len(), tail));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic_sentences() {
        let s = split_sentences("A man jumped off a plane. A dog fell into a pool!");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].2, "A man jumped off a plane.");
        assert_eq!(s[1].2, "A dog fell into a pool!");
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("Mrs. Swift sang. Mr. Winkler directed.");
        assert_eq!(s.len(), 2);
        assert!(s[0].2.starts_with("Mrs. Swift"));
    }

    #[test]
    fn spans_index_into_source() {
        let text = "First part. Second part?  Third.";
        for (a, b, slice) in split_sentences(text) {
            assert_eq!(&text[a..b], slice);
        }
    }

    #[test]
    fn handles_no_terminator_and_empty() {
        assert_eq!(split_sentences("no terminator here").len(), 1);
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }

    #[test]
    fn document_sentences() {
        let d = Document::new("doc://1", "One. Two.").with_title("T");
        assert_eq!(d.sentences().len(), 2);
        assert_eq!(d.title.as_deref(), Some("T"));
    }
}
