//! The execution engine: runs a physical plan node by node under the
//! monitor, recording lineage and timings (§2.3).

use crate::{AnomalyEvent, ExecContext, ExecError, Monitor, RepairEvent};
use kath_fao::{FunctionBody, FunctionRegistry};
use kath_model::UserChannel;
use kath_storage::Table;
use std::time::Instant;

/// One node of the physical plan: a function to execute (its active version
/// comes from the registry) and the output table it materializes.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalNode {
    /// The function id.
    pub func_id: String,
    /// The output table name.
    pub output: String,
}

/// An ordered physical plan (topological order by construction: the logical
/// plan threads outputs into inputs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhysicalPlan {
    /// The nodes, in execution order.
    pub nodes: Vec<PhysicalNode>,
}

impl PhysicalPlan {
    /// The final output table name.
    pub fn final_output(&self) -> Option<&str> {
        self.nodes.last().map(|n| n.output.as_str())
    }
}

/// Per-node execution measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTiming {
    /// Function id.
    pub func_id: String,
    /// Wall-clock milliseconds.
    pub elapsed_ms: f64,
    /// Rows in the node's output.
    pub rows_out: usize,
    /// Batches the node's operator pipeline produced (0 when the node ran
    /// tuple-at-a-time or is not relational).
    pub batches_out: usize,
    /// Workers that drove the node's streaming phase (1 when serial).
    pub workers: usize,
    /// Busy milliseconds per worker, in worker order (empty when serial).
    pub worker_ms: Vec<f64>,
    /// Milliseconds the deterministic merge step took (0.0 when serial).
    pub merge_ms: f64,
    /// Whether the node's streaming phase ran as a fused compiled pipeline.
    pub compiled: bool,
    /// Milliseconds spent compiling the node's kernels (0.0 when
    /// interpreted).
    pub compile_ms: f64,
}

/// The engine's report for one query.
#[derive(Debug)]
pub struct ExecReport {
    /// The final result table.
    pub final_table: Table,
    /// All repairs performed by the monitor.
    pub repairs: Vec<RepairEvent>,
    /// All semantic anomalies raised (accepted or patched).
    pub anomalies: Vec<AnomalyEvent>,
    /// Per-node timings.
    pub timings: Vec<NodeTiming>,
}

/// The execution engine.
pub struct ExecutionEngine {
    /// Run the semantic fan-out check after SQL join nodes (§5). The key it
    /// guards is the movie id column.
    pub semantic_checks: bool,
    /// Key column used by the fan-out check.
    pub fanout_key: String,
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        Self {
            semantic_checks: true,
            fanout_key: "id".to_string(),
        }
    }
}

impl ExecutionEngine {
    /// An engine with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes the plan. Each node runs under the monitor's repair loop;
    /// SQL join nodes additionally get the semantic fan-out check.
    pub fn run(
        &self,
        ctx: &mut ExecContext,
        registry: &mut FunctionRegistry,
        plan: &PhysicalPlan,
        channel: &dyn UserChannel,
    ) -> Result<ExecReport, ExecError> {
        let monitor = Monitor::new(channel);
        let mut repairs = Vec::new();
        let mut anomalies = Vec::new();
        let mut timings = Vec::new();
        let mut final_table: Option<Table> = None;

        for node in &plan.nodes {
            let started = Instant::now(); // lint: nondet-ok — per-node timing telemetry in the run report; results never depend on it
            let (outcome, node_repairs) =
                monitor.execute_with_repair(ctx, registry, &node.func_id, &node.output)?;
            repairs.extend(node_repairs);
            let mut rows_out = outcome.table.len();
            let mut batches_out = outcome.batches_out;
            let mut workers = outcome.workers;
            let mut worker_ms = outcome.worker_ms;
            let mut merge_ms = outcome.merge_ms;
            let mut compiled = outcome.compiled;
            let mut compile_ms = outcome.compile_ms;
            let mut table = outcome.table;

            if self.semantic_checks && is_join_sql(registry, &node.func_id) {
                if let Some((event, reexec)) = monitor.check_fanout(
                    ctx,
                    registry,
                    &node.func_id,
                    &node.output,
                    &self.fanout_key,
                )? {
                    anomalies.push(event);
                    if let Some(fixed) = reexec {
                        rows_out = fixed.table.len();
                        batches_out = fixed.batches_out;
                        workers = fixed.workers;
                        worker_ms = fixed.worker_ms;
                        merge_ms = fixed.merge_ms;
                        compiled = fixed.compiled;
                        compile_ms = fixed.compile_ms;
                        table = fixed.table;
                    }
                }
            }

            timings.push(NodeTiming {
                func_id: node.func_id.clone(),
                elapsed_ms: started.elapsed().as_secs_f64() * 1000.0,
                rows_out,
                batches_out,
                workers,
                worker_ms,
                merge_ms,
                compiled,
                compile_ms,
            });
            final_table = Some(table);
        }

        let final_table = final_table.ok_or_else(|| ExecError::Sql("empty plan".into()))?;
        Ok(ExecReport {
            final_table,
            repairs,
            anomalies,
            timings,
        })
    }
}

fn is_join_sql(registry: &FunctionRegistry, func_id: &str) -> bool {
    registry
        .get(func_id)
        .ok()
        .map(|e| match &e.active_version().body {
            FunctionBody::Sql { query, .. } => kath_sql::parse_select(query)
                .map(|s| !s.joins.is_empty())
                .unwrap_or(false),
            _ => false,
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_fao::FunctionSignature;
    use kath_model::{SilentChannel, SimLlm, TokenMeter};
    use kath_storage::{DataType, Schema, Value};

    fn setup() -> (ExecContext, FunctionRegistry, PhysicalPlan) {
        let mut ctx = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
        let films = Table::from_rows(
            "films",
            Schema::of(&[
                ("id", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
            ]),
            vec![
                vec![1i64.into(), "Guilty by Suspicion".into(), 1991i64.into()],
                vec![2i64.into(), "Clean and Sober".into(), 1988i64.into()],
                vec![3i64.into(), "Quiet Days".into(), 1975i64.into()],
            ],
        )
        .unwrap();
        ctx.ingest_table(films, "file://films").unwrap();

        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new(
                "gen_recency_score",
                "newer is higher",
                vec!["films".into()],
                "scored",
            ),
            FunctionBody::MapExpr {
                input: "films".into(),
                expr: "clamp01((year - 1970) / 25.0)".into(),
                output_column: "recency_score".into(),
            },
            "initial",
        );
        registry.register(
            FunctionSignature::new(
                "rank_films",
                "rank by score",
                vec!["scored".into()],
                "ranked",
            ),
            FunctionBody::Sql {
                query: "SELECT id, title, year, lid, recency_score FROM scored \
                        ORDER BY recency_score DESC"
                    .into(),
                dedup_key: None,
            },
            "initial",
        );
        let plan = PhysicalPlan {
            nodes: vec![
                PhysicalNode {
                    func_id: "gen_recency_score".into(),
                    output: "scored".into(),
                },
                PhysicalNode {
                    func_id: "rank_films".into(),
                    output: "ranked".into(),
                },
            ],
        };
        (ctx, registry, plan)
    }

    #[test]
    fn two_node_plan_runs_end_to_end() {
        let (mut ctx, mut registry, plan) = setup();
        let engine = ExecutionEngine::new();
        let channel = SilentChannel;
        let report = engine
            .run(&mut ctx, &mut registry, &plan, &channel)
            .unwrap();
        assert_eq!(report.final_table.len(), 3);
        assert_eq!(
            report.final_table.cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
        assert!(report.repairs.is_empty());
        assert!(report.anomalies.is_empty());
        assert_eq!(report.timings.len(), 2);
        // The SQL node ran batched (default mode) and reported its batches;
        // the narrow map node stays row-at-a-time for row-level lineage.
        assert_eq!(report.timings[0].batches_out, 0);
        assert!(report.timings[1].batches_out >= 1);
        // The final table keeps per-row lids for explanation (Fig. 6).
        assert!(report.final_table.schema().index_of("lid").is_some());
        let lid = report.final_table.cell(0, "lid").unwrap();
        assert!(matches!(lid, Value::Int(_)));
    }

    #[test]
    fn empty_plan_is_an_error() {
        let (mut ctx, mut registry, _) = setup();
        let engine = ExecutionEngine::new();
        let channel = SilentChannel;
        let err = engine.run(&mut ctx, &mut registry, &PhysicalPlan::default(), &channel);
        assert!(err.is_err());
    }

    #[test]
    fn final_tuple_lineage_traces_to_ingest() {
        let (mut ctx, mut registry, plan) = setup();
        let engine = ExecutionEngine::new();
        let channel = SilentChannel;
        let report = engine
            .run(&mut ctx, &mut registry, &plan, &channel)
            .unwrap();
        let lid = report.final_table.cell(0, "lid").unwrap().as_int().unwrap();
        let trace = ctx.lineage.trace(lid).unwrap();
        let funcs: Vec<String> = trace.functions().into_iter().map(|(f, _)| f).collect();
        assert!(funcs.contains(&"gen_recency_score".to_string()));
        assert!(funcs.contains(&"ingest".to_string()));
    }
}
