//! The execution context: catalog + media + models + lineage.

use crate::ExecError;
use kath_lineage::{DataKind, LineageStore};
use kath_media::MediaRegistry;
use kath_model::SimLlm;
use kath_storage::{CompileMode, ExecMode, GuardSpec, SharedCatalog, Table, VectorMode};
use std::collections::HashMap;

/// Everything a function body needs at runtime.
pub struct ExecContext {
    /// The system catalog (base relations + materialized intermediates),
    /// shared and versioned: statements read a frozen
    /// [`kath_storage::CatalogRef`] snapshot while concurrent sessions
    /// publish new versions.
    pub catalog: SharedCatalog,
    /// Registered media, resolved by URI.
    pub media: MediaRegistry,
    /// The simulated foundation model (shared token meter).
    pub llm: SimLlm,
    /// The provenance store.
    pub lineage: LineageStore,
    /// Table-level lid of every materialized table.
    pub table_lids: HashMap<String, i64>,
    /// How relational (SQL) function bodies drive their operator pipelines:
    /// batch-at-a-time (default) or tuple-at-a-time Volcano. Row-level
    /// lineage is unaffected — SQL bodies record table-level edges, and the
    /// narrow per-row transforms stay row-accurate regardless of mode.
    pub exec_mode: ExecMode,
    /// Degree of intra-query parallelism for relational pipelines: workers
    /// that claim morsels of a SQL body's streaming phase. `1` (the
    /// default) runs serially; higher values only take effect in batched
    /// mode, and results are identical to serial execution at any setting.
    pub threads: usize,
    /// Vector access-path policy for SQL bodies: whether (and how) the
    /// `ORDER BY SIMILARITY(...) DESC LIMIT k` pattern lowers to the top-k
    /// vector scan. `Auto` (the default) lets the cost model pick Flat vs
    /// IVF per query from catalog cardinality. The exact paths (`Off`,
    /// `Flat`, small-table `Auto`) match the full-sort plan bit for bit;
    /// the approximate IVF path (`Auto` above the cost crossover) keeps
    /// the row count and a tested recall floor instead — the §4
    /// accuracy-for-cost trade, made per query.
    pub vector_mode: VectorMode,
    /// Whether SQL bodies may lower eligible scan→filter→project (and
    /// post-join-build) pipelines into fused compiled closures. `Auto` (the
    /// default) compiles only when the cost model's break-even rule says
    /// compilation amortizes over the table's cardinality; `On`/`Off` force
    /// the choice. Plans the compiler can't express (aggregates, ORDER BY,
    /// vector top-k, model-backed calls, index hits) always fall back to
    /// the interpreted operators, and compiled results are byte-identical
    /// to interpreted ones at any batch size or worker count.
    pub compile: CompileMode,
    /// Session-level query limits — timeout, row/byte budgets, and the
    /// shared cancellation token. Each statement mints a fresh
    /// [`kath_storage::QueryGuard`] from this spec (`limits.guard()`), so
    /// the deadline restarts per statement while the cancel token is shared
    /// with whoever holds a handle to it.
    pub limits: GuardSpec,
}

impl ExecContext {
    /// Builds a context around a model.
    pub fn new(llm: SimLlm) -> Self {
        Self {
            catalog: SharedCatalog::new(),
            media: MediaRegistry::new(),
            llm,
            lineage: LineageStore::new(),
            table_lids: HashMap::new(),
            exec_mode: ExecMode::default(),
            threads: 1,
            vector_mode: VectorMode::default(),
            compile: CompileMode::from_env(),
            limits: GuardSpec::default(),
        }
    }

    /// Ingests a base table: registers it in the catalog and creates the
    /// single table-level lineage root of §3 ("Ingesting a raw table creates
    /// a single lineage entry with data_type=table").
    pub fn ingest_table(&mut self, table: Table, src_uri: &str) -> Result<i64, ExecError> {
        let name = table.name().to_string();
        let lid = self.lineage.alloc_lid();
        self.lineage.record(
            lid,
            None,
            Some(src_uri.to_string()),
            "ingest",
            1,
            DataKind::Table,
        )?;
        self.catalog.register(table)?;
        self.table_lids.insert(name, lid);
        Ok(lid)
    }

    /// Registers (or replaces) a materialized intermediate with its lid.
    pub fn materialize(&mut self, table: Table, lid: i64) {
        let name = table.name().to_string();
        self.catalog.register_or_replace(table);
        self.table_lids.insert(name, lid);
    }

    /// The table-level lid of a materialized table, if known.
    pub fn table_lid(&self, name: &str) -> Option<i64> {
        self.table_lids.get(name).copied()
    }

    /// Creates the lineage root for a media collection (one per modality,
    /// like a raw-table ingest).
    pub fn ingest_media_root(&mut self, src_uri: &str) -> Result<i64, ExecError> {
        let lid = self.lineage.alloc_lid();
        self.lineage.record(
            lid,
            None,
            Some(src_uri.to_string()),
            "ingest_media",
            1,
            DataKind::Table,
        )?;
        Ok(lid)
    }
}

/// Extracts the trailing integer id from a media URI, the convention that
/// ties media to the `did`/`vid` columns of the base table (e.g.
/// `file://posters/7.png` → 7, `doc://plot/3` → 3).
pub fn id_from_uri(uri: &str) -> Option<i64> {
    let stem = uri
        .rsplit_once('.')
        .map(|(s, ext)| {
            // Only strip a real extension (alphanumeric, short).
            if ext.len() <= 5 && ext.chars().all(|c| c.is_ascii_alphanumeric()) {
                s
            } else {
                uri
            }
        })
        .unwrap_or(uri);
    let digits: String = stem
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        return None;
    }
    digits.chars().rev().collect::<String>().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_model::TokenMeter;
    use kath_storage::{DataType, Schema};

    #[test]
    fn ingest_creates_single_table_root() {
        let mut ctx = ExecContext::new(SimLlm::new(1, TokenMeter::new()));
        let t = Table::new("movie_table", Schema::of(&[("id", DataType::Int)]));
        let lid = ctx.ingest_table(t, "file://data/movies").unwrap();
        assert_eq!(ctx.lineage.len(), 1);
        assert_eq!(ctx.table_lid("movie_table"), Some(lid));
        let e = ctx.lineage.edges_of(lid)[0];
        assert_eq!(e.src_uri.as_deref(), Some("file://data/movies"));
        assert!(e.parent_lid.is_none());
    }

    #[test]
    fn duplicate_ingest_fails() {
        let mut ctx = ExecContext::new(SimLlm::new(1, TokenMeter::new()));
        let t = Table::new("t", Schema::of(&[("id", DataType::Int)]));
        ctx.ingest_table(t.clone(), "u").unwrap();
        assert!(ctx.ingest_table(t, "u").is_err());
    }

    #[test]
    fn id_from_uri_conventions() {
        assert_eq!(id_from_uri("file://posters/7.png"), Some(7));
        assert_eq!(id_from_uri("doc://plot/3"), Some(3));
        assert_eq!(id_from_uri("file://posters/142.heic"), Some(142));
        assert_eq!(id_from_uri("file://posters/cover.png"), None);
        assert_eq!(id_from_uri(""), None);
    }
}
