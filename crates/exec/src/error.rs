//! Execution errors, split along the paper's syntactic/semantic line (§2.3).

use std::fmt;

/// A fatal (whole-node) execution error. Per-row failures are *not* errors:
/// they travel in [`crate::ExecOutcome::failed_rows`] so unaffected tuples
/// keep flowing (§5).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// SQL parse/plan/execution failure.
    Sql(String),
    /// Storage-layer failure (schema, unknown table/column).
    Storage(String),
    /// Expression parse/eval failure.
    Expr(String),
    /// Media failure affecting the whole node.
    Media(String),
    /// Lineage recording failure.
    Lineage(String),
    /// Function registry failure.
    Registry(String),
    /// The monitor exhausted its repair attempts.
    RepairFailed {
        /// The failing function.
        func_id: String,
        /// The last error message.
        last_error: String,
        /// Repair attempts made.
        attempts: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Sql(m) => write!(f, "sql error: {m}"),
            ExecError::Storage(m) => write!(f, "storage error: {m}"),
            ExecError::Expr(m) => write!(f, "expression error: {m}"),
            ExecError::Media(m) => write!(f, "media error: {m}"),
            ExecError::Lineage(m) => write!(f, "lineage error: {m}"),
            ExecError::Registry(m) => write!(f, "registry error: {m}"),
            ExecError::RepairFailed {
                func_id,
                last_error,
                attempts,
            } => write!(
                f,
                "function '{func_id}' still failing after {attempts} repair attempt(s): {last_error}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<kath_sql::SqlError> for ExecError {
    fn from(e: kath_sql::SqlError) -> Self {
        ExecError::Sql(e.to_string())
    }
}

impl From<kath_storage::StorageError> for ExecError {
    fn from(e: kath_storage::StorageError) -> Self {
        ExecError::Storage(e.to_string())
    }
}

impl From<kath_media::MediaError> for ExecError {
    fn from(e: kath_media::MediaError) -> Self {
        ExecError::Media(e.to_string())
    }
}

impl From<kath_lineage::LineageError> for ExecError {
    fn from(e: kath_lineage::LineageError) -> Self {
        ExecError::Lineage(e.to_string())
    }
}

impl From<kath_fao::RegistryError> for ExecError {
    fn from(e: kath_fao::RegistryError) -> Self {
        ExecError::Registry(e.to_string())
    }
}
