//! The agentic execution monitor (§5).
//!
//! Syntactic faults launch the two-agent loop: the *reviewer* diagnoses the
//! exception, the *rewriter* patches the body, the registry bumps `ver_id`,
//! and execution resumes — tuples unaffected by the error have already
//! flowed through the old definition. Semantic anomalies (a join fanning one
//! poster out to several movies) are explained to the user, who chooses to
//! accept, adjust, or rewrite.

use crate::{execute_body, ExecContext, ExecError, ExecOutcome};
use kath_fao::{FunctionBody, FunctionRegistry};
use kath_model::UserChannel;

/// A completed repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairEvent {
    /// The repaired function.
    pub func_id: String,
    /// Version that failed.
    pub from_ver: u32,
    /// Version the rewriter produced.
    pub to_ver: u32,
    /// The reviewer agent's diagnosis.
    pub diagnosis: String,
    /// Tuples that had already succeeded under the old version and kept
    /// flowing while the repair happened (§5).
    pub unaffected_tuples: usize,
    /// Tuples that had to be reprocessed by the new version.
    pub failed_tuples: usize,
}

/// A detected semantic anomaly and its resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyEvent {
    /// The function whose output looked wrong.
    pub func_id: String,
    /// What the monitor observed.
    pub observation: String,
    /// The likely cause, as explained to the user.
    pub explanation: String,
    /// The user's decision.
    pub user_reply: String,
    /// Whether a corrective version was installed.
    pub patched: bool,
}

/// The execution monitor.
pub struct Monitor<'a> {
    channel: &'a dyn UserChannel,
    /// Maximum rewrite attempts per function.
    pub max_repairs: u32,
}

impl<'a> Monitor<'a> {
    /// Builds a monitor talking to `channel`.
    pub fn new(channel: &'a dyn UserChannel) -> Self {
        Self {
            channel,
            max_repairs: 2,
        }
    }

    /// Executes the active version of `func_id`, running the repair loop on
    /// syntactic faults. Returns the final outcome and any repairs made.
    pub fn execute_with_repair(
        &self,
        ctx: &mut ExecContext,
        registry: &mut FunctionRegistry,
        func_id: &str,
        output_name: &str,
    ) -> Result<(ExecOutcome, Vec<RepairEvent>), ExecError> {
        let mut repairs = Vec::new();
        let mut attempts = 0u32;
        loop {
            let (ver_id, body) = {
                let entry = registry.get(func_id)?;
                let v = entry.active_version();
                (v.ver_id, v.body.clone())
            };
            let result = execute_body(ctx, func_id, ver_id, &body, output_name);
            let (error_text, unaffected, failed) = match result {
                Ok(outcome) if outcome.failed_rows.is_empty() => {
                    return Ok((outcome, repairs));
                }
                Ok(outcome) => {
                    // Row-level faults: the good tuples already flowed.
                    let err = outcome.failed_rows[0].1.clone();
                    (err, outcome.table.len(), outcome.failed_rows.len())
                }
                Err(e) => (e.to_string(), 0, 0),
            };

            attempts += 1;
            if attempts > self.max_repairs {
                return Err(ExecError::RepairFailed {
                    func_id: func_id.to_string(),
                    last_error: error_text,
                    attempts: attempts - 1,
                });
            }
            // Reviewer diagnoses; rewriter patches; ver_id bumps (§5).
            let diagnosis = ctx.llm.diagnose_exception(&error_text);
            let Some(patched) = patch_body(&body, &error_text) else {
                self.channel.notify(&format!(
                    "Execution of {func_id} failed and no automatic patch applies: {diagnosis}"
                ));
                return Err(ExecError::RepairFailed {
                    func_id: func_id.to_string(),
                    last_error: error_text,
                    attempts,
                });
            };
            let to_ver = registry.add_version(func_id, patched, format!("repair: {diagnosis}"))?;
            self.channel.notify(&format!(
                "Repaired {func_id}: v{ver_id} -> v{to_ver} ({diagnosis}); \
                 {unaffected} unaffected tuple(s) continued, {failed} reprocessed."
            ));
            repairs.push(RepairEvent {
                func_id: func_id.to_string(),
                from_ver: ver_id,
                to_ver,
                diagnosis,
                unaffected_tuples: unaffected,
                failed_tuples: failed,
            });
            // Resume from this operator with the new version (re-executes
            // the node; already-correct tuples recompute identically).
        }
    }

    /// Semantic-anomaly pass over a join output (§5): if `key` shows
    /// duplicates, the monitor explains the likely cause and asks the user
    /// whether to accept or enforce a one-to-one match. Returns the event
    /// and, when patched, the re-executed outcome.
    pub fn check_fanout(
        &self,
        ctx: &mut ExecContext,
        registry: &mut FunctionRegistry,
        func_id: &str,
        output_name: &str,
        key: &str,
    ) -> Result<Option<(AnomalyEvent, Option<ExecOutcome>)>, ExecError> {
        let table = ctx.catalog.get(output_name)?;
        let Ok(idx) = table.schema().resolve(key) else {
            return Ok(None); // key not present: nothing to check
        };
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0usize;
        for row in table.rows() {
            if !row[idx].is_null() && !seen.insert(row[idx].clone()) {
                dups += 1;
            }
        }
        if dups == 0 {
            return Ok(None);
        }
        let observation = format!(
            "the output of {func_id} links the same {key} to multiple rows \
             ({dups} duplicate match(es) — fan-out)"
        );
        let explanation = ctx.llm.explain_anomaly(&format!(
            "one poster image matched multiple movie rows (fan-out): {observation}"
        ));
        let reply = self.channel.ask(&format!(
            "Semantic check on {func_id}: {observation}.\nLikely cause: {explanation}\n\
             Accept the operator as is, or enforce one match per {key}? (accept/enforce)"
        ));
        let wants_enforce =
            reply.to_lowercase().contains("enforce") || reply.to_lowercase().contains("one match");
        if !wants_enforce {
            return Ok(Some((
                AnomalyEvent {
                    func_id: func_id.to_string(),
                    observation,
                    explanation,
                    user_reply: reply,
                    patched: false,
                },
                None,
            )));
        }
        // Patch: same SQL with a dedup key, new version, re-run.
        let body = registry.get(func_id)?.active_version().body.clone();
        let FunctionBody::Sql { query, .. } = body else {
            return Ok(Some((
                AnomalyEvent {
                    func_id: func_id.to_string(),
                    observation,
                    explanation,
                    user_reply: reply,
                    patched: false,
                },
                None,
            )));
        };
        let to_ver = registry.add_version(
            func_id,
            FunctionBody::Sql {
                query,
                dedup_key: Some(key.to_string()),
            },
            format!("semantic fix: enforce one match per {key}"),
        )?;
        let entry = registry.get(func_id)?;
        let v = entry.version(to_ver).expect("just added").body.clone();
        let outcome = execute_body(ctx, func_id, to_ver, &v, output_name)?;
        Ok(Some((
            AnomalyEvent {
                func_id: func_id.to_string(),
                observation,
                explanation,
                user_reply: reply,
                patched: true,
            },
            Some(outcome),
        )))
    }
}

/// The rewriter agent's patch catalogue: deterministic fixes keyed off the
/// diagnosis, standing in for LLM-generated code patches.
fn patch_body(body: &FunctionBody, error_text: &str) -> Option<FunctionBody> {
    let lower = error_text.to_lowercase();
    if lower.contains("unsupported") || lower.contains("heic") || lower.contains("tiff") {
        return match body {
            FunctionBody::VisualClassify {
                input,
                uri_column,
                output_column,
                implementation,
                threshold,
                convert_unsupported: false,
            } => Some(FunctionBody::VisualClassify {
                input: input.clone(),
                uri_column: uri_column.clone(),
                output_column: output_column.clone(),
                implementation: *implementation,
                threshold: *threshold,
                convert_unsupported: true,
            }),
            FunctionBody::ViewPopulate {
                modality,
                implementation,
                convert_unsupported: false,
            } => Some(FunctionBody::ViewPopulate {
                modality: modality.clone(),
                implementation: *implementation,
                convert_unsupported: true,
            }),
            _ => None,
        };
    }
    if lower.contains("division by zero") {
        if let FunctionBody::MapExpr {
            input,
            expr,
            output_column,
        } = body
        {
            // Guard the whole expression; the denominator is inside it.
            return Some(FunctionBody::MapExpr {
                input: input.clone(),
                expr: format!("coalesce({expr} * 0 + 0.0, 0.0)"),
                output_column: output_column.clone(),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_fao::{FunctionSignature, VisionImpl};
    use kath_media::{BBox, Color, Image, ImageObject, MediaFormat};
    use kath_model::{ScriptedChannel, SilentChannel, SimLlm, TokenMeter};
    use kath_storage::{DataType, Schema, Table};

    fn ctx_with_posters() -> ExecContext {
        let mut ctx = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
        for (id, fmt) in [
            (1, MediaFormat::Png),
            (2, MediaFormat::Png),
            (3, MediaFormat::Heic),
        ] {
            ctx.media.add_image(
                Image::new(format!("file://posters/{id}.{}", fmt.extension()), fmt)
                    .with_color(Color::rgb(200, 20, 20))
                    .with_object(ImageObject::new("person", BBox::new(0.1, 0.1, 0.6, 0.9)))
                    .with_object(ImageObject::new("gun", BBox::new(0.4, 0.4, 0.6, 0.6))),
            );
        }
        let posters = Table::from_rows(
            "posters",
            Schema::of(&[("id", DataType::Int), ("poster_uri", DataType::Str)]),
            vec![
                vec![1i64.into(), "file://posters/1.png".into()],
                vec![2i64.into(), "file://posters/2.png".into()],
                vec![3i64.into(), "file://posters/3.heic".into()],
            ],
        )
        .unwrap();
        ctx.ingest_table(posters, "p").unwrap();
        ctx
    }

    #[test]
    fn heic_failure_is_repaired_with_version_bump() {
        let mut ctx = ctx_with_posters();
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new(
                "classify_boring",
                "flag boring posters",
                vec!["posters".into()],
                "flagged",
            ),
            FunctionBody::VisualClassify {
                input: "posters".into(),
                uri_column: "poster_uri".into(),
                output_column: "boring".into(),
                implementation: VisionImpl::VlmAccurate,
                threshold: 0.4,
                convert_unsupported: false,
            },
            "initial",
        );
        let channel = SilentChannel;
        let monitor = Monitor::new(&channel);
        let (outcome, repairs) = monitor
            .execute_with_repair(&mut ctx, &mut registry, "classify_boring", "flagged")
            .unwrap();
        // All three rows processed after the repair.
        assert_eq!(outcome.table.len(), 3);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].from_ver, 1);
        assert_eq!(repairs[0].to_ver, 2);
        assert_eq!(repairs[0].unaffected_tuples, 2);
        assert_eq!(repairs[0].failed_tuples, 1);
        assert!(repairs[0].diagnosis.contains("conversion"));
        // Both versions remain in the registry.
        let entry = registry.get("classify_boring").unwrap();
        assert_eq!(entry.versions.len(), 2);
        assert_eq!(entry.active, 2);
    }

    #[test]
    fn unrepairable_fault_reports_repair_failed() {
        let mut ctx = ExecContext::new(SimLlm::new(1, TokenMeter::new()));
        let t = Table::from_rows(
            "t",
            Schema::of(&[("x", DataType::Int)]),
            vec![vec![1i64.into()]],
        )
        .unwrap();
        ctx.ingest_table(t, "u").unwrap();
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("bad", "references a missing column", vec!["t".into()], "o"),
            FunctionBody::MapExpr {
                input: "t".into(),
                expr: "no_such_column + 1".into(),
                output_column: "y".into(),
            },
            "initial",
        );
        let channel = SilentChannel;
        let monitor = Monitor::new(&channel);
        let err = monitor.execute_with_repair(&mut ctx, &mut registry, "bad", "o");
        assert!(matches!(err, Err(ExecError::RepairFailed { .. })));
    }

    #[test]
    fn fanout_anomaly_enforced_by_user() {
        let mut ctx = ExecContext::new(SimLlm::new(1, TokenMeter::new()));
        let films = Table::from_rows(
            "films",
            Schema::of(&[("id", DataType::Int), ("title", DataType::Str)]),
            vec![vec![1i64.into(), "A".into()], vec![2i64.into(), "B".into()]],
        )
        .unwrap();
        // Two posters claim film 1: the fan-out of §5.
        let posters = Table::from_rows(
            "posters",
            Schema::of(&[("film_id", DataType::Int), ("uri", DataType::Str)]),
            vec![
                vec![1i64.into(), "p1".into()],
                vec![1i64.into(), "p1b".into()],
                vec![2i64.into(), "p2".into()],
            ],
        )
        .unwrap();
        ctx.ingest_table(films, "f").unwrap();
        ctx.ingest_table(posters, "p").unwrap();
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new(
                "join_posters",
                "join posters to films",
                vec!["films".into(), "posters".into()],
                "joined",
            ),
            FunctionBody::Sql {
                query: "SELECT * FROM films JOIN posters ON films.id = posters.film_id".into(),
                dedup_key: None,
            },
            "initial",
        );
        let channel = ScriptedChannel::new(["enforce"]);
        let monitor = Monitor::new(channel.as_ref());
        let (outcome, _) = monitor
            .execute_with_repair(&mut ctx, &mut registry, "join_posters", "joined")
            .unwrap();
        assert_eq!(outcome.table.len(), 3); // fan-out present
        let result = monitor
            .check_fanout(&mut ctx, &mut registry, "join_posters", "joined", "id")
            .unwrap();
        let (event, reexec) = result.expect("anomaly must be detected");
        assert!(event.patched);
        assert!(event.explanation.contains("one-to-one"));
        let fixed = reexec.expect("patched outcome");
        assert_eq!(fixed.table.len(), 2); // one poster per movie
        assert_eq!(registry.get("join_posters").unwrap().active, 2);
    }

    #[test]
    fn fanout_accepted_by_user_is_left_alone() {
        let mut ctx = ExecContext::new(SimLlm::new(1, TokenMeter::new()));
        let t = Table::from_rows(
            "t",
            Schema::of(&[("id", DataType::Int)]),
            vec![vec![1i64.into()], vec![1i64.into()]],
        )
        .unwrap();
        ctx.ingest_table(t, "u").unwrap();
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("f", "copy", vec!["t".into()], "o"),
            FunctionBody::Sql {
                query: "SELECT * FROM t".into(),
                dedup_key: None,
            },
            "initial",
        );
        let channel = ScriptedChannel::new(["accept, that is expected"]);
        let monitor = Monitor::new(channel.as_ref());
        monitor
            .execute_with_repair(&mut ctx, &mut registry, "f", "o")
            .unwrap();
        let result = monitor
            .check_fanout(&mut ctx, &mut registry, "f", "o", "id")
            .unwrap();
        let (event, reexec) = result.unwrap();
        assert!(!event.patched);
        assert!(reexec.is_none());
        assert_eq!(registry.get("f").unwrap().active, 1);
    }

    #[test]
    fn no_anomaly_on_unique_keys() {
        let mut ctx = ExecContext::new(SimLlm::new(1, TokenMeter::new()));
        let t = Table::from_rows(
            "t",
            Schema::of(&[("id", DataType::Int)]),
            vec![vec![1i64.into()], vec![2i64.into()]],
        )
        .unwrap();
        ctx.ingest_table(t, "u").unwrap();
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("f", "copy", vec!["t".into()], "o"),
            FunctionBody::Sql {
                query: "SELECT * FROM t".into(),
                dedup_key: None,
            },
            "initial",
        );
        let channel = SilentChannel;
        let monitor = Monitor::new(&channel);
        monitor
            .execute_with_repair(&mut ctx, &mut registry, "f", "o")
            .unwrap();
        let result = monitor
            .check_fanout(&mut ctx, &mut registry, "f", "o", "id")
            .unwrap();
        assert!(result.is_none());
    }
}
