//! KathDB execution engine (§2.3, §5).
//!
//! Interprets FAO bodies against the catalog/media/model context, records
//! lineage per the dependency pattern, and keeps the human in the loop:
//! syntactic faults are self-repaired (reviewer diagnoses, rewriter patches,
//! `ver_id` bumps, execution resumes) while semantic anomalies are explained
//! and resolved with the user.

#![warn(missing_docs)]

mod context;
mod engine;
mod error;
mod interp;
mod monitor;

pub use context::{id_from_uri, ExecContext};
pub use engine::{ExecReport, ExecutionEngine, NodeTiming, PhysicalNode, PhysicalPlan};
pub use error::ExecError;
pub use interp::{execute_body, visual_interest, ExecOutcome};
pub use monitor::{AnomalyEvent, Monitor, RepairEvent};
