//! The function-body interpreter.
//!
//! Executes a [`FunctionBody`] against the [`ExecContext`], materializes the
//! output table, and records lineage at the granularity the body's
//! dependency pattern allows (§3): narrow bodies stamp every output tuple
//! with a fresh `lid` whose parent is the input tuple's `lid`; wide bodies
//! record table-level edges only.

use crate::{id_from_uri, ExecContext, ExecError};
use kath_fao::{FunctionBody, VisionImpl};
use kath_lineage::DataKind;
use kath_media::{Image, MediaFormat};
use kath_model::{SimOcr, SimVlm, VlmCascade};
use kath_multimodal::{populate_document, populate_image, SceneGraphViews, TextGraphViews};
use kath_storage::{Column, DataType, Row, Schema, Table, Value};

/// The result of executing one function body.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The materialized output (already registered in the catalog).
    pub table: Table,
    /// Table-level lid of the output.
    pub output_lid: i64,
    /// Per-row failures: `(row description, error)`. Unaffected tuples have
    /// already flowed into `table` (§5: "tuples unaffected by the error
    /// continue through the old function definition").
    pub failed_rows: Vec<(String, String)>,
    /// Input rows consumed.
    pub rows_in: usize,
    /// Batches the body's operator pipeline produced (0 when the body ran
    /// tuple-at-a-time or is not relational).
    pub batches_out: usize,
    /// Workers that drove the body's streaming phase (1 when serial).
    pub workers: usize,
    /// Per-worker busy milliseconds (empty when serial).
    pub worker_ms: Vec<f64>,
    /// Milliseconds spent in the deterministic parallel merge step (0.0
    /// when serial).
    pub merge_ms: f64,
    /// Whether the body's streaming phase ran as a fused compiled pipeline
    /// (false for interpreted, non-relational, or fallback plans).
    pub compiled: bool,
    /// Milliseconds spent compiling the pipeline's kernels (0.0 when
    /// interpreted).
    pub compile_ms: f64,
}

/// Executes `body` as function `func_id` version `ver_id`, materializing
/// `output_name` in the context's catalog.
pub fn execute_body(
    ctx: &mut ExecContext,
    func_id: &str,
    ver_id: u32,
    body: &FunctionBody,
    output_name: &str,
) -> Result<ExecOutcome, ExecError> {
    match body {
        FunctionBody::Sql { query, dedup_key } => exec_sql(
            ctx,
            func_id,
            ver_id,
            query,
            dedup_key.as_deref(),
            output_name,
        ),
        FunctionBody::MapExpr {
            input,
            expr,
            output_column,
        } => {
            let parsed = kath_sql::parse_expr(expr).map_err(|e| ExecError::Expr(e.to_string()))?;
            narrow_transform(
                ctx,
                func_id,
                ver_id,
                input,
                output_name,
                &[(output_column.as_str(), DataType::Any)],
                |row, schema| {
                    let lowered = kath_sql::to_expr(&parsed, schema).map_err(|e| e.to_string())?;
                    let v = lowered.eval(row, schema).map_err(|e| e.to_string())?;
                    Ok(Some(vec![v]))
                },
            )
        }
        FunctionBody::FilterExpr { input, predicate } => {
            let parsed =
                kath_sql::parse_expr(predicate).map_err(|e| ExecError::Expr(e.to_string()))?;
            narrow_transform(
                ctx,
                func_id,
                ver_id,
                input,
                output_name,
                &[],
                |row, schema| {
                    let lowered = kath_sql::to_expr(&parsed, schema).map_err(|e| e.to_string())?;
                    let keep = lowered.eval(row, schema).map_err(|e| e.to_string())?;
                    Ok(if keep.is_truthy() { Some(vec![]) } else { None })
                },
            )
        }
        FunctionBody::ConceptScore {
            input,
            text_column,
            keywords,
            output_column,
        } => {
            let llm = ctx.llm.clone();
            narrow_transform(
                ctx,
                func_id,
                ver_id,
                input,
                output_name,
                &[(output_column.as_str(), DataType::Float)],
                |row, schema| {
                    let idx = schema
                        .index_of(text_column)
                        .ok_or_else(|| format!("unknown column '{text_column}'"))?;
                    let score = match row[idx].as_str() {
                        Some(text) => llm.concept_score(text, keywords),
                        None => 0.0,
                    };
                    Ok(Some(vec![Value::Float(score)]))
                },
            )
        }
        FunctionBody::VisualClassify {
            input,
            uri_column,
            output_column,
            implementation,
            threshold,
            convert_unsupported,
        } => {
            let llm = ctx.llm.clone();
            let media = ctx.media.clone();
            let implementation = *implementation;
            let threshold = *threshold;
            let convert = *convert_unsupported;
            narrow_transform(
                ctx,
                func_id,
                ver_id,
                input,
                output_name,
                &[(output_column.as_str(), DataType::Bool)],
                move |row, schema| {
                    let idx = schema
                        .index_of(uri_column)
                        .ok_or_else(|| format!("unknown column '{uri_column}'"))?;
                    let uri = row[idx]
                        .as_str()
                        .ok_or_else(|| format!("NULL media uri in '{uri_column}'"))?;
                    let image = media.image(uri).map_err(|e| e.to_string())?;
                    let decoded: Image;
                    let image = if !image.format.is_supported() && convert {
                        decoded = image.convert_to(MediaFormat::Png);
                        &decoded
                    } else {
                        image
                    };
                    let interest =
                        visual_interest(image, implementation, &llm).map_err(|e| e.to_string())?;
                    Ok(Some(vec![Value::Bool(interest <= threshold)]))
                },
            )
        }
        FunctionBody::ViewPopulate {
            modality,
            implementation,
            convert_unsupported,
        } => exec_view_populate(
            ctx,
            func_id,
            ver_id,
            modality,
            *implementation,
            *convert_unsupported,
            output_name,
        ),
    }
}

/// The "visual interest" measure behind `classify_boring`: vivid colors,
/// object count, and action (saliency), exactly the features the paper's
/// sketch step names ("lacks vivid colors, few objects, little action").
/// Different physical implementations see different evidence.
pub fn visual_interest(
    image: &Image,
    implementation: VisionImpl,
    llm: &kath_model::SimLlm,
) -> Result<f64, kath_media::MediaError> {
    let meter = llm.meter().clone();
    let seed = llm.seed();
    let exciting_classes = llm.knowledge().exciting_object_classes();
    let from_detections = |dets: &[kath_model::Detection]| {
        let count_term = (dets.len() as f64 / 4.0).min(1.0);
        let action_term = if dets.is_empty() {
            0.0
        } else {
            dets.iter().map(|d| d.confidence).sum::<f64>() / dets.len() as f64
        };
        let exciting_bonus = if dets.iter().any(|d| exciting_classes.contains(&d.class)) {
            0.25
        } else {
            0.0
        };
        (0.40 * image.colorfulness() + 0.25 * count_term + 0.20 * action_term + exciting_bonus)
            .clamp(0.0, 1.0)
    };
    match implementation {
        VisionImpl::VlmAccurate => {
            let dets = SimVlm::accurate(seed, meter).detect(image)?;
            Ok(from_detections(&dets))
        }
        VisionImpl::VlmCheap => {
            let dets = SimVlm::cheap(seed, meter).detect(image)?;
            Ok(from_detections(&dets))
        }
        VisionImpl::Cascade => {
            let (dets, _escalated) = VlmCascade::new(seed, meter, 0.8).detect(image)?;
            Ok(from_detections(&dets))
        }
        VisionImpl::Ocr => {
            // OCR sees only legible text: a crude proxy (titles on busy
            // posters tend to be loud), deliberately less accurate.
            let texts = SimOcr::new(meter).read_text(image)?;
            let text_len: usize = texts.iter().map(String::len).sum();
            Ok((0.15 + 0.05 * texts.len() as f64 + 0.002 * text_len as f64).clamp(0.0, 1.0))
        }
    }
}

fn exec_sql(
    ctx: &mut ExecContext,
    func_id: &str,
    ver_id: u32,
    query: &str,
    dedup_key: Option<&str>,
    output_name: &str,
) -> Result<ExecOutcome, ExecError> {
    let select = kath_sql::parse_select(query).map_err(|e| ExecError::Sql(e.to_string()))?;
    let mut inputs = vec![select.from.clone()];
    inputs.extend(select.joins.iter().map(|j| j.table.clone()));
    // One frozen snapshot for the whole statement: cardinality estimates
    // and the scan itself read the same catalog version even while
    // concurrent sessions commit.
    let snapshot = ctx.catalog.snapshot();
    let rows_in: usize = inputs
        .iter()
        .map(|t| snapshot.get(t).map(|t| t.len()).unwrap_or(0))
        .sum();
    // The auto driver picks the physical drive from the context's knobs:
    // a fused compiled pipeline where the plan is compilable and the
    // compile mode (or its cost rule, under `Auto`) says it pays off, a
    // morsel-parallel interpreted drive when the context asks for threads,
    // serial interpreted otherwise. Results are identical across all three
    // by construction.
    let guard = ctx.limits.guard();
    let (mut table, stats) = kath_sql::run_select_auto_guarded(
        &snapshot,
        &select,
        output_name,
        ctx.exec_mode,
        ctx.threads,
        ctx.vector_mode,
        ctx.compile,
        &guard,
    )?;

    if let Some(key) = dedup_key {
        table = dedup_by_key(&table, key)?;
    }

    // Wide dependency: table-level lineage with one edge per input parent.
    let output_lid = ctx.lineage.alloc_lid();
    let mut recorded = false;
    for input in &inputs {
        if let Some(parent) = ctx.table_lid(input) {
            ctx.lineage.record(
                output_lid,
                Some(parent),
                None,
                func_id,
                ver_id,
                DataKind::Table,
            )?;
            recorded = true;
        }
    }
    if !recorded {
        ctx.lineage
            .record(output_lid, None, None, func_id, ver_id, DataKind::Table)?;
    }
    ctx.materialize(table.clone(), output_lid);
    Ok(ExecOutcome {
        table,
        output_lid,
        failed_rows: Vec::new(),
        rows_in,
        batches_out: stats.batches,
        workers: stats.workers.max(1),
        worker_ms: stats.worker_ms,
        merge_ms: stats.merge_ms,
        compiled: stats.compiled,
        compile_ms: stats.compile_ms,
    })
}

/// Keeps the first row per key value (the monitor's one-poster-one-movie
/// patch, §5).
fn dedup_by_key(table: &Table, key: &str) -> Result<Table, ExecError> {
    let idx = table
        .schema()
        .resolve(key)
        .map_err(|e| ExecError::Storage(e.to_string()))?;
    let mut seen = std::collections::HashSet::new();
    let mut out = Table::new(table.name(), table.schema().clone());
    for row in table.rows() {
        if seen.insert(row[idx].clone()) {
            out.push(row.clone())
                .map_err(|e| ExecError::Storage(e.to_string()))?;
        }
    }
    Ok(out)
}

/// Shared implementation of narrow (row-level) transforms.
fn narrow_transform(
    ctx: &mut ExecContext,
    func_id: &str,
    ver_id: u32,
    input: &str,
    output_name: &str,
    new_columns: &[(&str, DataType)],
    mut row_fn: impl FnMut(&Row, &Schema) -> Result<Option<Vec<Value>>, String>,
) -> Result<ExecOutcome, ExecError> {
    let input_table = ctx.catalog.get(input)?;
    let in_schema = input_table.schema().clone();
    let lid_idx = in_schema.index_of("lid");
    let mut out_schema = in_schema.clone();
    if lid_idx.is_none() {
        out_schema = out_schema.with_column(Column::new("lid", DataType::Int));
    }
    for (name, dtype) in new_columns {
        out_schema = out_schema.with_column(Column::new(*name, *dtype));
    }
    let parent_table_lid = ctx.table_lid(input);

    let mut out = Table::new(output_name, out_schema);
    let mut failed_rows = Vec::new();
    let rows_in = input_table.len();
    for row in input_table.rows() {
        match row_fn(row, &in_schema) {
            Err(msg) => {
                let desc = row.iter().map(Value::render).collect::<Vec<_>>().join(", ");
                failed_rows.push((desc, msg));
            }
            Ok(None) => {}
            Ok(Some(extra)) => {
                let parent = lid_idx.and_then(|i| row[i].as_int()).or(parent_table_lid);
                let new_lid = ctx.lineage.alloc_lid();
                ctx.lineage
                    .record(new_lid, parent, None, func_id, ver_id, DataKind::Row)?;
                let mut out_row = row.clone();
                match lid_idx {
                    Some(i) => out_row[i] = Value::Int(new_lid),
                    None => out_row.push(Value::Int(new_lid)),
                }
                out_row.extend(extra);
                out.push(out_row)?;
            }
        }
    }

    // Also record the table-level artifact so downstream wide operators have
    // a parent to point at.
    let output_lid = ctx.lineage.alloc_lid();
    ctx.lineage.record(
        output_lid,
        parent_table_lid,
        None,
        func_id,
        ver_id,
        DataKind::Table,
    )?;
    ctx.materialize(out.clone(), output_lid);
    Ok(ExecOutcome {
        table: out,
        output_lid,
        failed_rows,
        rows_in,
        // Narrow transforms run row-at-a-time so lineage stays row-accurate.
        batches_out: 0,
        workers: 1,
        worker_ms: Vec::new(),
        merge_ms: 0.0,
        compiled: false,
        compile_ms: 0.0,
    })
}

fn exec_view_populate(
    ctx: &mut ExecContext,
    func_id: &str,
    ver_id: u32,
    modality: &str,
    implementation: VisionImpl,
    convert_unsupported: bool,
    output_name: &str,
) -> Result<ExecOutcome, ExecError> {
    let mut failed_rows: Vec<(String, String)> = Vec::new();
    let mut summary = Table::new(
        output_name,
        Schema::of(&[("view", DataType::Str), ("rows", DataType::Int)]),
    );
    let rows_in;

    match modality {
        "text" => {
            let root = ctx.ingest_media_root("collection://documents")?;
            let mut views = TextGraphViews::empty();
            let docs: Vec<kath_media::Document> =
                ctx.media.documents().into_iter().cloned().collect();
            rows_in = docs.len();
            let llm = ctx.llm.clone();
            for (i, doc) in docs.iter().enumerate() {
                let did = id_from_uri(&doc.uri).unwrap_or(i as i64);
                let lineage = &mut ctx.lineage;
                let mut next_lid = || {
                    let l = lineage.alloc_lid();
                    let _ = lineage.record(l, Some(root), None, func_id, ver_id, DataKind::Row);
                    l
                };
                if let Err(e) = populate_document(&mut views, did, doc, &llm, &mut next_lid) {
                    failed_rows.push((doc.uri.clone(), e.to_string()));
                }
            }
            for table in [
                views.entities,
                views.mentions,
                views.relationships,
                views.attributes,
                views.texts,
            ] {
                let lid = ctx.lineage.alloc_lid();
                ctx.lineage
                    .record(lid, Some(root), None, func_id, ver_id, DataKind::Table)?;
                summary.push(vec![
                    Value::Str(table.name().to_string()),
                    Value::Int(table.len() as i64),
                ])?;
                ctx.materialize(table, lid);
            }
        }
        "scene" => {
            let root = ctx.ingest_media_root("collection://images")?;
            let mut views = SceneGraphViews::empty();
            let meter = ctx.llm.meter().clone();
            let seed = ctx.llm.seed();
            let vlm = match implementation {
                VisionImpl::VlmCheap => SimVlm::cheap(seed, meter),
                // OCR/cascade don't apply to full scene extraction; the
                // accurate VLM is the reference implementation.
                _ => SimVlm::accurate(seed, meter),
            };
            let images: Vec<Image> = ctx.media.images().into_iter().cloned().collect();
            rows_in = images.len();
            for (i, image) in images.iter().enumerate() {
                let vid = id_from_uri(&image.uri).unwrap_or(i as i64);
                let converted;
                let img = if !image.format.is_supported() && convert_unsupported {
                    converted = image.convert_to(MediaFormat::Png);
                    // The conversion step replaces the undecodable file with
                    // a decodable copy; later operators resolve the new URI
                    // and re-runs do not see the original twice.
                    ctx.media.remove_image(&image.uri);
                    ctx.media.add_image(converted.clone());
                    &converted
                } else {
                    image
                };
                let lineage = &mut ctx.lineage;
                let mut next_lid = || {
                    let l = lineage.alloc_lid();
                    let _ = lineage.record(l, Some(root), None, func_id, ver_id, DataKind::Row);
                    l
                };
                if let Err(e) = populate_image(&mut views, vid, img, &vlm, &mut next_lid) {
                    failed_rows.push((image.uri.clone(), e.to_string()));
                }
            }
            for table in [
                views.objects,
                views.relationships,
                views.attributes,
                views.frames,
            ] {
                let lid = ctx.lineage.alloc_lid();
                ctx.lineage
                    .record(lid, Some(root), None, func_id, ver_id, DataKind::Table)?;
                summary.push(vec![
                    Value::Str(table.name().to_string()),
                    Value::Int(table.len() as i64),
                ])?;
                ctx.materialize(table, lid);
            }
        }
        other => {
            return Err(ExecError::Media(format!(
                "unknown view modality '{other}' (expected 'text' or 'scene')"
            )))
        }
    }

    let output_lid = ctx.lineage.alloc_lid();
    ctx.lineage
        .record(output_lid, None, None, func_id, ver_id, DataKind::Table)?;
    ctx.materialize(summary.clone(), output_lid);
    Ok(ExecOutcome {
        table: summary,
        output_lid,
        failed_rows,
        rows_in,
        batches_out: 0,
        workers: 1,
        worker_ms: Vec::new(),
        merge_ms: 0.0,
        compiled: false,
        compile_ms: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_media::{BBox, Color, Document, ImageObject};
    use kath_model::{SimLlm, TokenMeter};

    fn ctx() -> ExecContext {
        let mut ctx = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
        let films = Table::from_rows(
            "films",
            Schema::of(&[
                ("id", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
            ]),
            vec![
                vec![1i64.into(), "Guilty by Suspicion".into(), 1991i64.into()],
                vec![2i64.into(), "Clean and Sober".into(), 1988i64.into()],
                vec![3i64.into(), "Quiet Days".into(), 1975i64.into()],
            ],
        )
        .unwrap();
        ctx.ingest_table(films, "file://data/films").unwrap();
        ctx
    }

    fn exciting_poster(uri: &str, format: MediaFormat) -> Image {
        Image::new(uri, format)
            .with_color(Color::rgb(230, 20, 20))
            .with_color(Color::rgb(20, 20, 230))
            .with_object(ImageObject::new("person", BBox::new(0.1, 0.1, 0.5, 0.9)))
            .with_object(ImageObject::new("gun", BBox::new(0.4, 0.4, 0.6, 0.6)))
            .with_object(ImageObject::new(
                "motorcycle",
                BBox::new(0.5, 0.6, 0.9, 0.95),
            ))
            .with_object(ImageObject::new(
                "explosion",
                BBox::new(0.6, 0.1, 0.95, 0.4),
            ))
    }

    fn boring_poster(uri: &str) -> Image {
        Image::new(uri, MediaFormat::Png)
            .with_color(Color::rgb(120, 120, 120))
            .with_object(
                ImageObject::new("portrait", BBox::new(0.3, 0.2, 0.7, 0.8)).with_saliency(0.3),
            )
    }

    #[test]
    fn sql_body_records_table_lineage() {
        let mut c = ctx();
        let body = FunctionBody::Sql {
            query: "SELECT title, year FROM films WHERE year >= 1988".into(),
            dedup_key: None,
        };
        let out = execute_body(&mut c, "select_recent", 1, &body, "recent").unwrap();
        assert_eq!(out.table.len(), 2);
        assert!(c.catalog.contains("recent"));
        let edges = c.lineage.edges_of(out.output_lid);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].data_type, DataKind::Table);
        assert_eq!(edges[0].parent_lid, c.table_lid("films"));
    }

    #[test]
    fn parallel_sql_body_matches_serial_and_reports_workers() {
        let mk = || {
            let mut c = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
            let mut films = Table::new(
                "films",
                Schema::of(&[("id", DataType::Int), ("year", DataType::Int)]),
            );
            for i in 0..20_000i64 {
                films.push(vec![i.into(), (1950 + i % 70).into()]).unwrap();
            }
            c.ingest_table(films, "bench://films").unwrap();
            c
        };
        let body = FunctionBody::Sql {
            query: "SELECT year, COUNT(*) AS n FROM films WHERE year >= 1990 \
                    GROUP BY year ORDER BY year"
                .into(),
            dedup_key: None,
        };
        let mut serial_ctx = mk();
        let serial = execute_body(&mut serial_ctx, "agg", 1, &body, "out").unwrap();
        assert_eq!(serial.workers, 1);
        let mut par_ctx = mk();
        par_ctx.threads = 4;
        let parallel = execute_body(&mut par_ctx, "agg", 1, &body, "out").unwrap();
        assert_eq!(parallel.table, serial.table, "parallel must match serial");
        assert!(parallel.workers > 1, "expected a parallel run");
        assert_eq!(parallel.worker_ms.len(), parallel.workers);
    }

    #[test]
    fn map_expr_stamps_fresh_row_lids() {
        let mut c = ctx();
        let body = FunctionBody::MapExpr {
            input: "films".into(),
            expr: "clamp01((year - 1970) / 25.0)".into(),
            output_column: "recency_score".into(),
        };
        let out = execute_body(&mut c, "gen_recency_score", 1, &body, "scored").unwrap();
        assert_eq!(out.table.len(), 3);
        let lid_col = out.table.schema().index_of("lid").unwrap();
        let mut lids: Vec<i64> = out
            .table
            .rows()
            .iter()
            .map(|r| r[lid_col].as_int().unwrap())
            .collect();
        let distinct: std::collections::HashSet<i64> = lids.drain(..).collect();
        assert_eq!(distinct.len(), 3, "each tuple needs its own lid");
        // Row-level lineage recorded with the films table as parent.
        for l in distinct {
            let e = c.lineage.edges_of(l)[0];
            assert_eq!(e.data_type, DataKind::Row);
            assert_eq!(e.func_id, "gen_recency_score");
        }
        // Newer year → higher score.
        let s91 = out
            .table
            .cell(0, "recency_score")
            .unwrap()
            .as_f64()
            .unwrap();
        let s75 = out
            .table
            .cell(2, "recency_score")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(s91 > s75);
    }

    #[test]
    fn chained_narrow_ops_link_row_lineage() {
        let mut c = ctx();
        execute_body(
            &mut c,
            "gen_recency_score",
            1,
            &FunctionBody::MapExpr {
                input: "films".into(),
                expr: "clamp01((year - 1970) / 25.0)".into(),
                output_column: "recency_score".into(),
            },
            "scored",
        )
        .unwrap();
        let out = execute_body(
            &mut c,
            "combine_score",
            1,
            &FunctionBody::MapExpr {
                input: "scored".into(),
                expr: "recency_score * 1.0".into(),
                output_column: "final_score".into(),
            },
            "combined",
        )
        .unwrap();
        let lid_col = out.table.schema().index_of("lid").unwrap();
        let lid = out.table.rows()[0][lid_col].as_int().unwrap();
        let trace = c.lineage.trace(lid).unwrap();
        // Tuple -> scored tuple -> films table root.
        assert!(trace.depth() >= 3);
        let funcs: Vec<String> = trace.functions().into_iter().map(|(f, _)| f).collect();
        assert_eq!(funcs[0], "combine_score");
        assert!(funcs.contains(&"gen_recency_score".to_string()));
        assert!(funcs.contains(&"ingest".to_string()));
    }

    #[test]
    fn filter_keeps_subset_with_lineage() {
        let mut c = ctx();
        let out = execute_body(
            &mut c,
            "filter_recent",
            1,
            &FunctionBody::FilterExpr {
                input: "films".into(),
                predicate: "year >= 1988".into(),
            },
            "recent",
        )
        .unwrap();
        assert_eq!(out.table.len(), 2);
        assert!(out.table.schema().index_of("lid").is_some());
    }

    #[test]
    fn concept_score_separates_plots() {
        let mut c = ctx();
        let plots = Table::from_rows(
            "plots",
            Schema::of(&[("id", DataType::Int), ("chars", DataType::Str)]),
            vec![
                vec![1i64.into(), "A gun fight and a murder on a plane.".into()],
                vec![2i64.into(), "Tea in a quiet garden all afternoon.".into()],
            ],
        )
        .unwrap();
        c.ingest_table(plots, "d").unwrap();
        let out = execute_body(
            &mut c,
            "gen_excitement_score",
            1,
            &FunctionBody::ConceptScore {
                input: "plots".into(),
                text_column: "chars".into(),
                keywords: vec!["gun".into(), "murder".into(), "attack".into()],
                output_column: "excitement_score".into(),
            },
            "scored",
        )
        .unwrap();
        let s1 = out
            .table
            .cell(0, "excitement_score")
            .unwrap()
            .as_f64()
            .unwrap();
        let s2 = out
            .table
            .cell(1, "excitement_score")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(s1 > s2 + 0.2, "exciting={s1} calm={s2}");
    }

    #[test]
    fn visual_classify_flags_boring_and_fails_on_heic() {
        let mut c = ctx();
        c.media
            .add_image(exciting_poster("file://posters/1.png", MediaFormat::Png));
        c.media.add_image(boring_poster("file://posters/2.png"));
        c.media
            .add_image(exciting_poster("file://posters/3.heic", MediaFormat::Heic));
        let posters = Table::from_rows(
            "posters",
            Schema::of(&[("id", DataType::Int), ("poster_uri", DataType::Str)]),
            vec![
                vec![1i64.into(), "file://posters/1.png".into()],
                vec![2i64.into(), "file://posters/2.png".into()],
                vec![3i64.into(), "file://posters/3.heic".into()],
            ],
        )
        .unwrap();
        c.ingest_table(posters, "p").unwrap();
        let body = FunctionBody::VisualClassify {
            input: "posters".into(),
            uri_column: "poster_uri".into(),
            output_column: "boring".into(),
            implementation: VisionImpl::VlmAccurate,
            threshold: 0.4,
            convert_unsupported: false,
        };
        let out = execute_body(&mut c, "classify_boring", 1, &body, "flagged").unwrap();
        // The HEIC row failed; the two PNG rows continued (§5).
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.failed_rows.len(), 1);
        assert!(out.failed_rows[0].1.contains("unsupported"));
        assert_eq!(out.table.cell(0, "boring").unwrap(), &Value::Bool(false));
        assert_eq!(out.table.cell(1, "boring").unwrap(), &Value::Bool(true));

        // The repaired version (conversion enabled) processes all rows.
        let patched = FunctionBody::VisualClassify {
            input: "posters".into(),
            uri_column: "poster_uri".into(),
            output_column: "boring".into(),
            implementation: VisionImpl::VlmAccurate,
            threshold: 0.4,
            convert_unsupported: true,
        };
        let out2 = execute_body(&mut c, "classify_boring", 2, &patched, "flagged").unwrap();
        assert_eq!(out2.table.len(), 3);
        assert!(out2.failed_rows.is_empty());
    }

    #[test]
    fn sql_dedup_key_keeps_first_per_key() {
        let mut c = ctx();
        let dup = Table::from_rows(
            "dup",
            Schema::of(&[("id", DataType::Int), ("v", DataType::Str)]),
            vec![
                vec![1i64.into(), "a".into()],
                vec![1i64.into(), "b".into()],
                vec![2i64.into(), "c".into()],
            ],
        )
        .unwrap();
        c.ingest_table(dup, "d").unwrap();
        let body = FunctionBody::Sql {
            query: "SELECT * FROM dup".into(),
            dedup_key: Some("id".into()),
        };
        let out = execute_body(&mut c, "dedup", 1, &body, "o").unwrap();
        assert_eq!(out.table.len(), 2);
        assert_eq!(out.table.cell(0, "v").unwrap().as_str(), Some("a"));
    }

    #[test]
    fn view_populate_text_and_scene() {
        let mut c = ctx();
        c.media.add_document(Document::new(
            "doc://plot/1",
            "Irwin Winkler directed it. A gun fight erupts.",
        ));
        c.media
            .add_document(Document::new("doc://plot/2", "Tea in the garden."));
        c.media
            .add_image(exciting_poster("file://posters/1.png", MediaFormat::Png));
        c.media.add_image(boring_poster("file://posters/2.png"));

        let t = execute_body(
            &mut c,
            "populate_views",
            1,
            &FunctionBody::ViewPopulate {
                modality: "text".into(),
                implementation: VisionImpl::VlmAccurate,
                convert_unsupported: false,
            },
            "text_views",
        )
        .unwrap();
        assert!(t.failed_rows.is_empty());
        assert!(c.catalog.contains("text_texts"));
        assert_eq!(c.catalog.get("text_texts").unwrap().len(), 2);
        // did comes from the URI convention.
        let texts = c.catalog.get("text_texts").unwrap();
        assert_eq!(texts.cell(0, "did").unwrap(), &Value::Int(1));

        let s = execute_body(
            &mut c,
            "populate_views",
            1,
            &FunctionBody::ViewPopulate {
                modality: "scene".into(),
                implementation: VisionImpl::VlmAccurate,
                convert_unsupported: false,
            },
            "scene_views",
        )
        .unwrap();
        assert!(s.failed_rows.is_empty());
        assert!(c.catalog.contains("scene_objects"));
        assert!(c.catalog.get("scene_objects").unwrap().len() >= 4);
    }

    #[test]
    fn view_populate_collects_heic_failures_until_patched() {
        let mut c = ctx();
        c.media
            .add_image(exciting_poster("file://posters/9.heic", MediaFormat::Heic));
        let v1 = execute_body(
            &mut c,
            "populate_views",
            1,
            &FunctionBody::ViewPopulate {
                modality: "scene".into(),
                implementation: VisionImpl::VlmAccurate,
                convert_unsupported: false,
            },
            "sv",
        )
        .unwrap();
        assert_eq!(v1.failed_rows.len(), 1);
        let v2 = execute_body(
            &mut c,
            "populate_views",
            2,
            &FunctionBody::ViewPopulate {
                modality: "scene".into(),
                implementation: VisionImpl::VlmAccurate,
                convert_unsupported: true,
            },
            "sv",
        )
        .unwrap();
        assert!(v2.failed_rows.is_empty());
    }

    #[test]
    fn unknown_modality_is_fatal() {
        let mut c = ctx();
        let err = execute_body(
            &mut c,
            "populate_views",
            1,
            &FunctionBody::ViewPopulate {
                modality: "audio".into(),
                implementation: VisionImpl::VlmAccurate,
                convert_unsupported: false,
            },
            "o",
        );
        assert!(matches!(err, Err(ExecError::Media(_))));
    }

    #[test]
    fn ocr_impl_is_less_accurate_than_vlm() {
        let llm = SimLlm::new(42, TokenMeter::new());
        let boring = boring_poster("b.png");
        let exciting = exciting_poster("e.png", MediaFormat::Png);
        let vlm_b = visual_interest(&boring, VisionImpl::VlmAccurate, &llm).unwrap();
        let vlm_e = visual_interest(&exciting, VisionImpl::VlmAccurate, &llm).unwrap();
        assert!(vlm_e > vlm_b + 0.2, "vlm: exciting={vlm_e} boring={vlm_b}");
        // OCR cannot see colors/objects: both posters look alike to it.
        let ocr_b = visual_interest(&boring, VisionImpl::Ocr, &llm).unwrap();
        let ocr_e = visual_interest(&exciting, VisionImpl::Ocr, &llm).unwrap();
        assert!((ocr_e - ocr_b).abs() < 0.15);
    }
}
