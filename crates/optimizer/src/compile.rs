//! The query optimizer's compile loop: coder → profiler → critic per node
//! (§4), with profiling on sampled inputs and cost/accuracy-based selection
//! among alternative physical implementations.

use crate::coder::{synthesize, CoderContext, CoderFaults};
use crate::rewrite::{rewrite_plan, RewriteEvent};
use kath_exec::{execute_body, ExecContext, ExecError, PhysicalNode, PhysicalPlan};
use kath_fao::{FunctionBody, FunctionRegistry, FunctionSignature, ProfileStats, VisionImpl};
use kath_lineage::{LineagePolicy, LineageStore};
use kath_model::Verdict;
use kath_parser::{LogicalPlan, StepTag};
use kath_storage::Table;
use std::time::Instant;

/// Compiler options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Rows sampled per input relation for profiling.
    pub sample_size: usize,
    /// Minimum acceptable estimated accuracy for a physical implementation.
    pub accuracy_floor: f64,
    /// Injected coder faults (tests/benches).
    pub faults: CoderFaults,
    /// Apply logical rewrites before compiling.
    pub rewrites: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            sample_size: 4,
            accuracy_floor: 0.9,
            faults: CoderFaults::default(),
            rewrites: true,
        }
    }
}

/// A critic intervention (§4: semantic correctness loop).
#[derive(Debug, Clone, PartialEq)]
pub struct CritiqueEvent {
    /// The corrected function.
    pub func_id: String,
    /// The critic's corrective hint.
    pub hint: String,
    /// Version found wrong.
    pub from_ver: u32,
    /// Corrected version.
    pub to_ver: u32,
}

/// A physical implementation choice (§4: "chooses the one that produces
/// acceptable outputs at the lowest cost").
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionEvent {
    /// The function.
    pub func_id: String,
    /// The chosen implementation's note.
    pub chosen: String,
    /// How many candidates were profiled.
    pub candidates: usize,
    /// Profiled cost of the winner.
    pub cost: f64,
    /// Estimated accuracy of the winner.
    pub accuracy: f64,
}

/// The compiler's output.
#[derive(Debug)]
pub struct CompileReport {
    /// The executable physical plan.
    pub physical: PhysicalPlan,
    /// Logical rewrites applied.
    pub rewrites: Vec<RewriteEvent>,
    /// Critic interventions.
    pub critiques: Vec<CritiqueEvent>,
    /// Implementation selections (one per multi-candidate node).
    pub selections: Vec<SelectionEvent>,
}

/// Compiles a verified logical plan: generates function bodies, profiles
/// them on samples, lets the critic check semantics, registers everything in
/// the function registry, and emits the physical plan.
pub fn compile(
    logical: &LogicalPlan,
    ctx: &ExecContext,
    registry: &mut FunctionRegistry,
    clarifications: &[(String, String)],
    opts: &CompileOptions,
) -> Result<CompileReport, ExecError> {
    let (logical, rewrites) = if opts.rewrites {
        rewrite_plan(logical.clone(), true, true)
    } else {
        (logical.clone(), Vec::new())
    };

    let mut sample_ctx = build_sample_ctx(ctx, opts.sample_size);
    let mut physical = PhysicalPlan::default();
    let mut critiques = Vec::new();
    let mut selections = Vec::new();

    for node in &logical.nodes {
        if node.prewritten {
            // The pre-written view-population function of §6, split into its
            // text and scene halves so each materializes its own views.
            for (func, modality) in [
                ("populate_text_views", "text"),
                ("populate_scene_views", "scene"),
            ] {
                let body = FunctionBody::ViewPopulate {
                    modality: modality.into(),
                    implementation: VisionImpl::VlmAccurate,
                    convert_unsupported: false,
                };
                let sig = FunctionSignature::new(
                    func,
                    format!("{} ({modality} half)", node.signature.description),
                    vec![],
                    format!("{modality}_views"),
                );
                if !registry.contains(func) {
                    registry.register(sig, body.clone(), "pre-written (§6)");
                }
                let ver = registry.get(func)?.active;
                // Materialize sampled views so downstream coding can read
                // their schemas.
                let _ = execute_body(
                    &mut sample_ctx,
                    func,
                    ver,
                    &body,
                    &format!("{modality}_views"),
                );
                physical.nodes.push(PhysicalNode {
                    func_id: func.into(),
                    output: format!("{modality}_views"),
                });
            }
            continue;
        }

        let func_id = node.signature.name.clone();
        let sample_snapshot = sample_ctx.catalog.snapshot();
        let coder_ctx = CoderContext {
            catalog: &sample_snapshot,
            clarifications,
            faults: opts.faults,
        };
        let candidates = synthesize(node, &coder_ctx, &ctx.llm);
        assert!(!candidates.is_empty(), "coder produced no candidates");

        // Profile every candidate on a fork of the sample context.
        let mut profiled: Vec<(FunctionBody, String, ProfileStats, Option<Table>)> = Vec::new();
        for (body, note) in &candidates {
            let mut fork = fork_ctx(&sample_ctx);
            let tokens_before = fork.llm.meter().usage().total();
            let started = Instant::now(); // lint: nondet-ok — candidate profiling wall-clock; ranks compile candidates, not query results
            let result = execute_body(&mut fork, &func_id, 1, body, &node.signature.output);
            let runtime_ms = started.elapsed().as_secs_f64() * 1000.0;
            let tokens = fork.llm.meter().usage().total() - tokens_before;
            match result {
                Ok(outcome) if outcome.failed_rows.is_empty() => {
                    profiled.push((
                        body.clone(),
                        note.clone(),
                        ProfileStats {
                            runtime_ms,
                            tokens,
                            rows_in: outcome.rows_in,
                            rows_out: outcome.table.len(),
                            accuracy: None,
                        },
                        Some(outcome.table),
                    ));
                }
                // Candidates that fail on the sample are recorded with no
                // output; the engine's monitor would repair them at run time,
                // but the optimizer prefers alternatives that just work.
                _ => profiled.push((
                    body.clone(),
                    note.clone(),
                    ProfileStats {
                        runtime_ms,
                        tokens,
                        rows_in: 0,
                        rows_out: 0,
                        accuracy: Some(0.0),
                    },
                    None,
                )),
            }
        }

        // Accuracy: agreement with the first (reference) candidate, blended
        // with an offline prior per implementation. The prior is the paper's
        // "offline profiling" (§4): small online samples can be degenerate
        // (e.g. every sampled poster happens to be boring), and the prior
        // keeps known-weak implementations from slipping through.
        if let Some(reference) = profiled.first().and_then(|p| p.3.clone()) {
            let n = profiled.len();
            for item in profiled.iter_mut().take(n) {
                let acc = match &item.3 {
                    Some(out) => 0.5 * agreement(&reference, out) + 0.5 * accuracy_prior(&item.0),
                    None => 0.0,
                };
                item.2.accuracy = Some(acc);
            }
        }

        // Select: cheapest candidate meeting the accuracy floor; if none
        // meets it, the most accurate one.
        let chosen_idx = {
            let eligible: Vec<usize> = (0..profiled.len())
                .filter(|&i| profiled[i].2.accuracy.unwrap_or(1.0) >= opts.accuracy_floor)
                .collect();
            if eligible.is_empty() {
                (0..profiled.len())
                    .max_by(|&a, &b| {
                        profiled[a]
                            .2
                            .accuracy
                            .unwrap_or(0.0)
                            .total_cmp(&profiled[b].2.accuracy.unwrap_or(0.0))
                    })
                    .unwrap_or(0)
            } else {
                *eligible
                    .iter()
                    .min_by(|&&a, &&b| profiled[a].2.cost().total_cmp(&profiled[b].2.cost()))
                    .expect("non-empty")
            }
        };
        let (body, note, stats, _) = profiled.swap_remove(chosen_idx);
        if candidates.len() > 1 {
            selections.push(SelectionEvent {
                func_id: func_id.clone(),
                chosen: note.clone(),
                candidates: candidates.len(),
                cost: stats.cost(),
                accuracy: stats.accuracy.unwrap_or(1.0),
            });
        }
        let ver = registry.register(node.signature.clone(), body.clone(), note);
        registry.set_profile(&func_id, ver, stats)?;

        // Materialize the winner's sample output for downstream nodes.
        let mut active_body = body;
        let mut active_ver = ver;
        let _ = execute_body(
            &mut sample_ctx,
            &func_id,
            active_ver,
            &active_body,
            &node.signature.output,
        );

        // Critic: semantic direction check on score functions (§4's example
        // of a reversed recency score).
        if matches!(node.tag, StepTag::RecencyScore) {
            if let Ok(out) = sample_ctx.catalog.get(&node.signature.output) {
                let samples: Vec<(f64, f64)> = out
                    .rows()
                    .iter()
                    .filter_map(|r| {
                        let y = out.schema().index_of("year")?;
                        let s = out.schema().index_of("recency_score")?;
                        Some((r[y].as_f64()?, r[s].as_f64()?))
                    })
                    .collect();
                let verdict = ctx
                    .llm
                    .critique_monotonic("assign a recency score based on release year", &samples);
                if let Verdict::Mismatch { hint } = verdict {
                    // Coder retries without the fault; critic re-checks.
                    let fixed_snapshot = sample_ctx.catalog.snapshot();
                    let fixed_ctx = CoderContext {
                        catalog: &fixed_snapshot,
                        clarifications,
                        faults: CoderFaults {
                            reversed_recency: false,
                        },
                    };
                    let fixed = synthesize(node, &fixed_ctx, &ctx.llm);
                    let (fixed_body, _) = fixed.into_iter().next().expect("candidate");
                    let to_ver = registry.add_version(
                        &func_id,
                        fixed_body.clone(),
                        format!("critic: {hint}"),
                    )?;
                    critiques.push(CritiqueEvent {
                        func_id: func_id.clone(),
                        hint,
                        from_ver: active_ver,
                        to_ver,
                    });
                    active_body = fixed_body;
                    active_ver = to_ver;
                    let _ = execute_body(
                        &mut sample_ctx,
                        &func_id,
                        active_ver,
                        &active_body,
                        &node.signature.output,
                    );
                }
            }
        }

        physical.nodes.push(PhysicalNode {
            func_id,
            output: node.signature.output.clone(),
        });
    }

    Ok(CompileReport {
        physical,
        rewrites,
        critiques,
        selections,
    })
}

/// Offline accuracy prior per implementation (the "offline profiling" of
/// §4), blended with online sample agreement during selection.
fn accuracy_prior(body: &FunctionBody) -> f64 {
    match body {
        FunctionBody::VisualClassify { implementation, .. } => match implementation {
            VisionImpl::VlmAccurate => 0.97,
            VisionImpl::Cascade => 0.93,
            VisionImpl::VlmCheap => 0.88,
            VisionImpl::Ocr => 0.55,
        },
        _ => 1.0,
    }
}

/// Row-wise agreement between two tables on their last column (the computed
/// flag/score), used as the accuracy estimate for implementation selection.
fn agreement(reference: &Table, candidate: &Table) -> f64 {
    if reference.is_empty() && candidate.is_empty() {
        return 1.0;
    }
    if reference.len() != candidate.len() || reference.is_empty() {
        return 0.0;
    }
    let rc = reference.schema().arity() - 1;
    let cc = candidate.schema().arity() - 1;
    let matches = reference
        .rows()
        .iter()
        .zip(candidate.rows())
        .filter(|(a, b)| a[rc] == b[cc])
        .count();
    matches as f64 / reference.len() as f64
}

/// Builds the profiling context: sampled base tables, full media, fresh
/// lineage with recording off.
fn build_sample_ctx(ctx: &ExecContext, sample_size: usize) -> ExecContext {
    let mut sample = ExecContext::new(ctx.llm.clone());
    sample.lineage = LineageStore::with_policy(LineagePolicy::Off);
    sample.media = ctx.media.clone();
    for name in ctx.catalog.table_names() {
        if let Ok(table) = ctx.catalog.get(&name) {
            let mut t = table.sample(sample_size);
            t.set_name(&name);
            sample.catalog.register_or_replace(t);
        }
    }
    sample
}

/// Forks the sample context for one candidate profile run. The catalog is
/// forked, not cloned: a `SharedCatalog` clone would share the version
/// chain, leaking one candidate's materializations into the next.
fn fork_ctx(sample: &ExecContext) -> ExecContext {
    let mut fork = ExecContext::new(sample.llm.clone());
    fork.lineage = LineageStore::with_policy(LineagePolicy::Off);
    fork.media = sample.media.clone();
    fork.catalog = sample.catalog.fork();
    fork.table_lids = sample.table_lids.clone();
    fork
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_media::{BBox, Color, Document, Image, ImageObject, MediaFormat};
    use kath_model::{ScriptedChannel, SimLlm, TokenMeter};
    use kath_parser::{generate_logical_plan, NlParser};
    use kath_storage::{DataType, Schema, Value};

    const FLAGSHIP: &str = "Sort the given films in the table by how exciting \
                            they are, but the poster should be 'boring'";

    fn full_ctx() -> ExecContext {
        let mut ctx = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
        let movies = Table::from_rows(
            "movie_table",
            Schema::of(&[
                ("id", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("did", DataType::Int),
                ("vid", DataType::Int),
            ]),
            vec![
                vec![
                    1i64.into(),
                    "Guilty by Suspicion".into(),
                    1991i64.into(),
                    1i64.into(),
                    1i64.into(),
                ],
                vec![
                    2i64.into(),
                    "Clean and Sober".into(),
                    1988i64.into(),
                    2i64.into(),
                    2i64.into(),
                ],
                vec![
                    3i64.into(),
                    "Quiet Days".into(),
                    1975i64.into(),
                    3i64.into(),
                    3i64.into(),
                ],
            ],
        )
        .unwrap();
        ctx.ingest_table(movies, "file://data/movies").unwrap();
        ctx.media.add_document(Document::new(
            "doc://plot/1",
            "A gun fight and a murder shake the studio. A man jumped off a plane.",
        ));
        ctx.media.add_document(Document::new(
            "doc://plot/2",
            "A calm recovery. Tea in a quiet garden.",
        ));
        ctx.media.add_document(Document::new(
            "doc://plot/3",
            "An ordinary week of routine walks.",
        ));
        // Boring posters for 1 and 2, vivid one for 3.
        for id in [1i64, 2] {
            ctx.media.add_image(
                Image::new(format!("file://posters/{id}.png"), MediaFormat::Png)
                    .with_color(Color::rgb(110, 110, 110))
                    .with_object(
                        ImageObject::new("portrait", BBox::new(0.3, 0.2, 0.7, 0.8))
                            .with_saliency(0.25),
                    ),
            );
        }
        ctx.media.add_image(
            Image::new("file://posters/3.png", MediaFormat::Png)
                .with_color(Color::rgb(230, 30, 30))
                .with_color(Color::rgb(30, 30, 230))
                .with_object(ImageObject::new("person", BBox::new(0.1, 0.1, 0.5, 0.9)))
                .with_object(ImageObject::new(
                    "motorcycle",
                    BBox::new(0.4, 0.5, 0.9, 0.95),
                ))
                .with_object(ImageObject::new(
                    "explosion",
                    BBox::new(0.6, 0.1, 0.95, 0.4),
                )),
        );
        ctx
    }

    fn flagship_logical(ctx: &ExecContext) -> (LogicalPlan, Vec<(String, String)>) {
        let parser = NlParser::new(ctx.llm.clone());
        let channel = ScriptedChannel::new([
            "The movie plot contains scenes that are uncommon in real life",
            "Oh I prefer a more recent movie as well when scoring",
            "OK",
        ]);
        let outcome = parser.parse(FLAGSHIP, channel.as_ref());
        let plan = generate_logical_plan(&outcome.sketch, "movie_table");
        (plan, outcome.clarifications)
    }

    #[test]
    fn compile_produces_a_runnable_physical_plan() {
        let ctx = full_ctx();
        let (logical, clars) = flagship_logical(&ctx);
        let mut registry = FunctionRegistry::new();
        let report = compile(
            &logical,
            &ctx,
            &mut registry,
            &clars,
            &CompileOptions::default(),
        )
        .unwrap();
        // 2 view-population halves + 10 generated nodes.
        assert_eq!(report.physical.nodes.len(), 12);
        assert!(registry.contains("classify_boring"));
        assert!(registry.contains("gen_excitement_score"));
        // The visual classifier had alternatives profiled.
        let sel = report
            .selections
            .iter()
            .find(|s| s.func_id == "classify_boring")
            .expect("selection event");
        assert_eq!(sel.candidates, 4);
        assert!(sel.accuracy >= 0.75);
        // Profiles were recorded on the winning versions.
        let entry = registry.get("classify_boring").unwrap();
        assert!(entry.active_version().profile.is_some());
    }

    #[test]
    fn critic_catches_injected_reversed_recency() {
        let ctx = full_ctx();
        let (logical, clars) = flagship_logical(&ctx);
        let mut registry = FunctionRegistry::new();
        let opts = CompileOptions {
            faults: CoderFaults {
                reversed_recency: true,
            },
            ..CompileOptions::default()
        };
        let report = compile(&logical, &ctx, &mut registry, &clars, &opts).unwrap();
        assert_eq!(report.critiques.len(), 1);
        let c = &report.critiques[0];
        assert_eq!(c.func_id, "gen_recency_score");
        assert!(c.hint.contains("direction") || c.hint.contains("flip"));
        // The registry keeps both the wrong and the corrected version.
        let entry = registry.get("gen_recency_score").unwrap();
        assert_eq!(entry.versions.len(), 2);
        assert_eq!(entry.active, 2);
        assert!(entry.versions[1].note.starts_with("critic:"));
    }

    #[test]
    fn without_fault_no_critique_is_needed() {
        let ctx = full_ctx();
        let (logical, clars) = flagship_logical(&ctx);
        let mut registry = FunctionRegistry::new();
        let report = compile(
            &logical,
            &ctx,
            &mut registry,
            &clars,
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(report.critiques.is_empty());
        assert_eq!(registry.get("gen_recency_score").unwrap().versions.len(), 1);
    }

    #[test]
    fn ocr_loses_selection_to_vlm_on_accuracy() {
        let ctx = full_ctx();
        let (logical, clars) = flagship_logical(&ctx);
        let mut registry = FunctionRegistry::new();
        let report = compile(
            &logical,
            &ctx,
            &mut registry,
            &clars,
            &CompileOptions::default(),
        )
        .unwrap();
        let chosen = &registry
            .get("classify_boring")
            .unwrap()
            .active_version()
            .body;
        let FunctionBody::VisualClassify { implementation, .. } = chosen else {
            panic!()
        };
        // OCR agrees too rarely with the reference to pass the floor.
        assert_ne!(*implementation, VisionImpl::Ocr);
        let _ = report;
    }

    #[test]
    fn sampled_tables_bound_profiling_cost() {
        let ctx = full_ctx();
        let sample = build_sample_ctx(&ctx, 2);
        assert_eq!(sample.catalog.get("movie_table").unwrap().len(), 2);
        assert_eq!(
            sample.catalog.get("movie_table").unwrap().name(),
            "movie_table"
        );
        // Media still fully available for the view-population sample run.
        assert_eq!(sample.media.counts().0, 3);
    }

    #[test]
    fn agreement_measures_last_column_matches() {
        let schema = Schema::of(&[("id", DataType::Int), ("flag", DataType::Bool)]);
        let a = Table::from_rows(
            "a",
            schema.clone(),
            vec![
                vec![1i64.into(), true.into()],
                vec![2i64.into(), false.into()],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "b",
            schema,
            vec![
                vec![1i64.into(), true.into()],
                vec![2i64.into(), true.into()],
            ],
        )
        .unwrap();
        assert_eq!(agreement(&a, &a), 1.0);
        assert_eq!(agreement(&a, &b), 0.5);
        let empty = Table::new("e", Schema::of(&[("x", DataType::Int)]));
        assert_eq!(agreement(&empty, &empty), 1.0);
        assert_eq!(agreement(&a, &empty), 0.0);
        let _ = Value::Null;
    }
}
