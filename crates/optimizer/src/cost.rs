//! The unified cost model (§1: "compare alternatives for the same sub-task
//! under a unified cost model, optimizing query accuracy and token cost").
//!
//! Profiled sample costs are extrapolated to full-table cardinalities using
//! classical selectivity estimates from `kath-storage` statistics.

use kath_fao::{FunctionBody, FunctionRegistry};
use kath_storage::Catalog;

/// A cost estimate for one function or a whole plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Estimated simulated tokens.
    pub tokens: f64,
    /// Estimated runtime, milliseconds.
    pub runtime_ms: f64,
    /// Estimated accuracy in `[0,1]` (product over nodes).
    pub accuracy: f64,
}

impl CostEstimate {
    /// Scalar cost (same weighting as `ProfileStats::cost`).
    pub fn scalar(&self) -> f64 {
        self.tokens + self.runtime_ms / 1000.0
    }
}

/// Estimates the cost of executing a function's active version over its
/// full inputs, by scaling the sample profile linearly in input rows (model
/// calls in KathDB are per-row, so linear scaling is the right first-order
/// model).
pub fn estimate_function(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_id: &str,
) -> Option<CostEstimate> {
    let entry = registry.get(func_id).ok()?;
    let version = entry.active_version();
    let profile = version.profile.as_ref()?;
    let full_rows: usize = match &version.body {
        FunctionBody::ViewPopulate { .. } => profile.rows_in.max(1),
        body => body
            .inputs()
            .iter()
            .map(|t| catalog.get(t).map(|t| t.len()).unwrap_or(profile.rows_in))
            .sum(),
    };
    let scale = if profile.rows_in == 0 {
        1.0
    } else {
        full_rows as f64 / profile.rows_in as f64
    };
    Some(CostEstimate {
        tokens: profile.tokens as f64 * scale,
        runtime_ms: profile.runtime_ms * scale,
        accuracy: profile.accuracy.unwrap_or(1.0),
    })
}

/// Estimates a whole plan: tokens/runtime add, accuracies multiply (§4's
/// observation that more, smaller functions compound accuracy differently
/// than few large ones).
pub fn estimate_plan(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_ids: &[String],
) -> CostEstimate {
    let mut total = CostEstimate {
        accuracy: 1.0,
        ..Default::default()
    };
    for f in func_ids {
        if let Some(e) = estimate_function(registry, catalog, f) {
            total.tokens += e.tokens;
            total.runtime_ms += e.runtime_ms;
            total.accuracy *= e.accuracy;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_fao::{FunctionSignature, ProfileStats};
    use kath_storage::{DataType, Schema, Table};

    fn setup() -> (FunctionRegistry, Catalog) {
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("f", "maps", vec!["t".into()], "o"),
            FunctionBody::MapExpr {
                input: "t".into(),
                expr: "x + 1".into(),
                output_column: "y".into(),
            },
            "initial",
        );
        registry
            .set_profile(
                "f",
                1,
                ProfileStats {
                    runtime_ms: 2.0,
                    tokens: 40,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(0.9),
                },
            )
            .unwrap();
        let mut catalog = Catalog::new();
        let mut t = Table::new("t", Schema::of(&[("x", DataType::Int)]));
        for i in 0..100i64 {
            t.push(vec![i.into()]).unwrap();
        }
        catalog.register(t).unwrap();
        (registry, catalog)
    }

    #[test]
    fn linear_extrapolation_from_sample() {
        let (registry, catalog) = setup();
        let e = estimate_function(&registry, &catalog, "f").unwrap();
        // 100 rows / 4 sampled = 25x.
        assert!((e.tokens - 1000.0).abs() < 1e-9);
        assert!((e.runtime_ms - 50.0).abs() < 1e-9);
        assert_eq!(e.accuracy, 0.9);
        assert!(e.scalar() > 1000.0);
    }

    #[test]
    fn plan_estimate_compounds_accuracy() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("g", "maps", vec!["t".into()], "o2"),
            FunctionBody::MapExpr {
                input: "t".into(),
                expr: "x * 2".into(),
                output_column: "z".into(),
            },
            "initial",
        );
        registry
            .set_profile(
                "g",
                1,
                ProfileStats {
                    runtime_ms: 1.0,
                    tokens: 10,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(0.8),
                },
            )
            .unwrap();
        let e = estimate_plan(&registry, &catalog, &["f".into(), "g".into()]);
        assert!((e.accuracy - 0.72).abs() < 1e-9);
        assert!(e.tokens > 1000.0);
    }

    #[test]
    fn unprofiled_functions_are_skipped() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("h", "unprofiled", vec!["t".into()], "o3"),
            FunctionBody::FilterExpr {
                input: "t".into(),
                predicate: "x > 0".into(),
            },
            "initial",
        );
        assert!(estimate_function(&registry, &catalog, "h").is_none());
        let e = estimate_plan(&registry, &catalog, &["h".into()]);
        assert_eq!(e.tokens, 0.0);
        assert_eq!(e.accuracy, 1.0);
    }
}
