//! The unified cost model (§1: "compare alternatives for the same sub-task
//! under a unified cost model, optimizing query accuracy and token cost").
//!
//! Profiled sample costs are extrapolated to full-table cardinalities using
//! classical selectivity estimates from `kath-storage` statistics.

use kath_fao::{FunctionBody, FunctionRegistry};
use kath_storage::{
    compile_pays_off, vector_search_cost, Catalog, ExecMode, VectorStrategy, DEFAULT_BATCH_SIZE,
};

/// A cost estimate for one function or a whole plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Estimated simulated tokens.
    pub tokens: f64,
    /// Estimated runtime, milliseconds.
    pub runtime_ms: f64,
    /// Estimated accuracy in `[0,1]` (product over nodes).
    pub accuracy: f64,
}

impl CostEstimate {
    /// Scalar cost (same weighting as `ProfileStats::cost`).
    pub fn scalar(&self) -> f64 {
        self.tokens + self.runtime_ms / 1000.0
    }
}

/// Per-row overhead of the Volcano iterator protocol, in milliseconds: one
/// virtual `next()` dispatch plus per-row expression setup (name resolution,
/// `Value` matching) for every operator a row passes through.
pub const ROW_OVERHEAD_MS: f64 = 4e-4;

/// Per-batch overhead of batched execution, in milliseconds: one virtual
/// `next_batch()` dispatch plus columnar assembly per operator.
pub const BATCH_OVERHEAD_MS: f64 = 3e-3;

/// Per-value touch cost shared by both protocols, in milliseconds.
pub const VALUE_TOUCH_MS: f64 = 2e-5;

/// Estimated per-operator overhead of pushing `rows` rows through a
/// relational pipeline in the given execution mode. Volcano pays
/// [`ROW_OVERHEAD_MS`] per row; batched execution amortizes
/// [`BATCH_OVERHEAD_MS`] over each batch. Both pay [`VALUE_TOUCH_MS`] per
/// row. These per-batch vs per-row terms are what lets physical selection
/// prefer batched implementations as cardinality grows.
pub fn relational_overhead_ms(rows: usize, mode: ExecMode) -> f64 {
    let touch = rows as f64 * VALUE_TOUCH_MS;
    match mode {
        ExecMode::Volcano => touch + rows as f64 * ROW_OVERHEAD_MS,
        ExecMode::Batched(n) => {
            let n = n.max(1);
            let batches = rows.div_ceil(n).max(1);
            touch + batches as f64 * BATCH_OVERHEAD_MS
        }
    }
}

/// The cheaper execution mode for a pipeline over `rows` rows under the
/// model above, using the default batch size. Tiny inputs stay on the
/// Volcano path (a whole batch costs more than a handful of `next()`
/// calls); everything else runs batched.
pub fn preferred_exec_mode(rows: usize) -> ExecMode {
    let batched = ExecMode::Batched(DEFAULT_BATCH_SIZE);
    if relational_overhead_ms(rows, batched) < relational_overhead_ms(rows, ExecMode::Volcano) {
        batched
    } else {
        ExecMode::Volcano
    }
}

/// Fixed cost of enlisting one extra worker for a morsel-parallel pipeline,
/// in milliseconds: a scoped-thread spawn, its thread-local partial state,
/// and its share of the deterministic merge step. This startup term is what
/// keeps small pipelines serial — a worker must amortize its spawn over
/// enough morsels to pay for itself.
pub const WORKER_STARTUP_MS: f64 = 0.05;

/// Estimated overhead of pushing `rows` rows through a relational pipeline
/// in `mode` with `workers`-way morsel parallelism: the per-morsel work
/// divides across workers; each worker past the first adds
/// [`WORKER_STARTUP_MS`]. `workers == 1` degenerates to
/// [`relational_overhead_ms`] exactly.
pub fn parallel_overhead_ms(rows: usize, mode: ExecMode, workers: usize) -> f64 {
    let w = workers.max(1) as f64;
    relational_overhead_ms(rows, mode) / w + (w - 1.0) * WORKER_STARTUP_MS
}

/// A physical execution strategy: how the pipeline spine is driven, by how
/// many workers, and whether its pipelines run closure-compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStrategy {
    /// Tuple-at-a-time vs batch-at-a-time.
    pub mode: ExecMode,
    /// Degree of morsel parallelism (1 = serial).
    pub workers: usize,
    /// Whether eligible pipelines run as fused compiled kernels instead of
    /// interpreted operators (only meaningful for batched modes — the
    /// compiled drive is batch-at-a-time by construction).
    pub compiled: bool,
}

/// The cheapest degree of parallelism for `rows` rows in `mode`, searched
/// up to `max_workers` (the host's cores, typically). The curve is convex —
/// per-worker startup cost against the divided per-morsel win — so the
/// argmin is the break-even point the morsel literature predicts: 1 for
/// small inputs, rising with cardinality.
pub fn preferred_parallelism_capped(rows: usize, mode: ExecMode, max_workers: usize) -> usize {
    (1..=max_workers.max(1))
        .min_by(|a, b| {
            parallel_overhead_ms(rows, mode, *a).total_cmp(&parallel_overhead_ms(rows, mode, *b))
        })
        .unwrap_or(1)
}

/// [`preferred_parallelism_capped`] with the host's available parallelism
/// as the cap.
pub fn preferred_parallelism(rows: usize, mode: ExecMode) -> usize {
    preferred_parallelism_capped(rows, mode, kath_storage::host_parallelism())
}

/// Generalizes [`preferred_exec_mode`] to a `(mode, workers, compiled)`
/// choice from cardinality: pick the cheaper spine protocol, the
/// break-even worker count for it (capped at `max_workers`), and whether
/// compiling the pipeline's kernels pays for itself. Volcano pipelines
/// never parallelize or compile — the row protocol is the serial
/// compatibility baseline. The compile choice delegates to the single
/// decision rule in [`kath_storage::compile_pays_off`] — the same rule the
/// SQL driver's `auto` mode consults at runtime — so the cost model and
/// the executor can never disagree (the consistency test below pins that
/// the serial ms estimates' argmin still matches the shared rule).
pub fn preferred_exec_strategy(rows: usize, max_workers: usize) -> ExecStrategy {
    let mode = preferred_exec_mode(rows);
    let (workers, compiled) = match mode {
        ExecMode::Volcano => (1, false),
        batched => (
            preferred_parallelism_capped(rows, batched, max_workers),
            compile_pays_off(rows),
        ),
    };
    ExecStrategy {
        mode,
        workers,
        compiled,
    }
}

/// One-time serial cost of compiling a query's expression kernels into
/// fused pipeline closures, in milliseconds: walking the expression trees,
/// resolving column ordinals, allocating the closure tree. Paid once per
/// query regardless of cardinality or worker count — the term that keeps
/// tiny tables interpreted.
pub const COMPILE_SETUP_MS: f64 = 0.06;

/// Per-value touch cost of a compiled pipeline, in milliseconds. Compiled
/// kernels skip the per-batch expression-tree walk and name resolution
/// that [`VALUE_TOUCH_MS`] folds in, so the per-value price is lower.
pub const COMPILED_VALUE_TOUCH_MS: f64 = 1e-5;

/// Per-batch overhead of a compiled pipeline, in milliseconds: one fused
/// `process` call instead of one virtual `next_batch` dispatch per
/// operator ([`BATCH_OVERHEAD_MS`]).
pub const COMPILED_BATCH_OVERHEAD_MS: f64 = 1e-3;

/// Estimated overhead of pushing `rows` rows through a **compiled** fused
/// pipeline at the given batch size with `workers`-way morsel parallelism:
/// the one-time [`COMPILE_SETUP_MS`] (serial — one compilation serves all
/// workers), the divided per-value/per-batch work, and the usual
/// per-worker startup. Compare against [`parallel_overhead_ms`] to price
/// the compiled-vs-interpreted choice; the serial (`workers == 1`)
/// crossover is exactly [`kath_storage::COMPILE_BREAK_EVEN_ROWS`].
pub fn compiled_pipeline_ms(rows: usize, batch: usize, workers: usize) -> f64 {
    let w = workers.max(1) as f64;
    let batches = rows.div_ceil(batch.max(1)).max(1) as f64;
    COMPILE_SETUP_MS
        + (rows as f64 * COMPILED_VALUE_TOUCH_MS + batches * COMPILED_BATCH_OVERHEAD_MS) / w
        + (w - 1.0) * WORKER_STARTUP_MS
}

/// Milliseconds to decode one compressed column page into its in-memory
/// columnar form on a buffer-pool miss: CRC verification, dictionary /
/// run-length / bit-packing expansion, and the `ColumnVector` build. Pool
/// hits skip this entirely, so this constant prices the **cold** path — the
/// conservative bound physical selection should plan against.
pub const PAGE_DECODE_MS: f64 = 0.02;

/// Estimated wall-clock of scanning a paged table: the relational overhead
/// of the rows that survive zone-map pruning, plus one [`PAGE_DECODE_MS`]
/// per column page that must actually be decoded. `pages` counts the total
/// column pages the scan would touch; `pruned` of them are skipped via zone
/// maps *before* decompression, so they cost nothing — which is exactly why
/// the estimate rewards predicates the zone maps can prune on.
pub fn paged_scan_ms(rows: usize, pages: usize, pruned: usize, mode: ExecMode) -> f64 {
    let live = pages.saturating_sub(pruned);
    let live_rows = if pages == 0 {
        rows
    } else {
        ((rows as f64) * (live as f64) / (pages as f64)).ceil() as usize
    };
    relational_overhead_ms(live_rows, mode) + live as f64 * PAGE_DECODE_MS
}

/// Milliseconds per scored candidate of a vector similarity search: one
/// 64-dimension f32 cosine in a tight loop.
pub const VECTOR_SCORE_MS: f64 = 2e-5;

/// Estimated wall-clock of one top-k similarity query over `rows` indexed
/// vectors under `strategy` — the paper's flagship physical choice (§4):
/// the *same* logical operator implemented exactly-but-linearly (Flat) or
/// approximately-but-sublinearly (IVF). Scales the storage layer's
/// unit-free scoring-work model ([`kath_storage::vector_search_cost`]) by
/// [`VECTOR_SCORE_MS`].
pub fn estimate_vector_search_ms(rows: usize, strategy: VectorStrategy) -> f64 {
    vector_search_cost(rows, strategy) * VECTOR_SCORE_MS
}

/// The cheaper vector-search implementation for `rows` vectors: delegates
/// to the single decision rule in [`kath_storage::preferred_vector_strategy`]
/// (the one the SQL planner consults), so the planner's per-query choice
/// and the cost model can never diverge. The consistency test below pins
/// that the ms estimates' argmin still matches this rule — if the ms model
/// ever gains a strategy-specific term, that test forces the shared rule
/// to move with it.
pub fn preferred_vector_strategy(rows: usize) -> VectorStrategy {
    kath_storage::preferred_vector_strategy(rows)
}

/// Estimates the cost of executing a function's active version over its
/// full inputs, by scaling the sample profile linearly in input rows (model
/// calls in KathDB are per-row, so linear scaling is the right first-order
/// model).
pub fn estimate_function(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_id: &str,
) -> Option<CostEstimate> {
    let entry = registry.get(func_id).ok()?;
    let version = entry.active_version();
    let profile = version.profile.as_ref()?;
    let full_rows: usize = match &version.body {
        FunctionBody::ViewPopulate { .. } => profile.rows_in.max(1),
        body => body
            .inputs()
            .iter()
            .map(|t| catalog.get(t).map(|t| t.len()).unwrap_or(profile.rows_in))
            .sum(),
    };
    let scale = if profile.rows_in == 0 {
        1.0
    } else {
        full_rows as f64 / profile.rows_in as f64
    };
    Some(CostEstimate {
        tokens: profile.tokens as f64 * scale,
        runtime_ms: profile.runtime_ms * scale,
        accuracy: profile.accuracy.unwrap_or(1.0),
    })
}

/// [`estimate_function`] plus the execution-mode-dependent relational
/// overhead for bodies that run an operator pipeline (SQL, map, filter).
/// Model-call bodies are mode-independent: their per-row token cost dwarfs
/// iteration overhead.
pub fn estimate_function_in_mode(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_id: &str,
    mode: ExecMode,
) -> Option<CostEstimate> {
    estimate_function_in_strategy(
        registry,
        catalog,
        func_id,
        ExecStrategy {
            mode,
            workers: 1,
            compiled: false,
        },
    )
}

/// [`estimate_function_in_mode`] generalized to a full [`ExecStrategy`]:
/// for SQL bodies — the only ones the parallel and compiled drivers run —
/// the relational overhead divides across the strategy's workers (plus
/// per-worker startup), and a compiled strategy prices the fused-kernel
/// overhead ([`compiled_pipeline_ms`]) instead. Map/filter bodies stay
/// row-at-a-time for row-level lineage and are priced serially and
/// interpreted **regardless of the strategy** — the executor never
/// compiles or parallelizes them, and the estimate must agree with that
/// fallback rule. Token cost and accuracy are unaffected — physical
/// strategy changes wall-clock, never results.
pub fn estimate_function_in_strategy(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_id: &str,
    strategy: ExecStrategy,
) -> Option<CostEstimate> {
    let mut est = estimate_function(registry, catalog, func_id)?;
    let entry = registry.get(func_id).ok()?;
    let body = &entry.active_version().body;
    let (workers, compilable) = match body {
        FunctionBody::Sql { .. } => (strategy.workers, true),
        FunctionBody::MapExpr { .. } | FunctionBody::FilterExpr { .. } => (1, false),
        _ => return Some(est),
    };
    let mut rows = 0usize;
    let mut cold_pages = 0usize;
    for name in body.inputs() {
        if let Ok(t) = catalog.get(&name) {
            rows += t.len();
            if let Some(pt) = t.paged() {
                // A pipeline over a paged input may have to decode every
                // column page of that table on a cold buffer pool; resident
                // tables contribute nothing here.
                cold_pages += pt.page_count() * pt.schema().arity();
            }
        }
    }
    est.runtime_ms += match strategy.mode.batch_size() {
        Some(batch) if strategy.compiled && compilable => {
            compiled_pipeline_ms(rows, batch, workers)
        }
        _ => parallel_overhead_ms(rows, strategy.mode, workers),
    } + (cold_pages as f64 * PAGE_DECODE_MS) / workers.max(1) as f64;
    Some(est)
}

/// Estimates a whole plan: tokens/runtime add, accuracies multiply (§4's
/// observation that more, smaller functions compound accuracy differently
/// than few large ones).
pub fn estimate_plan(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_ids: &[String],
) -> CostEstimate {
    let mut total = CostEstimate {
        accuracy: 1.0,
        ..Default::default()
    };
    for f in func_ids {
        if let Some(e) = estimate_function(registry, catalog, f) {
            total.tokens += e.tokens;
            total.runtime_ms += e.runtime_ms;
            total.accuracy *= e.accuracy;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_fao::{FunctionSignature, ProfileStats};
    use kath_storage::{DataType, Schema, Table};

    fn setup() -> (FunctionRegistry, Catalog) {
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("f", "maps", vec!["t".into()], "o"),
            FunctionBody::MapExpr {
                input: "t".into(),
                expr: "x + 1".into(),
                output_column: "y".into(),
            },
            "initial",
        );
        registry
            .set_profile(
                "f",
                1,
                ProfileStats {
                    runtime_ms: 2.0,
                    tokens: 40,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(0.9),
                },
            )
            .unwrap();
        let mut catalog = Catalog::new();
        let mut t = Table::new("t", Schema::of(&[("x", DataType::Int)]));
        for i in 0..100i64 {
            t.push(vec![i.into()]).unwrap();
        }
        catalog.register(t).unwrap();
        (registry, catalog)
    }

    #[test]
    fn linear_extrapolation_from_sample() {
        let (registry, catalog) = setup();
        let e = estimate_function(&registry, &catalog, "f").unwrap();
        // 100 rows / 4 sampled = 25x.
        assert!((e.tokens - 1000.0).abs() < 1e-9);
        assert!((e.runtime_ms - 50.0).abs() < 1e-9);
        assert_eq!(e.accuracy, 0.9);
        assert!(e.scalar() > 1000.0);
    }

    #[test]
    fn plan_estimate_compounds_accuracy() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("g", "maps", vec!["t".into()], "o2"),
            FunctionBody::MapExpr {
                input: "t".into(),
                expr: "x * 2".into(),
                output_column: "z".into(),
            },
            "initial",
        );
        registry
            .set_profile(
                "g",
                1,
                ProfileStats {
                    runtime_ms: 1.0,
                    tokens: 10,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(0.8),
                },
            )
            .unwrap();
        let e = estimate_plan(&registry, &catalog, &["f".into(), "g".into()]);
        assert!((e.accuracy - 0.72).abs() < 1e-9);
        assert!(e.tokens > 1000.0);
    }

    #[test]
    fn batched_overhead_beats_volcano_at_scale() {
        let volcano = relational_overhead_ms(100_000, ExecMode::Volcano);
        let batched = relational_overhead_ms(100_000, ExecMode::Batched(1024));
        assert!(
            batched < volcano / 5.0,
            "batched={batched}ms volcano={volcano}ms"
        );
        // Tiny batches pay their per-batch overhead almost per row and lose
        // to a big batch.
        let tiny = relational_overhead_ms(100_000, ExecMode::Batched(1));
        assert!(batched < tiny);
        assert_eq!(preferred_exec_mode(100_000), ExecMode::Batched(1024));
        // A one-row pipeline is not worth a batch.
        assert_eq!(preferred_exec_mode(1), ExecMode::Volcano);
    }

    #[test]
    fn parallelism_pays_at_scale_but_not_for_small_inputs() {
        let batched = ExecMode::Batched(1024);
        // 100k rows: four workers beat one by well over the startup cost.
        let serial = parallel_overhead_ms(100_000, batched, 1);
        let four = parallel_overhead_ms(100_000, batched, 4);
        assert_eq!(serial, relational_overhead_ms(100_000, batched));
        assert!(four < serial / 2.0, "four={four}ms serial={serial}ms");
        assert!(preferred_parallelism_capped(100_000, batched, 8) > 1);
        // A handful of rows cannot amortize a thread spawn.
        assert_eq!(preferred_parallelism_capped(10, batched, 8), 1);
        // The cap is respected.
        assert!(preferred_parallelism_capped(10_000_000, batched, 4) <= 4);
        assert!(preferred_parallelism(100, batched) >= 1);
    }

    #[test]
    fn vector_cost_model_agrees_with_the_planner_rule() {
        // Flat is cheap while small, IVF wins at scale…
        assert_eq!(preferred_vector_strategy(100), VectorStrategy::Flat);
        assert_eq!(preferred_vector_strategy(100_000), VectorStrategy::Ivf);
        assert!(
            estimate_vector_search_ms(100_000, VectorStrategy::Ivf)
                < estimate_vector_search_ms(100_000, VectorStrategy::Flat) / 2.0
        );
        // …and the ms estimates' argmin coincides with the shared decision
        // rule at every cardinality (guards future strategy-specific terms
        // in the ms model drifting away from the planner's rule).
        for rows in (0..300_000).step_by(1111) {
            let cheaper_ms = if estimate_vector_search_ms(rows, VectorStrategy::Ivf)
                < estimate_vector_search_ms(rows, VectorStrategy::Flat)
            {
                VectorStrategy::Ivf
            } else {
                VectorStrategy::Flat
            };
            assert_eq!(
                cheaper_ms,
                preferred_vector_strategy(rows),
                "divergence at {rows} rows"
            );
        }
    }

    #[test]
    fn strategy_generalizes_mode_choice() {
        let s = preferred_exec_strategy(100_000, 8);
        assert!(matches!(s.mode, ExecMode::Batched(_)));
        assert!(s.workers > 1, "large scans should parallelize: {s:?}");
        assert!(s.compiled, "large scans amortize compilation: {s:?}");
        let tiny = preferred_exec_strategy(1, 8);
        assert_eq!(tiny.mode, ExecMode::Volcano);
        assert_eq!(tiny.workers, 1, "Volcano stays serial");
        assert!(!tiny.compiled, "Volcano never compiles");
    }

    #[test]
    fn strategy_aware_estimate_divides_sql_overhead_only() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("q", "selects", vec!["t".into()], "o_sql"),
            FunctionBody::Sql {
                query: "SELECT x FROM t".into(),
                dedup_key: None,
            },
            "initial",
        );
        registry
            .set_profile(
                "q",
                1,
                ProfileStats {
                    runtime_ms: 2.0,
                    tokens: 0,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(1.0),
                },
            )
            .unwrap();
        let strat = |workers| ExecStrategy {
            mode: ExecMode::Batched(1024),
            workers,
            compiled: false,
        };
        // workers == 1 is exactly the mode-only estimate.
        let serial = estimate_function_in_strategy(&registry, &catalog, "q", strat(1)).unwrap();
        let mode_only =
            estimate_function_in_mode(&registry, &catalog, "q", ExecMode::Batched(1024)).unwrap();
        assert!((serial.runtime_ms - mode_only.runtime_ms).abs() < 1e-12);
        // SQL bodies divide their relational overhead across workers…
        let wide = estimate_function_in_strategy(&registry, &catalog, "q", strat(4)).unwrap();
        assert_eq!(wide.tokens, serial.tokens);
        assert_eq!(wide.accuracy, serial.accuracy);
        assert!(wide.runtime_ms != serial.runtime_ms);
        // …but map/filter bodies stay row-at-a-time (row-level lineage) and
        // are priced serially at any worker count.
        let map_serial = estimate_function_in_strategy(&registry, &catalog, "f", strat(1)).unwrap();
        let map_wide = estimate_function_in_strategy(&registry, &catalog, "f", strat(4)).unwrap();
        assert_eq!(map_wide.runtime_ms, map_serial.runtime_ms);
    }

    #[test]
    fn mode_aware_estimate_adds_relational_overhead() {
        let (registry, catalog) = setup();
        let base = estimate_function(&registry, &catalog, "f").unwrap();
        let volcano =
            estimate_function_in_mode(&registry, &catalog, "f", ExecMode::Volcano).unwrap();
        let batched =
            estimate_function_in_mode(&registry, &catalog, "f", ExecMode::Batched(1024)).unwrap();
        assert!(volcano.runtime_ms > base.runtime_ms);
        assert!(batched.runtime_ms > base.runtime_ms);
        assert!(batched.runtime_ms < volcano.runtime_ms);
        assert_eq!(volcano.tokens, base.tokens);
    }

    #[test]
    fn paged_scan_estimate_rewards_zone_map_pruning() {
        let batched = ExecMode::Batched(1024);
        // Pruning pages strictly lowers the estimate…
        let cold = paged_scan_ms(100_000, 25, 0, batched);
        let pruned = paged_scan_ms(100_000, 25, 20, batched);
        assert!(pruned < cold / 2.0, "pruned={pruned}ms cold={cold}ms");
        // …and an all-pruned scan costs essentially nothing.
        let none = paged_scan_ms(100_000, 25, 25, batched);
        assert!(none <= relational_overhead_ms(0, batched) + 1e-12);
        // A paged scan is never cheaper than the pure in-memory overhead of
        // the rows it actually produces: decoding has a price.
        assert!(cold > relational_overhead_ms(100_000, batched));
        // Degenerate page counts do not divide by zero.
        assert!(paged_scan_ms(10, 0, 0, batched).is_finite());
    }

    #[test]
    fn paged_inputs_add_decode_cost_that_parallelism_divides() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("q", "selects", vec!["t".into()], "o_sql"),
            FunctionBody::Sql {
                query: "SELECT x FROM t".into(),
                dedup_key: None,
            },
            "initial",
        );
        registry
            .set_profile(
                "q",
                1,
                ProfileStats {
                    runtime_ms: 2.0,
                    tokens: 0,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(1.0),
                },
            )
            .unwrap();
        let strat = |workers| ExecStrategy {
            mode: ExecMode::Batched(1024),
            workers,
            compiled: false,
        };
        let resident = estimate_function_in_strategy(&registry, &catalog, "q", strat(1)).unwrap();

        // Re-register the same table paged with tiny pages: same rows, but
        // the estimate must now carry a per-page decode term.
        let mut paged_catalog = Catalog::new();
        let t = catalog.get("t").unwrap();
        let paged = t.to_paged(paged_catalog.pool(), 16).unwrap();
        let pages = paged.paged().unwrap().page_count();
        assert!(pages > 1);
        paged_catalog.register(paged).unwrap();
        let cold = estimate_function_in_strategy(&registry, &paged_catalog, "q", strat(1)).unwrap();
        let expected_extra = pages as f64 * PAGE_DECODE_MS; // one Int column
        assert!(
            (cold.runtime_ms - resident.runtime_ms - expected_extra).abs() < 1e-9,
            "cold={} resident={} extra={}",
            cold.runtime_ms,
            resident.runtime_ms,
            expected_extra
        );
        // Workers decode distinct pages concurrently, so the decode term
        // (the paged-minus-resident delta at a fixed worker count) divides.
        let wide = estimate_function_in_strategy(&registry, &paged_catalog, "q", strat(4)).unwrap();
        let resident_wide =
            estimate_function_in_strategy(&registry, &catalog, "q", strat(4)).unwrap();
        let wide_decode = wide.runtime_ms - resident_wide.runtime_ms;
        assert!(
            (wide_decode - expected_extra / 4.0).abs() < 1e-9,
            "4-way decode term {wide_decode} != {}",
            expected_extra / 4.0
        );
        assert_eq!(wide.tokens, cold.tokens);
    }

    #[test]
    fn compile_choice_agrees_with_executor_rule() {
        use kath_storage::COMPILE_BREAK_EVEN_ROWS;
        let batched = ExecMode::Batched(DEFAULT_BATCH_SIZE);
        // The cost model's serial ms comparison and the shared runtime rule
        // (`compile_pays_off`) must pick the same side at every cardinality
        // — this is the optimizer↔executor agreement the auto mode relies
        // on. The sweep's step skips the exact break-even row count, where
        // the two sides tie in exact arithmetic (checked separately below).
        for rows in (0..300_000).step_by(1111) {
            let compiled_ms = compiled_pipeline_ms(rows, DEFAULT_BATCH_SIZE, 1);
            let interpreted_ms = parallel_overhead_ms(rows, batched, 1);
            assert_eq!(
                compiled_ms < interpreted_ms,
                compile_pays_off(rows),
                "divergence at {rows} rows: compiled={compiled_ms}ms interpreted={interpreted_ms}ms"
            );
            // The full strategy chooser exposes exactly that rule whenever
            // it picks a batched spine.
            let s = preferred_exec_strategy(rows, 8);
            assert_eq!(
                s.compiled,
                matches!(s.mode, ExecMode::Batched(_)) && compile_pays_off(rows),
                "strategy divergence at {rows} rows: {s:?}"
            );
        }
        // At the break-even point the two estimates tie exactly and the
        // rule stays interpreted (strict `>`): compare approximately, never
        // by ordering, so float noise can't flip the assertion.
        let tie_compiled = compiled_pipeline_ms(COMPILE_BREAK_EVEN_ROWS, DEFAULT_BATCH_SIZE, 1);
        let tie_interp = parallel_overhead_ms(COMPILE_BREAK_EVEN_ROWS, batched, 1);
        assert!(
            (tie_compiled - tie_interp).abs() < 1e-9,
            "break-even should tie: compiled={tie_compiled}ms interpreted={tie_interp}ms"
        );
        assert!(!compile_pays_off(COMPILE_BREAK_EVEN_ROWS));
    }

    #[test]
    fn compiled_strategies_price_the_executor_fallbacks() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("q", "selects", vec!["t".into()], "o_sql"),
            FunctionBody::Sql {
                query: "SELECT x FROM t".into(),
                dedup_key: None,
            },
            "initial",
        );
        registry
            .set_profile(
                "q",
                1,
                ProfileStats {
                    runtime_ms: 2.0,
                    tokens: 0,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(1.0),
                },
            )
            .unwrap();
        let strat = |compiled| ExecStrategy {
            mode: ExecMode::Batched(1024),
            workers: 1,
            compiled,
        };
        // SQL bodies are compilable: the compiled strategy swaps the
        // interpreted overhead for the fused-kernel term exactly.
        let interp = estimate_function_in_strategy(&registry, &catalog, "q", strat(false)).unwrap();
        let compiled =
            estimate_function_in_strategy(&registry, &catalog, "q", strat(true)).unwrap();
        let rows = catalog.get("t").unwrap().len();
        let expected = compiled_pipeline_ms(rows, 1024, 1)
            - parallel_overhead_ms(rows, ExecMode::Batched(1024), 1);
        assert!(
            (compiled.runtime_ms - interp.runtime_ms - expected).abs() < 1e-9,
            "compiled={} interpreted={}",
            compiled.runtime_ms,
            interp.runtime_ms
        );
        assert_eq!(compiled.tokens, interp.tokens);
        assert_eq!(compiled.accuracy, interp.accuracy);
        // Map/filter bodies never compile in the executor (row-level
        // lineage), so a compiled strategy must price them identically to
        // the interpreted one — this is the fallback-agreement bugfix.
        let m_interp = estimate_function_in_strategy(&registry, &catalog, "f", strat(false));
        let m_compiled = estimate_function_in_strategy(&registry, &catalog, "f", strat(true));
        assert_eq!(m_interp, m_compiled);
        // A Volcano strategy flagged compiled is meaningless (the compiled
        // drive is batch-at-a-time); it must price as plain Volcano.
        let volcano = |compiled| ExecStrategy {
            mode: ExecMode::Volcano,
            workers: 1,
            compiled,
        };
        assert_eq!(
            estimate_function_in_strategy(&registry, &catalog, "q", volcano(false)),
            estimate_function_in_strategy(&registry, &catalog, "q", volcano(true)),
        );
    }

    #[test]
    fn unprofiled_functions_are_skipped() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("h", "unprofiled", vec!["t".into()], "o3"),
            FunctionBody::FilterExpr {
                input: "t".into(),
                predicate: "x > 0".into(),
            },
            "initial",
        );
        assert!(estimate_function(&registry, &catalog, "h").is_none());
        let e = estimate_plan(&registry, &catalog, &["h".into()]);
        assert_eq!(e.tokens, 0.0);
        assert_eq!(e.accuracy, 1.0);
    }
}
