//! The unified cost model (§1: "compare alternatives for the same sub-task
//! under a unified cost model, optimizing query accuracy and token cost").
//!
//! Profiled sample costs are extrapolated to full-table cardinalities using
//! classical selectivity estimates from `kath-storage` statistics.

use kath_fao::{FunctionBody, FunctionRegistry};
use kath_storage::{Catalog, ExecMode, DEFAULT_BATCH_SIZE};

/// A cost estimate for one function or a whole plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Estimated simulated tokens.
    pub tokens: f64,
    /// Estimated runtime, milliseconds.
    pub runtime_ms: f64,
    /// Estimated accuracy in `[0,1]` (product over nodes).
    pub accuracy: f64,
}

impl CostEstimate {
    /// Scalar cost (same weighting as `ProfileStats::cost`).
    pub fn scalar(&self) -> f64 {
        self.tokens + self.runtime_ms / 1000.0
    }
}

/// Per-row overhead of the Volcano iterator protocol, in milliseconds: one
/// virtual `next()` dispatch plus per-row expression setup (name resolution,
/// `Value` matching) for every operator a row passes through.
pub const ROW_OVERHEAD_MS: f64 = 4e-4;

/// Per-batch overhead of batched execution, in milliseconds: one virtual
/// `next_batch()` dispatch plus columnar assembly per operator.
pub const BATCH_OVERHEAD_MS: f64 = 3e-3;

/// Per-value touch cost shared by both protocols, in milliseconds.
pub const VALUE_TOUCH_MS: f64 = 2e-5;

/// Estimated per-operator overhead of pushing `rows` rows through a
/// relational pipeline in the given execution mode. Volcano pays
/// [`ROW_OVERHEAD_MS`] per row; batched execution amortizes
/// [`BATCH_OVERHEAD_MS`] over each batch. Both pay [`VALUE_TOUCH_MS`] per
/// row. These per-batch vs per-row terms are what lets physical selection
/// prefer batched implementations as cardinality grows.
pub fn relational_overhead_ms(rows: usize, mode: ExecMode) -> f64 {
    let touch = rows as f64 * VALUE_TOUCH_MS;
    match mode {
        ExecMode::Volcano => touch + rows as f64 * ROW_OVERHEAD_MS,
        ExecMode::Batched(n) => {
            let n = n.max(1);
            let batches = rows.div_ceil(n).max(1);
            touch + batches as f64 * BATCH_OVERHEAD_MS
        }
    }
}

/// The cheaper execution mode for a pipeline over `rows` rows under the
/// model above, using the default batch size. Tiny inputs stay on the
/// Volcano path (a whole batch costs more than a handful of `next()`
/// calls); everything else runs batched.
pub fn preferred_exec_mode(rows: usize) -> ExecMode {
    let batched = ExecMode::Batched(DEFAULT_BATCH_SIZE);
    if relational_overhead_ms(rows, batched) < relational_overhead_ms(rows, ExecMode::Volcano) {
        batched
    } else {
        ExecMode::Volcano
    }
}

/// Estimates the cost of executing a function's active version over its
/// full inputs, by scaling the sample profile linearly in input rows (model
/// calls in KathDB are per-row, so linear scaling is the right first-order
/// model).
pub fn estimate_function(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_id: &str,
) -> Option<CostEstimate> {
    let entry = registry.get(func_id).ok()?;
    let version = entry.active_version();
    let profile = version.profile.as_ref()?;
    let full_rows: usize = match &version.body {
        FunctionBody::ViewPopulate { .. } => profile.rows_in.max(1),
        body => body
            .inputs()
            .iter()
            .map(|t| catalog.get(t).map(|t| t.len()).unwrap_or(profile.rows_in))
            .sum(),
    };
    let scale = if profile.rows_in == 0 {
        1.0
    } else {
        full_rows as f64 / profile.rows_in as f64
    };
    Some(CostEstimate {
        tokens: profile.tokens as f64 * scale,
        runtime_ms: profile.runtime_ms * scale,
        accuracy: profile.accuracy.unwrap_or(1.0),
    })
}

/// [`estimate_function`] plus the execution-mode-dependent relational
/// overhead for bodies that run an operator pipeline (SQL, map, filter).
/// Model-call bodies are mode-independent: their per-row token cost dwarfs
/// iteration overhead.
pub fn estimate_function_in_mode(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_id: &str,
    mode: ExecMode,
) -> Option<CostEstimate> {
    let mut est = estimate_function(registry, catalog, func_id)?;
    let entry = registry.get(func_id).ok()?;
    let body = &entry.active_version().body;
    if matches!(
        body,
        FunctionBody::Sql { .. } | FunctionBody::MapExpr { .. } | FunctionBody::FilterExpr { .. }
    ) {
        let rows: usize = body
            .inputs()
            .iter()
            .map(|t| catalog.get(t).map(|t| t.len()).unwrap_or(0))
            .sum();
        est.runtime_ms += relational_overhead_ms(rows, mode);
    }
    Some(est)
}

/// Estimates a whole plan: tokens/runtime add, accuracies multiply (§4's
/// observation that more, smaller functions compound accuracy differently
/// than few large ones).
pub fn estimate_plan(
    registry: &FunctionRegistry,
    catalog: &Catalog,
    func_ids: &[String],
) -> CostEstimate {
    let mut total = CostEstimate {
        accuracy: 1.0,
        ..Default::default()
    };
    for f in func_ids {
        if let Some(e) = estimate_function(registry, catalog, f) {
            total.tokens += e.tokens;
            total.runtime_ms += e.runtime_ms;
            total.accuracy *= e.accuracy;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_fao::{FunctionSignature, ProfileStats};
    use kath_storage::{DataType, Schema, Table};

    fn setup() -> (FunctionRegistry, Catalog) {
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("f", "maps", vec!["t".into()], "o"),
            FunctionBody::MapExpr {
                input: "t".into(),
                expr: "x + 1".into(),
                output_column: "y".into(),
            },
            "initial",
        );
        registry
            .set_profile(
                "f",
                1,
                ProfileStats {
                    runtime_ms: 2.0,
                    tokens: 40,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(0.9),
                },
            )
            .unwrap();
        let mut catalog = Catalog::new();
        let mut t = Table::new("t", Schema::of(&[("x", DataType::Int)]));
        for i in 0..100i64 {
            t.push(vec![i.into()]).unwrap();
        }
        catalog.register(t).unwrap();
        (registry, catalog)
    }

    #[test]
    fn linear_extrapolation_from_sample() {
        let (registry, catalog) = setup();
        let e = estimate_function(&registry, &catalog, "f").unwrap();
        // 100 rows / 4 sampled = 25x.
        assert!((e.tokens - 1000.0).abs() < 1e-9);
        assert!((e.runtime_ms - 50.0).abs() < 1e-9);
        assert_eq!(e.accuracy, 0.9);
        assert!(e.scalar() > 1000.0);
    }

    #[test]
    fn plan_estimate_compounds_accuracy() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("g", "maps", vec!["t".into()], "o2"),
            FunctionBody::MapExpr {
                input: "t".into(),
                expr: "x * 2".into(),
                output_column: "z".into(),
            },
            "initial",
        );
        registry
            .set_profile(
                "g",
                1,
                ProfileStats {
                    runtime_ms: 1.0,
                    tokens: 10,
                    rows_in: 4,
                    rows_out: 4,
                    accuracy: Some(0.8),
                },
            )
            .unwrap();
        let e = estimate_plan(&registry, &catalog, &["f".into(), "g".into()]);
        assert!((e.accuracy - 0.72).abs() < 1e-9);
        assert!(e.tokens > 1000.0);
    }

    #[test]
    fn batched_overhead_beats_volcano_at_scale() {
        let volcano = relational_overhead_ms(100_000, ExecMode::Volcano);
        let batched = relational_overhead_ms(100_000, ExecMode::Batched(1024));
        assert!(
            batched < volcano / 5.0,
            "batched={batched}ms volcano={volcano}ms"
        );
        // Tiny batches pay their per-batch overhead almost per row and lose
        // to a big batch.
        let tiny = relational_overhead_ms(100_000, ExecMode::Batched(1));
        assert!(batched < tiny);
        assert_eq!(preferred_exec_mode(100_000), ExecMode::Batched(1024));
        // A one-row pipeline is not worth a batch.
        assert_eq!(preferred_exec_mode(1), ExecMode::Volcano);
    }

    #[test]
    fn mode_aware_estimate_adds_relational_overhead() {
        let (registry, catalog) = setup();
        let base = estimate_function(&registry, &catalog, "f").unwrap();
        let volcano =
            estimate_function_in_mode(&registry, &catalog, "f", ExecMode::Volcano).unwrap();
        let batched =
            estimate_function_in_mode(&registry, &catalog, "f", ExecMode::Batched(1024)).unwrap();
        assert!(volcano.runtime_ms > base.runtime_ms);
        assert!(batched.runtime_ms > base.runtime_ms);
        assert!(batched.runtime_ms < volcano.runtime_ms);
        assert_eq!(volcano.tokens, base.tokens);
    }

    #[test]
    fn unprofiled_functions_are_skipped() {
        let (mut registry, catalog) = setup();
        registry.register(
            FunctionSignature::new("h", "unprofiled", vec!["t".into()], "o3"),
            FunctionBody::FilterExpr {
                input: "t".into(),
                predicate: "x > 0".into(),
            },
            "initial",
        );
        assert!(estimate_function(&registry, &catalog, "h").is_none());
        let e = estimate_plan(&registry, &catalog, &["h".into()]);
        assert_eq!(e.tokens, 0.0);
        assert_eq!(e.accuracy, 1.0);
    }
}
