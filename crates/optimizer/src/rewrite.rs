//! Logical plan rewrites (§4: "push predicates closer to data sources and
//! merge two function signatures into one to avoid unnecessary intermediate
//! result materialization").

use kath_parser::{LogicalPlan, StepTag};

/// A rewrite the optimizer applied, for the explainer and the ablation
/// bench.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteEvent {
    /// Which rule fired.
    pub rule: String,
    /// Human-readable description.
    pub detail: String,
}

/// Applies all enabled logical rewrites, returning the new plan and the
/// rewrite log.
pub fn rewrite_plan(
    plan: LogicalPlan,
    enable_pushdown: bool,
    enable_dead_node_elimination: bool,
) -> (LogicalPlan, Vec<RewriteEvent>) {
    let mut events = Vec::new();
    let mut plan = plan;
    if enable_pushdown {
        let (p, e) = predicate_pushdown(plan);
        plan = p;
        events.extend(e);
    }
    if enable_dead_node_elimination {
        let (p, e) = eliminate_dead_nodes(plan);
        plan = p;
        events.extend(e);
    }
    (plan, events)
}

/// Moves each `FilterFlag` node to immediately after the node producing its
/// flag, so downstream operators (joins, scorers) see fewer rows.
pub fn predicate_pushdown(mut plan: LogicalPlan) -> (LogicalPlan, Vec<RewriteEvent>) {
    let mut events = Vec::new();
    loop {
        // Find a filter that sits later than producer+1.
        let mut movement: Option<(usize, usize)> = None;
        for (i, node) in plan.nodes.iter().enumerate() {
            if !matches!(node.tag, StepTag::FilterFlag { .. }) {
                continue;
            }
            let input = &node.signature.inputs[0];
            let producer = plan.nodes.iter().position(|n| &n.signature.output == input);
            if let Some(p) = producer {
                if i > p + 1 {
                    movement = Some((i, p + 1));
                    break;
                }
            }
        }
        let Some((from, to)) = movement else { break };
        let filter = plan.nodes.remove(from);
        let producer_output = filter.signature.inputs[0].clone();
        let filter_output = filter.signature.output.clone();
        events.push(RewriteEvent {
            rule: "predicate_pushdown".into(),
            detail: format!(
                "moved {} next to the producer of '{}'",
                filter.signature.name, producer_output
            ),
        });
        plan.nodes.insert(to, filter);
        // Rewire: nodes between the new position and the old one that read
        // the producer's output now read the filtered output instead, so the
        // predicate actually reduces their input.
        for node in plan.nodes.iter_mut().skip(to + 1) {
            for input in node.signature.inputs.iter_mut() {
                if *input == producer_output {
                    *input = filter_output.clone();
                }
            }
        }
    }
    (plan, events)
}

/// Removes nodes whose output nothing consumes (and which is not the final
/// output) — repeated until a fixpoint, so chains of dead producers die too.
pub fn eliminate_dead_nodes(mut plan: LogicalPlan) -> (LogicalPlan, Vec<RewriteEvent>) {
    let mut events = Vec::new();
    loop {
        let last = plan.nodes.len().saturating_sub(1);
        let dead = plan.nodes.iter().enumerate().position(|(i, node)| {
            if i == last || node.prewritten {
                return false;
            }
            !plan
                .nodes
                .iter()
                .any(|n| n.signature.inputs.contains(&node.signature.output))
        });
        let Some(idx) = dead else { break };
        let node = plan.nodes.remove(idx);
        events.push(RewriteEvent {
            rule: "dead_node_elimination".into(),
            detail: format!(
                "removed {} (output '{}' is never consumed)",
                node.signature.name, node.signature.output
            ),
        });
    }
    (plan, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_fao::FunctionSignature;
    use kath_parser::LogicalNode;

    fn node(name: &str, inputs: Vec<&str>, output: &str, tag: StepTag) -> LogicalNode {
        LogicalNode {
            signature: FunctionSignature::new(
                name,
                "d",
                inputs.into_iter().map(String::from).collect(),
                output,
            ),
            tag,
            prewritten: false,
        }
    }

    /// A deliberately suboptimal plan: classify → join → filter, where the
    /// filter could run right after classify.
    fn late_filter_plan() -> LogicalPlan {
        LogicalPlan {
            nodes: vec![
                node(
                    "classify_boring",
                    vec!["films"],
                    "flagged",
                    StepTag::VisualClassify {
                        term: "boring".into(),
                    },
                ),
                node(
                    "join_scores",
                    vec!["flagged", "scores"],
                    "joined",
                    StepTag::JoinScores,
                ),
                node(
                    "filter_boring",
                    vec!["flagged"],
                    "boring_only",
                    StepTag::FilterFlag {
                        term: "boring".into(),
                        keep: true,
                    },
                ),
                node("rank", vec!["joined"], "final", StepTag::FinalRank),
            ],
        }
    }

    #[test]
    fn pushdown_moves_filter_after_producer_and_rewires() {
        let (plan, events) = predicate_pushdown(late_filter_plan());
        assert_eq!(events.len(), 1);
        let names: Vec<&str> = plan
            .nodes
            .iter()
            .map(|n| n.signature.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["classify_boring", "filter_boring", "join_scores", "rank"]
        );
        // The join now consumes the *filtered* table.
        let join = plan.node("join_scores").unwrap();
        assert!(join.signature.inputs.contains(&"boring_only".to_string()));
        assert!(!join.signature.inputs.contains(&"flagged".to_string()));
    }

    #[test]
    fn pushdown_is_a_noop_on_already_tight_plans() {
        let (plan, events) = predicate_pushdown(LogicalPlan {
            nodes: vec![
                node(
                    "classify_boring",
                    vec!["films"],
                    "flagged",
                    StepTag::VisualClassify {
                        term: "boring".into(),
                    },
                ),
                node(
                    "filter_boring",
                    vec!["flagged"],
                    "boring_only",
                    StepTag::FilterFlag {
                        term: "boring".into(),
                        keep: true,
                    },
                ),
            ],
        });
        assert!(events.is_empty());
        assert_eq!(plan.nodes.len(), 2);
    }

    #[test]
    fn dead_nodes_are_eliminated_transitively() {
        let plan = LogicalPlan {
            nodes: vec![
                node("a", vec!["base"], "a_out", StepTag::SelectColumns),
                // b feeds only c; c feeds nothing → both die.
                node("b", vec!["base"], "b_out", StepTag::JoinImageView),
                node(
                    "c",
                    vec!["b_out"],
                    "c_out",
                    StepTag::VisualClassify {
                        term: "boring".into(),
                    },
                ),
                node("rank", vec!["a_out"], "final", StepTag::FinalRank),
            ],
        };
        let (plan, events) = eliminate_dead_nodes(plan);
        assert_eq!(events.len(), 2);
        let names: Vec<&str> = plan
            .nodes
            .iter()
            .map(|n| n.signature.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "rank"]);
    }

    #[test]
    fn final_node_is_never_eliminated() {
        let plan = LogicalPlan {
            nodes: vec![node("only", vec!["base"], "final", StepTag::FinalRank)],
        };
        let (plan, events) = eliminate_dead_nodes(plan);
        assert!(events.is_empty());
        assert_eq!(plan.nodes.len(), 1);
    }

    #[test]
    fn rewrite_plan_composes_rules() {
        let (plan, events) = rewrite_plan(late_filter_plan(), true, true);
        assert!(!events.is_empty());
        assert!(plan.node("filter_boring").is_some());
    }
}
