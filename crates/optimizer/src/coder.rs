//! The coder agent: writes function bodies for logical-plan nodes.
//!
//! "Reading both the sampled rows and node specification, the coder writes a
//! function body" (§4). The simulated coder is a deterministic synthesizer
//! over the node's tag, the input schemas it samples from the catalog, and
//! the user's clarifications. A [`CoderFaults`] plan injects the systematic
//! mistakes (reversed score direction) the critic must catch.

use kath_fao::{FunctionBody, VisionImpl};
use kath_model::SimLlm;
use kath_parser::{LogicalNode, StepTag};
use kath_storage::Catalog;

/// Deliberate coder mistakes, injectable for tests and benches (§4's
/// example: "a scoring function … mistakenly implemented to do the reverse").
#[derive(Debug, Clone, Copy, Default)]
pub struct CoderFaults {
    /// Emit recency scores that favour *older* movies.
    pub reversed_recency: bool,
}

/// Context the coder reads besides the node itself.
pub struct CoderContext<'a> {
    /// The catalog (for input schemas and sample rows).
    pub catalog: &'a Catalog,
    /// `(term, clarification)` pairs from the NL parser.
    pub clarifications: &'a [(String, String)],
    /// Injected faults.
    pub faults: CoderFaults,
}

impl<'a> CoderContext<'a> {
    fn clarification_for(&self, term: &str) -> Option<&str> {
        self.clarifications
            .iter()
            .find(|(t, _)| t == term)
            .map(|(_, c)| c.as_str())
    }
}

/// Synthesizes candidate bodies for a node, most-preferred first. Most tags
/// have a single candidate; visual classification has one per physical
/// implementation (§4: "a VLM-based implementation or an OCR-based
/// implementation", plus the cascade).
pub fn synthesize(
    node: &LogicalNode,
    ctx: &CoderContext<'_>,
    llm: &SimLlm,
) -> Vec<(FunctionBody, String)> {
    let sig = &node.signature;
    match &node.tag {
        StepTag::PopulateViews => vec![
            (
                FunctionBody::ViewPopulate {
                    modality: "text".into(),
                    implementation: VisionImpl::VlmAccurate,
                    convert_unsupported: false,
                },
                "pre-written text view population".into(),
            ),
            // The scene half is registered as a sibling function by the
            // compiler; this first candidate is the text half.
        ],
        StepTag::SelectColumns => {
            // Keep identifying + reference columns; drop nothing the later
            // steps need. Reads the actual schema via the catalog.
            let cols = ctx
                .catalog
                .get(&sig.inputs[0])
                .map(|t| {
                    let names = t.schema().names();
                    let wanted: Vec<&str> = names
                        .iter()
                        .copied()
                        .filter(|n| ["id", "title", "year", "did", "vid"].contains(n))
                        .collect();
                    if wanted.is_empty() {
                        names.iter().map(|s| s.to_string()).collect::<Vec<_>>()
                    } else {
                        wanted.iter().map(|s| s.to_string()).collect()
                    }
                })
                .unwrap_or_else(|_| vec!["id".into(), "title".into(), "year".into()]);
            vec![(
                FunctionBody::Sql {
                    query: format!("SELECT {} FROM {}", cols.join(", "), sig.inputs[0]),
                    dedup_key: None,
                },
                "projection of the relevant columns".into(),
            )]
        }
        StepTag::JoinTextView => vec![(
            FunctionBody::Sql {
                query: format!(
                    "SELECT * FROM {} JOIN {} ON {}.did = {}.did",
                    sig.inputs[0], sig.inputs[1], sig.inputs[0], sig.inputs[1]
                ),
                dedup_key: None,
            },
            "equi-join with the text view on did".into(),
        )],
        StepTag::JoinImageView => vec![(
            FunctionBody::Sql {
                query: format!(
                    "SELECT * FROM {} JOIN {} ON {}.vid = {}.vid",
                    sig.inputs[0], sig.inputs[1], sig.inputs[0], sig.inputs[1]
                ),
                dedup_key: None,
            },
            "equi-join with the scene view on vid".into(),
        )],
        StepTag::ConceptScore { term } => {
            let clarification = ctx.clarification_for(term).unwrap_or(term.as_str());
            let keywords = llm.generate_keywords(clarification);
            let noun = kath_parser::noun_form(term);
            vec![(
                FunctionBody::ConceptScore {
                    input: sig.inputs[0].clone(),
                    text_column: "chars".into(),
                    keywords,
                    output_column: format!("{noun}_score"),
                },
                format!("vector similarity between the keyword list and the plot text ({term})"),
            )]
        }
        StepTag::RecencyScore => {
            // Min/max come from sampled rows, as the paper's coder does.
            let (lo, hi) = ctx
                .catalog
                .get(&sig.inputs[0])
                .ok()
                .and_then(|t| {
                    let years: Vec<i64> = t
                        .column_values("year")
                        .ok()?
                        .into_iter()
                        .filter_map(|v| v.as_int())
                        .collect();
                    Some((*years.iter().min()?, *years.iter().max()?))
                })
                .unwrap_or((1970, 2026));
            let span = (hi - lo).max(1);
            let expr = if ctx.faults.reversed_recency {
                // The injected mistake of §4: higher score to older movies.
                format!("clamp01(({hi} - year) / {span}.0)")
            } else {
                format!("clamp01((year - {lo}) / {span}.0)")
            };
            vec![(
                FunctionBody::MapExpr {
                    input: sig.inputs[0].clone(),
                    expr,
                    output_column: "recency_score".into(),
                },
                "normalized release-year recency".into(),
            )]
        }
        StepTag::CombineScores => {
            // The paper's weights: 0.7 · excitement + 0.3 · recency (Fig. 5).
            let score_col = ctx
                .catalog
                .get(&sig.inputs[0])
                .ok()
                .and_then(|t| {
                    t.schema()
                        .names()
                        .iter()
                        .find(|n| n.ends_with("_score") && **n != "recency_score")
                        .map(|s| s.to_string())
                })
                .unwrap_or_else(|| "excitement_score".into());
            vec![(
                FunctionBody::MapExpr {
                    input: sig.inputs[0].clone(),
                    expr: format!("0.7 * {score_col} + 0.3 * recency_score"),
                    output_column: "final_score".into(),
                },
                "weighted sum: 0.7 * excitement + 0.3 * recency".into(),
            )]
        }
        StepTag::VisualClassify { term } => {
            let make = |implementation, note: &str| {
                (
                    FunctionBody::VisualClassify {
                        input: sig.inputs[0].clone(),
                        uri_column: "pixels".into(),
                        output_column: term.clone(),
                        implementation,
                        threshold: 0.5,
                        convert_unsupported: false,
                    },
                    note.to_string(),
                )
            };
            vec![
                make(
                    VisionImpl::VlmAccurate,
                    "accurate VLM over poster descriptors",
                ),
                make(
                    VisionImpl::Cascade,
                    "cheap VLM with escalation to the accurate one",
                ),
                make(VisionImpl::VlmCheap, "cheap VLM only"),
                make(
                    VisionImpl::Ocr,
                    "OCR-based implementation (Tesseract-style)",
                ),
            ]
        }
        StepTag::FilterFlag { term, keep } => vec![(
            FunctionBody::FilterExpr {
                input: sig.inputs[0].clone(),
                predicate: format!("{term} = {}", if *keep { "TRUE" } else { "FALSE" }),
            },
            format!(
                "keep rows whose poster is {}{term}",
                if *keep { "" } else { "not " }
            ),
        )],
        StepTag::JoinScores => vec![(
            // The score side leads so the surviving `lid` column is the
            // combined-score tuple's lid — the lid Fig. 5 explains.
            FunctionBody::Sql {
                query: format!(
                    "SELECT * FROM {} JOIN {} ON {}.id = {}.id",
                    sig.inputs[0], sig.inputs[1], sig.inputs[0], sig.inputs[1]
                ),
                dedup_key: None,
            },
            "join the score table with the flag table on the movie id".into(),
        )],
        StepTag::FinalRank => {
            let score = if ctx
                .catalog
                .get(&sig.inputs[0])
                .map(|t| t.schema().index_of("final_score").is_some())
                .unwrap_or(false)
            {
                "final_score"
            } else {
                "excitement_score"
            };
            let from = &sig.inputs[0];
            let query = if sig.inputs.len() > 1 {
                format!(
                    "SELECT * FROM {} JOIN {} ON {}.id = {}.id ORDER BY {score} DESC",
                    sig.inputs[1], from, sig.inputs[1], from
                )
            } else {
                format!("SELECT * FROM {from} ORDER BY {score} DESC")
            };
            vec![(
                FunctionBody::Sql {
                    query,
                    dedup_key: None,
                },
                "produce the final ranked list".into(),
            )]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_fao::FunctionSignature;
    use kath_model::TokenMeter;
    use kath_storage::{DataType, Schema, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(Table::new(
            "movie_table",
            Schema::of(&[
                ("id", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("did", DataType::Int),
                ("vid", DataType::Int),
                ("internal_notes", DataType::Str),
            ]),
        ))
        .unwrap();
        let mut scored = Table::new(
            "films_with_recency",
            Schema::of(&[
                ("id", DataType::Int),
                ("year", DataType::Int),
                ("excitement_score", DataType::Float),
                ("recency_score", DataType::Float),
            ]),
        );
        scored
            .push(vec![1i64.into(), 1991i64.into(), 0.9.into(), 0.8.into()])
            .unwrap();
        c.register(scored).unwrap();
        c
    }

    fn node(tag: StepTag, name: &str, inputs: Vec<&str>, output: &str) -> LogicalNode {
        LogicalNode {
            signature: FunctionSignature::new(
                name,
                "desc",
                inputs.into_iter().map(String::from).collect(),
                output,
            ),
            tag,
            prewritten: false,
        }
    }

    fn llm() -> SimLlm {
        SimLlm::new(42, TokenMeter::new())
    }

    #[test]
    fn select_columns_reads_schema_and_drops_noise() {
        let cat = catalog();
        let ctx = CoderContext {
            catalog: &cat,
            clarifications: &[],
            faults: CoderFaults::default(),
        };
        let n = node(
            StepTag::SelectColumns,
            "select_movie_columns",
            vec!["movie_table"],
            "movie_columns",
        );
        let bodies = synthesize(&n, &ctx, &llm());
        let FunctionBody::Sql { query, .. } = &bodies[0].0 else {
            panic!()
        };
        assert!(query.contains("id, title, year, did, vid"));
        assert!(!query.contains("internal_notes"));
    }

    #[test]
    fn concept_score_uses_the_clarification_keywords() {
        let cat = catalog();
        let clar = vec![(
            "exciting".to_string(),
            "scenes that are uncommon in real life".to_string(),
        )];
        let ctx = CoderContext {
            catalog: &cat,
            clarifications: &clar,
            faults: CoderFaults::default(),
        };
        let n = node(
            StepTag::ConceptScore {
                term: "exciting".into(),
            },
            "gen_excitement_score",
            vec!["films_with_text"],
            "films_with_excitement",
        );
        let bodies = synthesize(&n, &ctx, &llm());
        let FunctionBody::ConceptScore {
            keywords,
            output_column,
            ..
        } = &bodies[0].0
        else {
            panic!()
        };
        assert!(keywords.contains(&"gun".to_string()));
        assert_eq!(output_column, "excitement_score");
    }

    #[test]
    fn recency_reads_year_range_and_fault_reverses_it() {
        let cat = catalog();
        let mut ctx = CoderContext {
            catalog: &cat,
            clarifications: &[],
            faults: CoderFaults::default(),
        };
        let n = node(
            StepTag::RecencyScore,
            "gen_recency_score",
            vec!["films_with_recency"],
            "o",
        );
        let good = synthesize(&n, &ctx, &llm());
        let FunctionBody::MapExpr { expr, .. } = &good[0].0 else {
            panic!()
        };
        assert!(expr.contains("year -") || expr.contains("(year"), "{expr}");
        ctx.faults.reversed_recency = true;
        let bad = synthesize(&n, &ctx, &llm());
        let FunctionBody::MapExpr { expr: bad_expr, .. } = &bad[0].0 else {
            panic!()
        };
        assert_ne!(expr, bad_expr);
        assert!(bad_expr.contains("- year"), "{bad_expr}");
    }

    #[test]
    fn visual_classify_offers_four_physical_alternatives() {
        let cat = catalog();
        let ctx = CoderContext {
            catalog: &cat,
            clarifications: &[],
            faults: CoderFaults::default(),
        };
        let n = node(
            StepTag::VisualClassify {
                term: "boring".into(),
            },
            "classify_boring",
            vec!["films_with_image_scene"],
            "films_with_boring_flag",
        );
        let bodies = synthesize(&n, &ctx, &llm());
        assert_eq!(bodies.len(), 4);
        let impls: Vec<VisionImpl> = bodies
            .iter()
            .map(|(b, _)| match b {
                FunctionBody::VisualClassify { implementation, .. } => *implementation,
                _ => panic!(),
            })
            .collect();
        assert!(impls.contains(&VisionImpl::VlmAccurate));
        assert!(impls.contains(&VisionImpl::Ocr));
        assert!(impls.contains(&VisionImpl::Cascade));
    }

    #[test]
    fn combine_finds_the_companion_score_column() {
        let cat = catalog();
        let ctx = CoderContext {
            catalog: &cat,
            clarifications: &[],
            faults: CoderFaults::default(),
        };
        let n = node(
            StepTag::CombineScores,
            "combine_score",
            vec!["films_with_recency"],
            "films_with_final_score",
        );
        let bodies = synthesize(&n, &ctx, &llm());
        let FunctionBody::MapExpr { expr, .. } = &bodies[0].0 else {
            panic!()
        };
        assert_eq!(expr, "0.7 * excitement_score + 0.3 * recency_score");
    }
}
