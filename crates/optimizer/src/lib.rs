//! KathDB query optimizer (§2.2, §4).
//!
//! Translates a verified logical plan into a low-cost physical plan: the
//! *coder* writes structured function bodies from node specs and sampled
//! rows, the *profiler* executes them on samples to record runtime/token
//! cost, the *critic* checks semantic direction and sends corrective hints
//! back to the coder, and the selector picks the cheapest implementation
//! meeting the accuracy floor. Logical rewrites (predicate pushdown, dead
//! node elimination) run first.

#![warn(missing_docs)]

mod coder;
mod compile;
mod cost;
mod rewrite;

pub use coder::{synthesize, CoderContext, CoderFaults};
pub use compile::{compile, CompileOptions, CompileReport, CritiqueEvent, SelectionEvent};
pub use cost::{
    compiled_pipeline_ms, estimate_function, estimate_function_in_mode,
    estimate_function_in_strategy, estimate_plan, estimate_vector_search_ms, paged_scan_ms,
    parallel_overhead_ms, preferred_exec_mode, preferred_exec_strategy, preferred_parallelism,
    preferred_parallelism_capped, preferred_vector_strategy, relational_overhead_ms, CostEstimate,
    ExecStrategy, BATCH_OVERHEAD_MS, COMPILED_BATCH_OVERHEAD_MS, COMPILED_VALUE_TOUCH_MS,
    COMPILE_SETUP_MS, PAGE_DECODE_MS, ROW_OVERHEAD_MS, VALUE_TOUCH_MS, VECTOR_SCORE_MS,
    WORKER_STARTUP_MS,
};
pub use rewrite::{eliminate_dead_nodes, predicate_pushdown, rewrite_plan, RewriteEvent};
