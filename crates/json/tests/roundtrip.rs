//! Property tests: any JSON value survives serialize -> parse, in both
//! compact and pretty form, and the parser never panics on arbitrary input.

use kath_json::{parse, to_string, to_string_pretty, Json, JsonMap};
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite numbers only: JSON cannot represent NaN/Inf.
        (-1.0e12f64..1.0e12).prop_map(Json::Num),
        any::<i32>().prop_map(|n| Json::Num(n as f64)),
        "[a-zA-Z0-9 _\\-\\n\\t\"\\\\]{0,20}".prop_map(Json::Str),
        // Exercise non-ASCII payloads too.
        "\\PC{0,8}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|pairs| {
                let mut map = JsonMap::new();
                for (k, v) in pairs {
                    map.insert(k, v);
                }
                Json::Object(map)
            }),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trip(v in arb_json()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip(v in arb_json()) {
        let text = to_string_pretty(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn reserialization_is_fixpoint(v in arb_json()) {
        let once = to_string(&v);
        let twice = to_string(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
