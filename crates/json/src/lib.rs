//! A self-contained JSON layer for KathDB.
//!
//! The KathDB paper requires every logical-plan node to be emitted in an
//! *exact JSON layout* "so the downstream parser can ingest it without any
//! post-processing" (§4, Fig. 3). Function bodies and version registries are
//! also persisted to disk as JSON. This crate provides the value model,
//! a strict parser, and compact/pretty writers used across the workspace.
//!
//! Object keys preserve **insertion order**, which matters because the
//! paper's "exact layout" fixes the key order of emitted plan nodes.

mod parse;
mod write;

pub use parse::{parse, ParseError};
pub use write::{to_string, to_string_pretty};

use std::fmt;

/// A JSON value.
///
/// Numbers are stored as `f64` (ints round-trip exactly up to 2^53, which is
/// far beyond any identifier KathDB allocates).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Json>),
    /// A JSON object with insertion-ordered keys.
    Object(JsonMap),
}

/// An insertion-ordered string → [`Json`] map.
///
/// A `Vec` of pairs is deliberate: plan-node objects have <10 keys, and the
/// paper's exact-layout requirement makes ordering semantically relevant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonMap {
    entries: Vec<(String, Json)>,
}

impl JsonMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing in place if it already exists (keeps order).
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl FromIterator<(String, Json)> for JsonMap {
    fn from_iter<T: IntoIterator<Item = (String, Json)>>(iter: T) -> Self {
        let mut map = JsonMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Json {
    /// Convenience constructor for an object built from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an array of strings.
    pub fn str_array<S: Into<String>>(items: impl IntoIterator<Item = S>) -> Json {
        Json::Array(items.into_iter().map(|s| Json::Str(s.into())).collect())
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric payload if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array payload if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object payload if this is an `Object`.
    pub fn as_object(&self) -> Option<&JsonMap> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Object-field access: `value.get("name")`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Navigates a `/`-separated path of object keys and array indices,
    /// e.g. `"inputs/0"`. Used by explanation code to cite plan fragments.
    pub fn pointer(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = match cur {
                Json::Object(m) => m.get(seg)?,
                Json::Array(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(a: Vec<Json>) -> Self {
        Json::Array(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = JsonMap::new();
        m.insert("z", Json::from(1i64));
        m.insert("a", Json::from(2i64));
        m.insert("m", Json::from(3i64));
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = JsonMap::new();
        m.insert("a", Json::from(1i64));
        m.insert("b", Json::from(2i64));
        m.insert("a", Json::from(9i64));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("a").unwrap().as_i64(), Some(9));
        assert_eq!(m.keys().next(), Some("a"));
    }

    #[test]
    fn pointer_navigates_nested_structures() {
        let v = Json::object([
            (
                "inputs",
                Json::str_array(["films_with_image_scene", "other"]),
            ),
            ("meta", Json::object([("depth", Json::from(3i64))])),
        ]);
        assert_eq!(v.pointer("inputs/1").and_then(Json::as_str), Some("other"));
        assert_eq!(v.pointer("meta/depth").and_then(Json::as_i64), Some(3));
        assert!(v.pointer("meta/missing").is_none());
    }

    #[test]
    fn as_i64_rejects_fractions() {
        assert_eq!(Json::Num(3.5).as_i64(), None);
        assert_eq!(Json::Num(-7.0).as_i64(), Some(-7));
    }
}
