//! A strict recursive-descent JSON parser.
//!
//! Strictness matters to KathDB: the logical-plan generator promises plan
//! nodes "in the exact JSON layout we defined so the downstream parser can
//! ingest it without any post-processing" (§4). A lenient parser would mask
//! layout drift that the plan verifier is supposed to catch.

use crate::{Json, JsonMap};
use std::fmt;

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Recursion guard: plan trees are shallow; 128 is generous and prevents a
/// stack overflow on adversarial inputs read back from disk.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = JsonMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Json::Object(map))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling for characters above the BMP.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str so the bytes are
                    // valid; re-decode the full character.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a lone 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.25e2").unwrap(), Json::Num(-325.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_figure3_plan_node() {
        // The exact layout from Fig. 3 of the paper.
        let text = r#"{ "name": "classify_boring",
                        "description": "Analyze visual features of each film's poster...",
                        "inputs": [ "films_with_image_scene" ],
                        "output": "films_with_boring_flag" }"#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("classify_boring")
        );
        assert_eq!(
            v.get("inputs").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        let keys: Vec<_> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["name", "description", "inputs", "output"]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "01",
            "1.",
            "1e",
            "tru",
            "+1",
            "'a'",
            "\"\\q\"",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn handles_escapes_and_unicode() {
        let v = parse(r#""a\nb\t\"c\" é 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\nb\t\"c\" é 😀");
    }

    #[test]
    fn handles_non_ascii_passthrough() {
        let v = parse("\"katharós means clear\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "katharós means clear");
    }

    #[test]
    fn depth_limit_prevents_stack_overflow() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn rejects_lone_surrogates() {
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }
}
