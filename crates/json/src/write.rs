//! JSON serialization: compact and pretty writers.
//!
//! The pretty writer is the one used when persisting FAO function versions to
//! disk (§4: "these functions are persisted locally on disk") so that users
//! can read the artifacts KathDB generates — explainability extends to the
//! on-disk format.

use crate::Json;
use std::fmt::Write as _;

/// Serializes a value to compact JSON (no extra whitespace).
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes a value to pretty JSON with two-space indentation.
pub fn to_string_pretty(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, level: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_nan() || n.is_infinite() {
        // JSON has no NaN/Inf; scores in KathDB are clamped upstream, so this
        // only happens on programmer error. Emit null rather than panic.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_output_has_no_whitespace() {
        let v = Json::object([
            ("name", Json::str("classify_boring")),
            ("inputs", Json::str_array(["films_with_image_scene"])),
        ]);
        assert_eq!(
            to_string(&v),
            r#"{"name":"classify_boring","inputs":["films_with_image_scene"]}"#
        );
    }

    #[test]
    fn pretty_output_round_trips() {
        let v = Json::object([
            ("a", Json::from(1i64)),
            ("b", Json::Array(vec![Json::Null, Json::Bool(true)])),
            ("c", Json::object([("nested", Json::str("x"))])),
        ]);
        let text = to_string_pretty(&v);
        assert!(text.contains('\n'));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&Json::Num(1621.0)), "1621");
        assert_eq!(to_string(&Json::Num(0.7)), "0.7");
        assert_eq!(to_string(&Json::Num(-2.0)), "-2");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::str("line1\nline2\t\"quoted\" \\ \u{0001}");
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(to_string(&Json::Num(f64::NAN)), "null");
        assert_eq!(to_string(&Json::Num(f64::INFINITY)), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&Json::Array(vec![])), "[]");
        assert_eq!(to_string(&Json::Object(crate::JsonMap::new())), "{}");
        assert_eq!(to_string_pretty(&Json::Array(vec![])), "[]");
    }
}
