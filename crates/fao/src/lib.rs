//! Function-as-Operator (FAO) — the paper's central abstraction (§4).
//!
//! Each logical-plan node is a [`FunctionSignature`] (emitted/ingested in
//! the exact JSON layout of Fig. 3); each physical implementation is a
//! structured [`FunctionBody`] stamped with a monotone `ver_id` in the
//! [`FunctionRegistry`], persisted to disk, and profiled with cost/accuracy
//! statistics for the optimizer.

#![warn(missing_docs)]

mod body;
mod registry;
mod signature;

pub use body::{BodyError, FunctionBody, VisionImpl};
pub use registry::{FunctionEntry, FunctionRegistry, FunctionVersion, ProfileStats, RegistryError};
pub use signature::{FunctionSignature, SignatureError};
