//! Function signatures — the nodes of KathDB's logical plan.
//!
//! The logical plan generator emits "each generated plan node … in the exact
//! JSON layout we defined so the downstream parser can ingest it without any
//! post-processing" (§4, Fig. 3). The layout is fixed here: an object with
//! the keys `name`, `description`, `inputs`, `output` — in that order.

use kath_json::Json;
use std::fmt;

/// A logical-plan node: the declaration of a function, without its body.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSignature {
    /// Function identifier, e.g. `classify_boring`.
    pub name: String,
    /// Semantic hint supporting downstream code synthesis (§4).
    pub description: String,
    /// Datasource names consumed: base relations or intermediate tables
    /// produced by preceding nodes.
    pub inputs: Vec<String>,
    /// The table this function produces.
    pub output: String,
}

/// Errors when ingesting a signature from JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureError(pub String);

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid function signature: {}", self.0)
    }
}

impl std::error::Error for SignatureError {}

impl FunctionSignature {
    /// Builds a signature.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        inputs: Vec<String>,
        output: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            inputs,
            output: output.into(),
        }
    }

    /// Emits the exact JSON layout of Fig. 3 (key order is part of the
    /// contract and is covered by tests).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::str(&self.name)),
            ("description", Json::str(&self.description)),
            (
                "inputs",
                Json::str_array(self.inputs.iter().map(String::as_str)),
            ),
            ("output", Json::str(&self.output)),
        ])
    }

    /// Ingests the exact layout "without any post-processing": all four keys
    /// must be present with the right types; extra keys are rejected, which
    /// is what lets the plan verifier catch layout drift.
    pub fn from_json(v: &Json) -> Result<Self, SignatureError> {
        let obj = v
            .as_object()
            .ok_or_else(|| SignatureError("expected an object".into()))?;
        for key in obj.keys() {
            if !matches!(key, "name" | "description" | "inputs" | "output") {
                return Err(SignatureError(format!("unexpected key '{key}'")));
            }
        }
        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| SignatureError("missing string 'name'".into()))?;
        let description = obj
            .get("description")
            .and_then(Json::as_str)
            .ok_or_else(|| SignatureError("missing string 'description'".into()))?;
        let inputs = obj
            .get("inputs")
            .and_then(Json::as_array)
            .ok_or_else(|| SignatureError("missing array 'inputs'".into()))?
            .iter()
            .map(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| SignatureError("inputs must be strings".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let output = obj
            .get("output")
            .and_then(Json::as_str)
            .ok_or_else(|| SignatureError("missing string 'output'".into()))?;
        if name.is_empty() {
            return Err(SignatureError("name must be non-empty".into()));
        }
        Ok(Self {
            name: name.to_string(),
            description: description.to_string(),
            inputs,
            output: output.to_string(),
        })
    }
}

impl fmt::Display for FunctionSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}) -> {}",
            self.name,
            self.inputs.join(", "),
            self.output
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_json::{parse, to_string};

    fn classify_boring() -> FunctionSignature {
        FunctionSignature::new(
            "classify_boring",
            "Analyze visual features of each film's poster...",
            vec!["films_with_image_scene".to_string()],
            "films_with_boring_flag",
        )
    }

    #[test]
    fn fig3_exact_json_layout() {
        let j = classify_boring().to_json();
        // Exact key order: name, description, inputs, output.
        let keys: Vec<_> = j.as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["name", "description", "inputs", "output"]);
        assert_eq!(
            to_string(&j),
            r#"{"name":"classify_boring","description":"Analyze visual features of each film's poster...","inputs":["films_with_image_scene"],"output":"films_with_boring_flag"}"#
        );
    }

    #[test]
    fn round_trip_through_text() {
        let sig = classify_boring();
        let text = to_string(&sig.to_json());
        let back = FunctionSignature::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn ingestion_is_strict() {
        // Extra key → rejected.
        let with_extra =
            parse(r#"{"name":"f","description":"d","inputs":[],"output":"o","extra":1}"#).unwrap();
        assert!(FunctionSignature::from_json(&with_extra).is_err());
        // Missing key → rejected.
        let missing = parse(r#"{"name":"f","inputs":[],"output":"o"}"#).unwrap();
        assert!(FunctionSignature::from_json(&missing).is_err());
        // Wrong type → rejected.
        let wrong = parse(r#"{"name":"f","description":"d","inputs":"x","output":"o"}"#).unwrap();
        assert!(FunctionSignature::from_json(&wrong).is_err());
        // Empty name → rejected.
        let empty = parse(r#"{"name":"","description":"d","inputs":[],"output":"o"}"#).unwrap();
        assert!(FunctionSignature::from_json(&empty).is_err());
    }

    #[test]
    fn display_shows_signature_shape() {
        assert_eq!(
            classify_boring().to_string(),
            "classify_boring(films_with_image_scene) -> films_with_boring_flag"
        );
    }
}
