//! The function registry: versioned FAO implementations, persisted to disk.
//!
//! "Each function is stamped with a monotonically increasing `ver_id`.
//! Whenever the optimizer generates a new implementation, KathDB increments
//! the version ID, leaving earlier versions intact" (§4). Versions enable
//! precise lineage queries, safe roll-backs, and iterative refinement (§5).

use crate::{FunctionBody, FunctionSignature};
use kath_json::{parse, to_string_pretty, Json};
use kath_lineage::DependencyPattern;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Profiling statistics attached to one implementation (§1: "cost and
/// accuracy statistics to individual FAO implementations").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileStats {
    /// Wall-clock runtime on the profiling sample, milliseconds.
    pub runtime_ms: f64,
    /// Simulated tokens consumed on the sample.
    pub tokens: u64,
    /// Input rows profiled.
    pub rows_in: usize,
    /// Output rows produced.
    pub rows_out: usize,
    /// Estimated accuracy in `[0,1]` (from the critic or ground truth).
    pub accuracy: Option<f64>,
}

impl ProfileStats {
    /// Scalar cost used for implementation selection: token cost dominates
    /// (LLM invocation time dwarfs local compute, §4), runtime breaks ties.
    pub fn cost(&self) -> f64 {
        self.tokens as f64 + self.runtime_ms / 1000.0
    }
}

/// One concrete implementation of a function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionVersion {
    /// Monotone version id (1-based).
    pub ver_id: u32,
    /// The structured body.
    pub body: FunctionBody,
    /// Why this version exists ("initial", "repair: …", "critic: …").
    pub note: String,
    /// Dependency pattern as classified at generation time (§3).
    pub dependency: DependencyPattern,
    /// Profiling results, if profiled.
    pub profile: Option<ProfileStats>,
}

/// A function: its signature plus all versions ever generated.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionEntry {
    /// The logical signature.
    pub signature: FunctionSignature,
    /// All versions, oldest first; never emptied (roll-back safety).
    pub versions: Vec<FunctionVersion>,
    /// The currently active version id.
    pub active: u32,
}

impl FunctionEntry {
    /// The active version.
    pub fn active_version(&self) -> &FunctionVersion {
        self.versions
            .iter()
            .find(|v| v.ver_id == self.active)
            .expect("active version must exist")
    }

    /// A version by id.
    pub fn version(&self, ver_id: u32) -> Option<&FunctionVersion> {
        self.versions.iter().find(|v| v.ver_id == ver_id)
    }

    /// Latest version id.
    pub fn latest(&self) -> u32 {
        self.versions.last().map(|v| v.ver_id).unwrap_or(0)
    }
}

/// Registry errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The function is not registered.
    UnknownFunction(String),
    /// The requested version does not exist.
    UnknownVersion(String, u32),
    /// Persistence failure.
    Io(String),
    /// Corrupt persisted registry.
    Corrupt(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownFunction(n) => write!(f, "unknown function '{n}'"),
            RegistryError::UnknownVersion(n, v) => {
                write!(f, "function '{n}' has no version {v}")
            }
            RegistryError::Io(m) => write!(f, "registry io error: {m}"),
            RegistryError::Corrupt(m) => write!(f, "corrupt registry: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The registry of all functions of a KathDB instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FunctionRegistry {
    functions: BTreeMap<String, FunctionEntry>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a signature with its first implementation; returns ver 1.
    /// Re-registering the same name adds a new version instead.
    pub fn register(
        &mut self,
        signature: FunctionSignature,
        body: FunctionBody,
        note: impl Into<String>,
    ) -> u32 {
        let name = signature.name.clone();
        match self.functions.get_mut(&name) {
            Some(entry) => {
                let ver_id = entry.latest() + 1;
                let dependency = body.dependency_pattern();
                entry.versions.push(FunctionVersion {
                    ver_id,
                    body,
                    note: note.into(),
                    dependency,
                    profile: None,
                });
                entry.active = ver_id;
                ver_id
            }
            None => {
                let dependency = body.dependency_pattern();
                self.functions.insert(
                    name,
                    FunctionEntry {
                        signature,
                        versions: vec![FunctionVersion {
                            ver_id: 1,
                            body,
                            note: note.into(),
                            dependency,
                            profile: None,
                        }],
                        active: 1,
                    },
                );
                1
            }
        }
    }

    /// Adds a new version for an existing function (repair/alternative);
    /// the new version becomes active. Returns the new ver_id.
    pub fn add_version(
        &mut self,
        name: &str,
        body: FunctionBody,
        note: impl Into<String>,
    ) -> Result<u32, RegistryError> {
        let entry = self
            .functions
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownFunction(name.to_string()))?;
        let ver_id = entry.latest() + 1;
        let dependency = body.dependency_pattern();
        entry.versions.push(FunctionVersion {
            ver_id,
            body,
            note: note.into(),
            dependency,
            profile: None,
        });
        entry.active = ver_id;
        Ok(ver_id)
    }

    /// Rolls back to a prior version ("safe roll-backs", §4).
    pub fn rollback(&mut self, name: &str, ver_id: u32) -> Result<(), RegistryError> {
        let entry = self
            .functions
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownFunction(name.to_string()))?;
        if entry.version(ver_id).is_none() {
            return Err(RegistryError::UnknownVersion(name.to_string(), ver_id));
        }
        entry.active = ver_id;
        Ok(())
    }

    /// Attaches profiling stats to a specific version.
    pub fn set_profile(
        &mut self,
        name: &str,
        ver_id: u32,
        profile: ProfileStats,
    ) -> Result<(), RegistryError> {
        let entry = self
            .functions
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownFunction(name.to_string()))?;
        let v = entry
            .versions
            .iter_mut()
            .find(|v| v.ver_id == ver_id)
            .ok_or_else(|| RegistryError::UnknownVersion(name.to_string(), ver_id))?;
        v.profile = Some(profile);
        Ok(())
    }

    /// Looks up a function.
    pub fn get(&self, name: &str) -> Result<&FunctionEntry, RegistryError> {
        self.functions
            .get(name)
            .ok_or_else(|| RegistryError::UnknownFunction(name.to_string()))
    }

    /// Whether a function exists.
    pub fn contains(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// All function names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Serializes the whole registry to pretty JSON.
    pub fn to_json(&self) -> Json {
        let funcs: Vec<Json> = self
            .functions
            .values()
            .map(|e| {
                let versions: Vec<Json> = e
                    .versions
                    .iter()
                    .map(|v| {
                        let mut pairs = vec![
                            ("ver_id", Json::from(v.ver_id as i64)),
                            ("body", v.body.to_json()),
                            ("note", Json::str(&v.note)),
                            ("dependency_pattern", Json::str(v.dependency.as_str())),
                        ];
                        if let Some(p) = &v.profile {
                            pairs.push((
                                "profile",
                                Json::object([
                                    ("runtime_ms", Json::Num(p.runtime_ms)),
                                    ("tokens", Json::from(p.tokens)),
                                    ("rows_in", Json::from(p.rows_in as u64)),
                                    ("rows_out", Json::from(p.rows_out as u64)),
                                    ("accuracy", p.accuracy.map(Json::Num).unwrap_or(Json::Null)),
                                ]),
                            ));
                        }
                        Json::object(pairs)
                    })
                    .collect();
                Json::object([
                    ("signature", e.signature.to_json()),
                    ("active", Json::from(e.active as i64)),
                    ("versions", Json::Array(versions)),
                ])
            })
            .collect();
        Json::object([("functions", Json::Array(funcs))])
    }

    /// Loads a registry from its JSON form.
    pub fn from_json(v: &Json) -> Result<Self, RegistryError> {
        let corrupt = |m: &str| RegistryError::Corrupt(m.to_string());
        let mut reg = FunctionRegistry::new();
        let funcs = v
            .get("functions")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("missing 'functions'"))?;
        for f in funcs {
            let signature = FunctionSignature::from_json(
                f.get("signature")
                    .ok_or_else(|| corrupt("missing signature"))?,
            )
            .map_err(|e| corrupt(&e.to_string()))?;
            let active = f
                .get("active")
                .and_then(Json::as_i64)
                .ok_or_else(|| corrupt("missing active"))? as u32;
            let mut versions = Vec::new();
            for vj in f
                .get("versions")
                .and_then(Json::as_array)
                .ok_or_else(|| corrupt("missing versions"))?
            {
                let ver_id = vj
                    .get("ver_id")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| corrupt("missing ver_id"))? as u32;
                let body =
                    FunctionBody::from_json(vj.get("body").ok_or_else(|| corrupt("missing body"))?)
                        .map_err(|e| corrupt(&e.to_string()))?;
                let note = vj
                    .get("note")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                let dependency = vj
                    .get("dependency_pattern")
                    .and_then(Json::as_str)
                    .and_then(DependencyPattern::parse)
                    .unwrap_or_else(|| body.dependency_pattern());
                let profile = vj.get("profile").and_then(|p| {
                    Some(ProfileStats {
                        runtime_ms: p.get("runtime_ms")?.as_f64()?,
                        tokens: p.get("tokens")?.as_i64()? as u64,
                        rows_in: p.get("rows_in")?.as_i64()? as usize,
                        rows_out: p.get("rows_out")?.as_i64()? as usize,
                        accuracy: p.get("accuracy").and_then(Json::as_f64),
                    })
                });
                versions.push(FunctionVersion {
                    ver_id,
                    body,
                    note,
                    dependency,
                    profile,
                });
            }
            if versions.is_empty() {
                return Err(corrupt("function with no versions"));
            }
            let name = signature.name.clone();
            reg.functions.insert(
                name,
                FunctionEntry {
                    signature,
                    versions,
                    active,
                },
            );
        }
        Ok(reg)
    }

    /// Persists the registry to a file ("these functions are persisted
    /// locally on disk", §1). The write is atomic — temp file in the same
    /// directory, fsync, rename — so a crash mid-save can never leave a
    /// truncated registry under the target name.
    pub fn save(&self, path: &Path) -> Result<(), RegistryError> {
        kath_storage::atomic_write(path, to_string_pretty(&self.to_json()).as_bytes())
            .map_err(|e| RegistryError::Io(e.to_string()))
    }

    /// Loads the registry from a file.
    pub fn load(path: &Path) -> Result<Self, RegistryError> {
        let text = std::fs::read_to_string(path).map_err(|e| RegistryError::Io(e.to_string()))?;
        let v = parse(&text).map_err(|e| RegistryError::Corrupt(e.to_string()))?;
        Self::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str) -> FunctionSignature {
        FunctionSignature::new(name, format!("does {name}"), vec!["in".into()], "out")
    }

    fn body(expr: &str) -> FunctionBody {
        FunctionBody::MapExpr {
            input: "in".into(),
            expr: expr.into(),
            output_column: "c".into(),
        }
    }

    #[test]
    fn version_ids_are_monotone_and_never_lost() {
        let mut reg = FunctionRegistry::new();
        assert_eq!(reg.register(sig("f"), body("1"), "initial"), 1);
        assert_eq!(reg.add_version("f", body("2"), "repair").unwrap(), 2);
        assert_eq!(reg.add_version("f", body("3"), "critic").unwrap(), 3);
        let entry = reg.get("f").unwrap();
        assert_eq!(entry.versions.len(), 3);
        assert_eq!(entry.active, 3);
        // Earlier versions remain intact.
        assert!(matches!(
            &entry.version(1).unwrap().body,
            FunctionBody::MapExpr { expr, .. } if expr == "1"
        ));
    }

    #[test]
    fn rollback_restores_prior_version() {
        let mut reg = FunctionRegistry::new();
        reg.register(sig("f"), body("1"), "initial");
        reg.add_version("f", body("2"), "bad repair").unwrap();
        reg.rollback("f", 1).unwrap();
        assert_eq!(reg.get("f").unwrap().active_version().ver_id, 1);
        assert!(matches!(
            reg.rollback("f", 9),
            Err(RegistryError::UnknownVersion(_, 9))
        ));
        assert!(reg.rollback("missing", 1).is_err());
    }

    #[test]
    fn re_register_adds_version() {
        let mut reg = FunctionRegistry::new();
        reg.register(sig("f"), body("1"), "initial");
        let v = reg.register(sig("f"), body("2"), "again");
        assert_eq!(v, 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn profiles_attach_to_versions() {
        let mut reg = FunctionRegistry::new();
        reg.register(sig("f"), body("1"), "initial");
        let stats = ProfileStats {
            runtime_ms: 12.5,
            tokens: 300,
            rows_in: 10,
            rows_out: 10,
            accuracy: Some(0.9),
        };
        reg.set_profile("f", 1, stats.clone()).unwrap();
        assert_eq!(
            reg.get("f").unwrap().version(1).unwrap().profile,
            Some(stats)
        );
        assert!(reg.set_profile("f", 5, ProfileStats::default()).is_err());
    }

    #[test]
    fn cost_prefers_fewer_tokens() {
        let cheap = ProfileStats {
            tokens: 100,
            runtime_ms: 900.0,
            ..Default::default()
        };
        let pricey = ProfileStats {
            tokens: 1000,
            runtime_ms: 10.0,
            ..Default::default()
        };
        assert!(cheap.cost() < pricey.cost());
    }

    #[test]
    fn json_and_disk_round_trip() {
        let mut reg = FunctionRegistry::new();
        reg.register(
            FunctionSignature::new(
                "classify_boring",
                "Analyze visual features of each film's poster...",
                vec!["films_with_image_scene".into()],
                "films_with_boring_flag",
            ),
            FunctionBody::VisualClassify {
                input: "films_with_image_scene".into(),
                uri_column: "poster_uri".into(),
                output_column: "boring".into(),
                implementation: crate::VisionImpl::Cascade,
                threshold: 0.4,
                convert_unsupported: false,
            },
            "initial",
        );
        reg.add_version(
            "classify_boring",
            FunctionBody::VisualClassify {
                input: "films_with_image_scene".into(),
                uri_column: "poster_uri".into(),
                output_column: "boring".into(),
                implementation: crate::VisionImpl::Ocr,
                threshold: 0.4,
                convert_unsupported: false,
            },
            "cheaper alternative",
        )
        .unwrap();
        reg.set_profile(
            "classify_boring",
            1,
            ProfileStats {
                runtime_ms: 5.0,
                tokens: 1100,
                rows_in: 4,
                rows_out: 4,
                accuracy: Some(0.97),
            },
        )
        .unwrap();

        // In-memory JSON round trip.
        let back = FunctionRegistry::from_json(&reg.to_json()).unwrap();
        assert_eq!(back, reg);

        // Disk round trip.
        let dir = std::env::temp_dir().join("kathdb_registry_test");
        let path = dir.join("functions.json");
        reg.save(&path).unwrap();
        let loaded = FunctionRegistry::load(&path).unwrap();
        assert_eq!(loaded, reg);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_rejects_corruption() {
        let dir = std::env::temp_dir().join("kathdb_registry_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"functions\": [{}]}").unwrap();
        assert!(matches!(
            FunctionRegistry::load(&path),
            Err(RegistryError::Corrupt(_))
        ));
        std::fs::write(&path, "not json").unwrap();
        assert!(FunctionRegistry::load(&path).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
