//! Function bodies — the physical implementations of logical plan nodes.
//!
//! "A function can contain a SQL query over a table, a view population using
//! machine learning models, a vector-based similarity search for semantic
//! keyword matching, and more" (§2.2). A body is a *structured program*, not
//! opaque code: structured bodies persist to disk as JSON (§4), are cheap to
//! diff across versions, and let the explainer describe exactly what a
//! function does (§5). Interpretation happens in `kath-exec`.

use kath_json::Json;
use kath_lineage::DependencyPattern;
use std::fmt;

/// Which vision implementation a visual operator uses — the physical
/// alternatives the optimizer chooses among (§4: VLM vs OCR vs cascade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisionImpl {
    /// Accurate, expensive VLM.
    VlmAccurate,
    /// Cheap, noisy VLM.
    VlmCheap,
    /// OCR text extraction only.
    Ocr,
    /// Cheap VLM with escalation to the accurate one.
    Cascade,
}

impl VisionImpl {
    /// Stable spelling for persistence.
    pub fn as_str(&self) -> &'static str {
        match self {
            VisionImpl::VlmAccurate => "vlm_accurate",
            VisionImpl::VlmCheap => "vlm_cheap",
            VisionImpl::Ocr => "ocr",
            VisionImpl::Cascade => "cascade",
        }
    }

    /// Parses the stable spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "vlm_accurate" => VisionImpl::VlmAccurate,
            "vlm_cheap" => VisionImpl::VlmCheap,
            "ocr" => VisionImpl::Ocr,
            "cascade" => VisionImpl::Cascade,
            _ => return None,
        })
    }
}

/// A structured function body.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionBody {
    /// A SQL query over the catalog (joins, filters, projections, sorts).
    Sql {
        /// The query text (parsed/executed by `kath-sql`).
        query: String,
        /// When set, de-duplicate the output keeping the first row per key —
        /// the monitor's patch for the fan-out anomaly of §5 ("enforce that
        /// each poster can be linked to only one tuple in movie_table").
        dedup_key: Option<String>,
    },
    /// Adds a computed column: `output_column = eval(expr)` per input row.
    /// One-to-one; records row-level lineage.
    MapExpr {
        /// Input table name.
        input: String,
        /// Scalar SQL expression over the input columns.
        expr: String,
        /// Name of the appended column.
        output_column: String,
    },
    /// Keeps rows satisfying a predicate. One-to-one (per retained row).
    FilterExpr {
        /// Input table name.
        input: String,
        /// Predicate SQL expression.
        predicate: String,
    },
    /// Vector-similarity concept scoring: embeds `text_column`, scores it
    /// against `keywords`, appends `output_column` ∈ [0,1] (§6 step 4).
    ConceptScore {
        /// Input table name.
        input: String,
        /// Column holding the text to score.
        text_column: String,
        /// The LLM-generated keyword list.
        keywords: Vec<String>,
        /// Name of the appended score column.
        output_column: String,
    },
    /// Visual classification over poster images: reads the image registry
    /// via `uri_column`, computes a boolean `output_column` from visual
    /// features and the scene-graph views (the `classify_boring` node).
    VisualClassify {
        /// Input table name.
        input: String,
        /// Column holding the media URI.
        uri_column: String,
        /// Appended boolean column.
        output_column: String,
        /// Which physical vision implementation to use.
        implementation: VisionImpl,
        /// Decision threshold on the interest score (≤ threshold = boring).
        threshold: f64,
        /// Convert unsupported media formats before decoding — the patch the
        /// rewriter agent adds after the HEIC failure (§5).
        convert_unsupported: bool,
    },
    /// Populates the multimodal relational views from registered media (§3);
    /// the paper pre-writes this function in its prototype (§6).
    ViewPopulate {
        /// `"scene"` or `"text"`.
        modality: String,
        /// Which physical vision implementation (scene only).
        implementation: VisionImpl,
        /// Convert unsupported media formats before decoding (§5 repair).
        convert_unsupported: bool,
    },
}

impl FunctionBody {
    /// The dependency pattern the generating LLM classifies this body as
    /// (§3); it decides row- vs table-level lineage.
    pub fn dependency_pattern(&self) -> DependencyPattern {
        match self {
            // SQL bodies may join/aggregate/sort: wide by default.
            FunctionBody::Sql { .. } => DependencyPattern::ManyToMany,
            FunctionBody::MapExpr { .. }
            | FunctionBody::ConceptScore { .. }
            | FunctionBody::VisualClassify { .. } => DependencyPattern::OneToOne,
            FunctionBody::FilterExpr { .. } => DependencyPattern::OneToOne,
            FunctionBody::ViewPopulate { .. } => DependencyPattern::OneToMany,
        }
    }

    /// The input table names this body reads.
    pub fn inputs(&self) -> Vec<String> {
        match self {
            FunctionBody::Sql { query, .. } => kath_sql::parse_select(query)
                .map(|s| {
                    let mut v = vec![s.from.clone()];
                    v.extend(s.joins.iter().map(|j| j.table.clone()));
                    v
                })
                .unwrap_or_default(),
            FunctionBody::MapExpr { input, .. }
            | FunctionBody::FilterExpr { input, .. }
            | FunctionBody::ConceptScore { input, .. }
            | FunctionBody::VisualClassify { input, .. } => vec![input.clone()],
            FunctionBody::ViewPopulate { .. } => vec![],
        }
    }

    /// A one-line human description for the explainer.
    pub fn summarize(&self) -> String {
        match self {
            FunctionBody::Sql { query, dedup_key } => match dedup_key {
                Some(k) => format!("runs SQL: {query} (then keeps one row per {k})"),
                None => format!("runs SQL: {query}"),
            },
            FunctionBody::MapExpr {
                expr,
                output_column,
                ..
            } => format!("computes {output_column} = {expr} for each row"),
            FunctionBody::FilterExpr { predicate, .. } => {
                format!("keeps rows where {predicate}")
            }
            FunctionBody::ConceptScore {
                text_column,
                keywords,
                output_column,
                ..
            } => format!(
                "scores {text_column} against keywords [{}] into {output_column} \
                 via embedding similarity",
                keywords.join(", ")
            ),
            FunctionBody::VisualClassify {
                output_column,
                implementation,
                threshold,
                ..
            } => format!(
                "flags posters as {output_column} if their visual interest \
                 (colors, objects, action) falls below {threshold} using {}",
                implementation.as_str()
            ),
            FunctionBody::ViewPopulate {
                modality,
                implementation,
                ..
            } => format!(
                "populates the {modality} relational views from raw media using {}",
                implementation.as_str()
            ),
        }
    }

    /// Persists the body as JSON (tagged by `kind`).
    pub fn to_json(&self) -> Json {
        match self {
            FunctionBody::Sql { query, dedup_key } => {
                let mut pairs = vec![("kind", Json::str("sql")), ("query", Json::str(query))];
                if let Some(k) = dedup_key {
                    pairs.push(("dedup_key", Json::str(k)));
                }
                Json::object(pairs)
            }
            FunctionBody::MapExpr {
                input,
                expr,
                output_column,
            } => Json::object([
                ("kind", Json::str("map_expr")),
                ("input", Json::str(input)),
                ("expr", Json::str(expr)),
                ("output_column", Json::str(output_column)),
            ]),
            FunctionBody::FilterExpr { input, predicate } => Json::object([
                ("kind", Json::str("filter_expr")),
                ("input", Json::str(input)),
                ("predicate", Json::str(predicate)),
            ]),
            FunctionBody::ConceptScore {
                input,
                text_column,
                keywords,
                output_column,
            } => Json::object([
                ("kind", Json::str("concept_score")),
                ("input", Json::str(input)),
                ("text_column", Json::str(text_column)),
                (
                    "keywords",
                    Json::str_array(keywords.iter().map(String::as_str)),
                ),
                ("output_column", Json::str(output_column)),
            ]),
            FunctionBody::VisualClassify {
                input,
                uri_column,
                output_column,
                implementation,
                threshold,
                convert_unsupported,
            } => Json::object([
                ("kind", Json::str("visual_classify")),
                ("input", Json::str(input)),
                ("uri_column", Json::str(uri_column)),
                ("output_column", Json::str(output_column)),
                ("implementation", Json::str(implementation.as_str())),
                ("threshold", Json::Num(*threshold)),
                ("convert_unsupported", Json::Bool(*convert_unsupported)),
            ]),
            FunctionBody::ViewPopulate {
                modality,
                implementation,
                convert_unsupported,
            } => Json::object([
                ("kind", Json::str("view_populate")),
                ("modality", Json::str(modality)),
                ("implementation", Json::str(implementation.as_str())),
                ("convert_unsupported", Json::Bool(*convert_unsupported)),
            ]),
        }
    }

    /// Loads a body from its JSON form.
    pub fn from_json(v: &Json) -> Result<Self, BodyError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| BodyError("missing 'kind'".into()))?;
        let get_str = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| BodyError(format!("missing string '{key}'")))
        };
        Ok(match kind {
            "sql" => FunctionBody::Sql {
                query: get_str("query")?,
                dedup_key: v
                    .get("dedup_key")
                    .and_then(Json::as_str)
                    .map(str::to_string),
            },
            "map_expr" => FunctionBody::MapExpr {
                input: get_str("input")?,
                expr: get_str("expr")?,
                output_column: get_str("output_column")?,
            },
            "filter_expr" => FunctionBody::FilterExpr {
                input: get_str("input")?,
                predicate: get_str("predicate")?,
            },
            "concept_score" => FunctionBody::ConceptScore {
                input: get_str("input")?,
                text_column: get_str("text_column")?,
                keywords: v
                    .get("keywords")
                    .and_then(Json::as_array)
                    .ok_or_else(|| BodyError("missing array 'keywords'".into()))?
                    .iter()
                    .map(|k| {
                        k.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| BodyError("keywords must be strings".into()))
                    })
                    .collect::<Result<_, _>>()?,
                output_column: get_str("output_column")?,
            },
            "visual_classify" => FunctionBody::VisualClassify {
                input: get_str("input")?,
                uri_column: get_str("uri_column")?,
                output_column: get_str("output_column")?,
                implementation: VisionImpl::parse(&get_str("implementation")?)
                    .ok_or_else(|| BodyError("unknown implementation".into()))?,
                threshold: v
                    .get("threshold")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| BodyError("missing number 'threshold'".into()))?,
                convert_unsupported: v
                    .get("convert_unsupported")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            },
            "view_populate" => FunctionBody::ViewPopulate {
                modality: get_str("modality")?,
                implementation: VisionImpl::parse(&get_str("implementation")?)
                    .ok_or_else(|| BodyError("unknown implementation".into()))?,
                convert_unsupported: v
                    .get("convert_unsupported")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            },
            other => return Err(BodyError(format!("unknown body kind '{other}'"))),
        })
    }
}

/// Error ingesting a persisted body.
#[derive(Debug, Clone, PartialEq)]
pub struct BodyError(pub String);

impl fmt::Display for BodyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid function body: {}", self.0)
    }
}

impl std::error::Error for BodyError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_bodies() -> Vec<FunctionBody> {
        vec![
            FunctionBody::Sql {
                query: "SELECT title, year FROM movie_table".into(),
                dedup_key: None,
            },
            FunctionBody::MapExpr {
                input: "films".into(),
                expr: "0.7 * excitement + 0.3 * recency".into(),
                output_column: "final_score".into(),
            },
            FunctionBody::FilterExpr {
                input: "films".into(),
                predicate: "boring = TRUE".into(),
            },
            FunctionBody::ConceptScore {
                input: "films_with_text".into(),
                text_column: "plot".into(),
                keywords: vec!["gun".into(), "murder".into()],
                output_column: "excitement".into(),
            },
            FunctionBody::VisualClassify {
                input: "films_with_image_scene".into(),
                uri_column: "poster_uri".into(),
                output_column: "boring".into(),
                implementation: VisionImpl::Cascade,
                threshold: 0.4,
                convert_unsupported: false,
            },
            FunctionBody::ViewPopulate {
                modality: "scene".into(),
                implementation: VisionImpl::VlmAccurate,
                convert_unsupported: true,
            },
        ]
    }

    #[test]
    fn json_round_trip_for_every_variant() {
        for body in all_bodies() {
            let text = kath_json::to_string(&body.to_json());
            let back = FunctionBody::from_json(&kath_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, body);
        }
    }

    #[test]
    fn dependency_patterns_match_section3() {
        // One-to-one scorers record row lineage; SQL (joins/sorts) is wide.
        assert!(matches!(
            all_bodies()[3].dependency_pattern(),
            DependencyPattern::OneToOne
        ));
        assert!(matches!(
            all_bodies()[0].dependency_pattern(),
            DependencyPattern::ManyToMany
        ));
        assert!(matches!(
            all_bodies()[5].dependency_pattern(),
            DependencyPattern::OneToMany
        ));
    }

    #[test]
    fn inputs_extracted_from_sql_and_structured_bodies() {
        let sql = FunctionBody::Sql {
            query: "SELECT a FROM films JOIN posters ON films.id = posters.film_id".into(),
            dedup_key: None,
        };
        assert_eq!(
            sql.inputs(),
            vec!["films".to_string(), "posters".to_string()]
        );
        assert_eq!(all_bodies()[1].inputs(), vec!["films".to_string()]);
        assert!(all_bodies()[5].inputs().is_empty());
    }

    #[test]
    fn summaries_are_explainer_ready() {
        let s = all_bodies()[4].summarize();
        assert!(s.contains("posters"));
        assert!(s.contains("cascade"));
        let s = all_bodies()[3].summarize();
        assert!(s.contains("gun"));
    }

    #[test]
    fn rejects_malformed_json() {
        for bad in [
            r#"{"query":"SELECT 1"}"#,
            r#"{"kind":"nope"}"#,
            r#"{"kind":"map_expr","input":"t"}"#,
            r#"{"kind":"visual_classify","input":"t","uri_column":"u","output_column":"o","implementation":"warp","threshold":0.4}"#,
        ] {
            let v = kath_json::parse(bad).unwrap();
            assert!(FunctionBody::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn vision_impl_round_trip() {
        for v in [
            VisionImpl::VlmAccurate,
            VisionImpl::VlmCheap,
            VisionImpl::Ocr,
            VisionImpl::Cascade,
        ] {
            assert_eq!(VisionImpl::parse(v.as_str()), Some(v));
        }
        assert_eq!(VisionImpl::parse("gpt4"), None);
    }
}
