//! Simulated vision models: `SimVlm` (detector) and `SimOcr` (text reader).
//!
//! These are the two alternative physical implementations the paper's
//! optimizer chooses between for an image-to-text operator — "a VLM-based
//! implementation or an OCR-based implementation such as Tesseract" (§4).
//! The VLM is accurate but expensive; OCR is cheap but only sees legible
//! text. Both operate on structured [`Image`] descriptors (DESIGN.md §1).

use crate::TokenMeter;
use kath_media::{BBox, Image, MediaError};
use kath_vector::fnv1a;

/// One detection produced by a vision model.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Predicted class label.
    pub class: String,
    /// Predicted bounding box.
    pub bbox: BBox,
    /// Detection confidence in `[0,1]`.
    pub confidence: f64,
    /// Predicted key/value attributes.
    pub attributes: Vec<(String, String)>,
    /// Track id passed through from the descriptor (videos).
    pub track_id: Option<u32>,
}

/// A simulated vision-language model.
#[derive(Debug, Clone)]
pub struct SimVlm {
    /// Probability of detecting a fully-salient object; low-saliency objects
    /// degrade proportionally. 1.0 = perfect detector.
    pub recall: f64,
    /// Flat token cost per analyzed image (VLMs bill image tokens).
    pub tokens_per_image: u64,
    seed: u64,
    meter: TokenMeter,
}

impl SimVlm {
    /// An accurate, expensive detector (the "expensive model" of a cascade).
    pub fn accurate(seed: u64, meter: TokenMeter) -> Self {
        Self {
            recall: 0.98,
            tokens_per_image: 1100,
            seed,
            meter,
        }
    }

    /// A cheap, noisy detector (the cascade's first stage).
    pub fn cheap(seed: u64, meter: TokenMeter) -> Self {
        Self {
            recall: 0.75,
            tokens_per_image: 180,
            seed,
            meter,
        }
    }

    /// Custom detector.
    pub fn with_recall(recall: f64, tokens_per_image: u64, seed: u64, meter: TokenMeter) -> Self {
        Self {
            recall: recall.clamp(0.0, 1.0),
            tokens_per_image,
            seed,
            meter,
        }
    }

    /// Runs detection over a decoded image. Fails on unsupported formats —
    /// the caller (execution monitor) owns the repair loop.
    pub fn detect(&self, image: &Image) -> Result<Vec<Detection>, MediaError> {
        image.decode()?;
        self.meter.charge_raw(self.tokens_per_image, 40);
        let mut out = Vec::new();
        for (i, obj) in image.objects.iter().enumerate() {
            // Detection probability = recall, scaled by object saliency.
            let p = self.recall * (0.35 + 0.65 * obj.saliency);
            let roll = self.unit_roll(&image.uri, i);
            if roll < p {
                out.push(Detection {
                    class: obj.class.clone(),
                    bbox: obj.bbox,
                    confidence: (p * (0.85 + 0.15 * obj.saliency)).clamp(0.0, 1.0),
                    attributes: obj.attributes.clone(),
                    track_id: obj.track_id,
                });
            }
        }
        Ok(out)
    }

    /// Mean detection confidence for an image (used as cascade gate).
    pub fn confidence(&self, detections: &[Detection]) -> f64 {
        if detections.is_empty() {
            // An empty result from a noisy model is itself low-confidence.
            1.0 - self.recall
        } else {
            detections.iter().map(|d| d.confidence).sum::<f64>() / detections.len() as f64
        }
    }

    fn unit_roll(&self, uri: &str, index: usize) -> f64 {
        let h = fnv1a(uri.as_bytes()) ^ self.seed ^ (index as u64).wrapping_mul(0x9E3779B9);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A simulated OCR engine (Tesseract stand-in): reads only legible text.
#[derive(Debug, Clone)]
pub struct SimOcr {
    /// Flat token cost per image (cheap: no model inference).
    pub tokens_per_image: u64,
    meter: TokenMeter,
}

impl SimOcr {
    /// Builds the OCR engine.
    pub fn new(meter: TokenMeter) -> Self {
        Self {
            tokens_per_image: 15,
            meter,
        }
    }

    /// Extracts visible text snippets, in reading order (top-to-bottom,
    /// left-to-right by box origin).
    pub fn read_text(&self, image: &Image) -> Result<Vec<String>, MediaError> {
        image.decode()?;
        self.meter.charge_raw(self.tokens_per_image, 10);
        let mut texted: Vec<(&kath_media::ImageObject, &str)> = image
            .objects
            .iter()
            .filter_map(|o| o.text.as_deref().map(|t| (o, t)))
            .collect();
        texted.sort_by(|a, b| {
            a.0.bbox
                .y1
                .total_cmp(&b.0.bbox.y1)
                .then(a.0.bbox.x1.total_cmp(&b.0.bbox.x1))
        });
        Ok(texted.into_iter().map(|(_, t)| t.to_string()).collect())
    }
}

/// A two-stage model cascade: run the cheap model; escalate to the
/// expensive model when confidence falls below the threshold (§1: "physical
/// choices (e.g., model cascades)").
#[derive(Debug, Clone)]
pub struct VlmCascade {
    /// First-stage model.
    pub cheap: SimVlm,
    /// Escalation model.
    pub expensive: SimVlm,
    /// Escalate when cheap-stage confidence < threshold.
    pub threshold: f64,
}

impl VlmCascade {
    /// Standard cascade over a shared meter.
    pub fn new(seed: u64, meter: TokenMeter, threshold: f64) -> Self {
        Self {
            cheap: SimVlm::cheap(seed, meter.clone()),
            expensive: SimVlm::accurate(seed.wrapping_add(1), meter),
            threshold,
        }
    }

    /// Detects with escalation; returns detections and whether it escalated.
    pub fn detect(&self, image: &Image) -> Result<(Vec<Detection>, bool), MediaError> {
        let first = self.cheap.detect(image)?;
        if self.cheap.confidence(&first) >= self.threshold {
            Ok((first, false))
        } else {
            Ok((self.expensive.detect(image)?, true))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_media::{Color, ImageObject, MediaFormat};

    fn poster(uri: &str, format: MediaFormat) -> Image {
        Image::new(uri, format)
            .with_color(Color::rgb(200, 30, 30))
            .with_object(
                ImageObject::new("person", BBox::new(0.1, 0.1, 0.5, 0.9)).with_saliency(1.0),
            )
            .with_object(
                ImageObject::new("gun", BBox::new(0.45, 0.4, 0.6, 0.6))
                    .with_saliency(0.9)
                    .with_attr("color", "black"),
            )
            .with_object(
                ImageObject::new("text", BBox::new(0.1, 0.0, 0.9, 0.08))
                    .with_saliency(0.2)
                    .with_text("GUILTY BY SUSPICION"),
            )
    }

    #[test]
    fn accurate_vlm_finds_salient_objects() {
        let meter = TokenMeter::new();
        let vlm = SimVlm::accurate(7, meter.clone());
        let dets = vlm.detect(&poster("p1.png", MediaFormat::Png)).unwrap();
        let classes: Vec<_> = dets.iter().map(|d| d.class.as_str()).collect();
        assert!(classes.contains(&"person"));
        assert!(classes.contains(&"gun"));
        assert_eq!(meter.usage().calls, 1);
        assert!(meter.usage().prompt_tokens >= 1100);
    }

    #[test]
    fn cheap_vlm_misses_more_across_a_corpus() {
        let meter = TokenMeter::new();
        let cheap = SimVlm::cheap(7, meter.clone());
        let accurate = SimVlm::accurate(7, meter);
        let (mut cheap_hits, mut acc_hits) = (0usize, 0usize);
        for i in 0..60 {
            let img = poster(&format!("p{i}.png"), MediaFormat::Png);
            cheap_hits += cheap.detect(&img).unwrap().len();
            acc_hits += accurate.detect(&img).unwrap().len();
        }
        assert!(
            cheap_hits < acc_hits,
            "cheap={cheap_hits} accurate={acc_hits}"
        );
    }

    #[test]
    fn detection_is_deterministic() {
        let vlm = SimVlm::accurate(7, TokenMeter::new());
        let img = poster("same.png", MediaFormat::Png);
        assert_eq!(vlm.detect(&img).unwrap(), vlm.detect(&img).unwrap());
    }

    #[test]
    fn heic_fails_decode_for_all_models() {
        let img = poster("p.heic", MediaFormat::Heic);
        let vlm = SimVlm::accurate(7, TokenMeter::new());
        assert!(matches!(
            vlm.detect(&img),
            Err(MediaError::UnsupportedFormat(_))
        ));
        let ocr = SimOcr::new(TokenMeter::new());
        assert!(ocr.read_text(&img).is_err());
        // The rewriter's conversion patch makes it decodable.
        let fixed = img.convert_to(MediaFormat::Png);
        assert!(vlm.detect(&fixed).is_ok());
    }

    #[test]
    fn ocr_reads_only_text() {
        let ocr = SimOcr::new(TokenMeter::new());
        let texts = ocr.read_text(&poster("p.png", MediaFormat::Png)).unwrap();
        assert_eq!(texts, vec!["GUILTY BY SUSPICION".to_string()]);
    }

    #[test]
    fn ocr_is_cheaper_than_vlm() {
        let m1 = TokenMeter::new();
        let m2 = TokenMeter::new();
        let img = poster("p.png", MediaFormat::Png);
        SimOcr::new(m1.clone()).read_text(&img).unwrap();
        SimVlm::accurate(7, m2.clone()).detect(&img).unwrap();
        assert!(m1.usage().total() * 10 < m2.usage().total());
    }

    #[test]
    fn cascade_escalates_on_low_confidence() {
        let meter = TokenMeter::new();
        // Threshold 0.99: the cheap stage can never reach it → always
        // escalates.
        let cascade = VlmCascade::new(7, meter.clone(), 0.99);
        let (_dets, escalated) = cascade.detect(&poster("p.png", MediaFormat::Png)).unwrap();
        assert!(escalated);
        // Threshold 0.0: never escalates.
        let cascade = VlmCascade::new(7, TokenMeter::new(), 0.0);
        let (_d, escalated) = cascade.detect(&poster("p.png", MediaFormat::Png)).unwrap();
        assert!(!escalated);
    }

    #[test]
    fn attributes_pass_through() {
        let vlm = SimVlm::accurate(7, TokenMeter::new());
        let dets = vlm.detect(&poster("p.png", MediaFormat::Png)).unwrap();
        let gun = dets.iter().find(|d| d.class == "gun").unwrap();
        assert_eq!(
            gun.attributes,
            vec![("color".to_string(), "black".to_string())]
        );
    }
}
