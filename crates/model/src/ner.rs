//! Rule-based named-entity recognition and coreference resolution.
//!
//! Populates the text semantic graph of Table 2: entities, their mentions
//! (full names, pronouns, aliases), and character spans. The paper's example
//! — "Taylor", "Mrs. Swift", and "she" all resolving to one entity — is the
//! acceptance test for this module.

use crate::KnowledgeBase;

/// One extracted mention before entity resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct RawMention {
    /// Sentence index within the document.
    pub sentence: usize,
    /// Character span start (document offsets).
    pub span1: usize,
    /// Character span end.
    pub span2: usize,
    /// Surface text.
    pub surface: String,
    /// Whether this is a pronoun.
    pub pronoun: bool,
}

/// A resolved entity with all its mentions.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedEntity {
    /// Entity index within the document (becomes `eid`).
    pub id: usize,
    /// Canonical (longest) surface form.
    pub canonical: String,
    /// Entity class (`person`, `organization`, `place`, `thing`).
    pub class: String,
    /// Mentions pointing at this entity.
    pub mentions: Vec<RawMention>,
}

const PRONOUNS: [&str; 8] = ["he", "she", "they", "him", "her", "them", "his", "hers"];
const SENTENCE_STOPWORDS: [&str; 14] = [
    "The", "A", "An", "In", "On", "At", "It", "He", "She", "They", "But", "And", "After", "When",
];
const HONORIFICS: [&str; 5] = ["Mr.", "Mrs.", "Ms.", "Dr.", "Sir"];

/// Extracts raw mentions (capitalized spans + pronouns) from sentence-split
/// text. `sentences` are `(start, end, text)` document-offset triples.
pub fn extract_mentions(sentences: &[(usize, usize, &str)]) -> Vec<RawMention> {
    let mut out = Vec::new();
    for (si, (sstart, _send, stext)) in sentences.iter().enumerate() {
        let mut i = 0usize;
        let words: Vec<(usize, &str)> = tokenize_with_offsets(stext);
        while i < words.len() {
            let (off, w) = words[i];
            let clean = clean_token(w);
            if clean.is_empty() {
                i += 1;
                continue;
            }
            let lower = clean.to_lowercase();
            if PRONOUNS.contains(&lower.as_str()) {
                out.push(RawMention {
                    sentence: si,
                    span1: sstart + off,
                    span2: sstart + off + clean.len(),
                    surface: clean.to_string(),
                    pronoun: true,
                });
                i += 1;
                continue;
            }
            let is_cap = clean.chars().next().is_some_and(char::is_uppercase);
            let sentence_initial = i == 0;
            let skip_stopword = sentence_initial && SENTENCE_STOPWORDS.contains(&clean);
            if is_cap
                && !skip_stopword
                && (!sentence_initial || HONORIFICS.contains(&clean) || clean.len() > 1)
            {
                // Greedily take the run of capitalized words.
                let mut j = i;
                let mut end_off = off + clean.len();
                let mut surface = clean.to_string();
                while j + 1 < words.len() {
                    let (noff, nw) = words[j + 1];
                    let nclean = clean_token(nw);
                    if nclean.chars().next().is_some_and(char::is_uppercase)
                        && !PRONOUNS.contains(&nclean.to_lowercase().as_str())
                    {
                        surface.push(' ');
                        surface.push_str(nclean);
                        end_off = noff + nclean.len();
                        j += 1;
                    } else {
                        break;
                    }
                }
                // Sentence-initial single stopword-like words were filtered
                // above; runs starting with a stopword keep the tail only.
                if sentence_initial && SENTENCE_STOPWORDS.contains(&clean) {
                    i = j + 1;
                    continue;
                }
                out.push(RawMention {
                    sentence: si,
                    span1: sstart + off,
                    span2: sstart + end_off,
                    surface,
                    pronoun: false,
                });
                i = j + 1;
                continue;
            }
            i += 1;
        }
    }
    out
}

/// Trims punctuation but keeps the trailing period of honorifics ("Mrs.").
fn clean_token(w: &str) -> &str {
    let t = w.trim_matches(|c: char| !c.is_alphanumeric() && c != '.');
    if HONORIFICS.contains(&t) {
        t
    } else {
        t.trim_end_matches('.')
    }
}

fn tokenize_with_offsets(text: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, &text[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, &text[s..]));
    }
    out
}

/// Resolves mentions into entities: name mentions cluster by token overlap
/// (after stripping honorifics); pronouns attach to the most recent
/// compatible entity.
pub fn resolve_entities(mentions: Vec<RawMention>, kb: &KnowledgeBase) -> Vec<ResolvedEntity> {
    let mut entities: Vec<ResolvedEntity> = Vec::new();
    for m in mentions {
        if m.pronoun {
            // Attach to the most recent person entity, else most recent any;
            // unattachable pronouns (no antecedent) are dropped.
            let target = entities
                .iter()
                .rposition(|e| e.class == "person")
                .or_else(|| entities.len().checked_sub(1));
            if let Some(i) = target {
                entities[i].mentions.push(m);
            }
            continue;
        }
        let key_tokens = name_tokens(&m.surface);
        let found = entities.iter_mut().find(|e| {
            let etoks = name_tokens(&e.canonical);
            // Alias rule: token sets overlap ("Taylor" ⊂ "Taylor Swift";
            // "Mrs. Swift" shares "swift").
            key_tokens.iter().any(|t| etoks.contains(t))
        });
        match found {
            Some(e) => {
                // Keep the longest surface form as canonical.
                if name_tokens(&m.surface).len() > name_tokens(&e.canonical).len() {
                    e.canonical = strip_honorific(&m.surface);
                }
                e.mentions.push(m);
            }
            None => {
                let canonical = strip_honorific(&m.surface);
                let class = kb.entity_class(&canonical).unwrap_or("thing").to_string();
                entities.push(ResolvedEntity {
                    id: entities.len(),
                    canonical,
                    class,
                    mentions: vec![m],
                });
            }
        }
    }
    entities
}

fn strip_honorific(s: &str) -> String {
    let mut out = s.to_string();
    for h in HONORIFICS {
        if let Some(rest) = out.strip_prefix(h) {
            out = rest.trim_start().to_string();
        }
    }
    out
}

fn name_tokens(s: &str) -> Vec<String> {
    s.split_whitespace()
        .map(|t| {
            t.trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase()
        })
        .filter(|t| {
            !t.is_empty()
                && !HONORIFICS
                    .iter()
                    .any(|h| h.trim_end_matches('.').eq_ignore_ascii_case(t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_media::split_sentences;

    fn run(text: &str) -> Vec<ResolvedEntity> {
        let kb = KnowledgeBase::new();
        let sentences = split_sentences(text);
        resolve_entities(extract_mentions(&sentences), &kb)
    }

    #[test]
    fn paper_example_taylor_swift_resolves_to_one_entity() {
        // §3: "Taylor" and "Mrs. Swift" have different mids but the same eid.
        let ents = run("Taylor Swift released an album. Later Mrs. Swift toured. She sang.");
        let taylor: Vec<_> = ents
            .iter()
            .filter(|e| e.canonical.to_lowercase().contains("swift"))
            .collect();
        assert_eq!(taylor.len(), 1, "expected one Swift entity, got {ents:?}");
        let e = taylor[0];
        assert_eq!(e.class, "person");
        // Full name + alias + pronoun = 3 mentions.
        assert!(e.mentions.len() >= 3, "mentions: {:?}", e.mentions);
        assert_eq!(e.canonical, "Taylor Swift");
    }

    #[test]
    fn director_relationship_entities_exist() {
        let ents = run("Irwin Winkler directed Guilty by Suspicion in Hollywood.");
        let names: Vec<_> = ents.iter().map(|e| e.canonical.as_str()).collect();
        assert!(names.contains(&"Irwin Winkler"));
        assert!(names.iter().any(|n| n.contains("Guilty")));
        assert!(names.contains(&"Hollywood"));
        let winkler = ents
            .iter()
            .find(|e| e.canonical == "Irwin Winkler")
            .unwrap();
        assert_eq!(winkler.class, "person");
    }

    #[test]
    fn mention_spans_index_into_document() {
        let text = "Taylor Swift sang. Mrs. Swift bowed.";
        let sentences = split_sentences(text);
        let mentions = extract_mentions(&sentences);
        for m in &mentions {
            assert_eq!(&text[m.span1..m.span2], m.surface, "span mismatch");
        }
    }

    #[test]
    fn sentence_initial_stopwords_are_not_entities() {
        let ents = run("The dog fell into a pool. It swam.");
        assert!(
            !ents.iter().any(|e| e.canonical == "The"),
            "stopword leaked: {ents:?}"
        );
    }

    #[test]
    fn unattached_pronouns_are_dropped() {
        let ents = run("she walked away.");
        assert!(ents.is_empty());
    }

    #[test]
    fn distinct_people_stay_distinct() {
        let ents = run("Robert De Niro met Annette Bening.");
        let people: Vec<_> = ents.iter().filter(|e| e.class == "person").collect();
        assert_eq!(people.len(), 2, "{ents:?}");
    }
}
