//! The simulator's knowledge base.
//!
//! A hosted LLM carries world knowledge implicitly; the simulator makes it
//! explicit and inspectable: concept lexicons (shared with the embedder),
//! subjective-term detection for the clarification reviewer (§5), a
//! person/organization gazetteer for NER, and the mapping from user
//! clarifications to keyword lists (the LLM-generated keyword list of §6).

use kath_vector::Lexicon;

/// Terms whose meaning is "context dependent or user dependent" (§5); the
/// reviewer agent asks a clarification question when a query uses one.
pub const SUBJECTIVE_TERMS: [&str; 12] = [
    "exciting",
    "boring",
    "good",
    "bad",
    "interesting",
    "best",
    "worst",
    "scary",
    "funny",
    "beautiful",
    "notable",
    "memorable",
];

/// The knowledge base backing every simulated model call.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    lexicon: Lexicon,
    person_gazetteer: Vec<&'static str>,
    org_gazetteer: Vec<&'static str>,
    place_gazetteer: Vec<&'static str>,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeBase {
    /// The standard knowledge base used throughout the reproduction.
    pub fn new() -> Self {
        Self {
            lexicon: kath_vector::default_lexicon()
                .with_concept(
                    "excitement_visual",
                    [
                        "weapon",
                        "motorcycle",
                        "gun",
                        "explosion",
                        "car",
                        "helicopter",
                        "fire",
                        "crowd",
                    ],
                )
                .with_concept(
                    "boring_visual",
                    ["wall", "chair", "table", "curtain", "portrait", "text"],
                ),
            person_gazetteer: vec![
                "Taylor Swift",
                "Irwin Winkler",
                "Robert De Niro",
                "Annette Bening",
                "Michael Keaton",
                "David Merrill",
            ],
            org_gazetteer: vec!["Warner Bros", "HUAC", "Universal Pictures"],
            place_gazetteer: vec!["Hollywood", "New York", "Seattle", "Los Angeles"],
        }
    }

    /// The concept lexicon (shared with the text embedder).
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Whether `term` is subjective/ambiguous.
    pub fn is_subjective(&self, term: &str) -> bool {
        let t = term.to_lowercase();
        SUBJECTIVE_TERMS.iter().any(|s| *s == t)
    }

    /// The subjective terms appearing in `text`, in order of appearance.
    pub fn subjective_terms_in(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for token in text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
        {
            let t = token.to_lowercase();
            if self.is_subjective(&t) && !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// Generates the keyword list for a clarified concept (the
    /// "LLM-generated keyword list" of §6). The user's clarification text is
    /// matched against concepts; matching concepts contribute their terms.
    pub fn keywords_for(&self, clarification: &str) -> Vec<String> {
        let text = clarification.to_lowercase();
        let mut out: Vec<String> = Vec::new();
        // Cue words that route to concepts, mimicking how an LLM expands
        // "scenes that are uncommon in real life" into violence/danger terms.
        let routes: [(&[&str], &[&str]); 4] = [
            (
                &[
                    "uncommon", "unusual", "intense", "action", "thrill", "danger",
                ],
                &["violence", "danger"],
            ),
            (&["violent", "crime", "gun", "murder"], &["violence"]),
            (&["romance", "romantic", "love"], &["romance"]),
            (&["calm", "quiet", "slow", "peaceful"], &["calm"]),
        ];
        for (cues, concepts) in routes {
            if cues.iter().any(|c| text.contains(c)) {
                for concept in concepts {
                    if let Some(terms) = self.lexicon.terms_of(concept) {
                        for t in terms {
                            if !out.contains(t) {
                                out.push(t.clone());
                            }
                        }
                    }
                }
            }
        }
        // Always include literal content words from the clarification that
        // are known lexicon terms.
        for token in text.split(|c: char| !c.is_alphanumeric()) {
            if !token.is_empty()
                && self.lexicon.concept_of(token).is_some()
                && !out.contains(&token.to_string())
            {
                out.push(token.to_string());
            }
        }
        if out.is_empty() {
            // Fallback: the LLM would still produce something — the default
            // excitement set.
            for concept in ["violence", "danger"] {
                if let Some(terms) = self.lexicon.terms_of(concept) {
                    out.extend(terms.iter().cloned());
                }
            }
        }
        out
    }

    /// Gazetteer class for an entity surface form, if known.
    pub fn entity_class(&self, surface: &str) -> Option<&'static str> {
        let s = surface.trim();
        let matches = |list: &[&'static str]| {
            list.iter().any(|g| {
                g.eq_ignore_ascii_case(s)
                    || g.split_whitespace()
                        .any(|part| part.eq_ignore_ascii_case(s))
            })
        };
        if matches(&self.person_gazetteer) {
            Some("person")
        } else if matches(&self.org_gazetteer) {
            Some("organization")
        } else if matches(&self.place_gazetteer) {
            Some("place")
        } else {
            None
        }
    }

    /// Object classes an LLM associates with excitement in posters (the list
    /// "generated by the LLM" in §1: weapons, motorcycles, …).
    pub fn exciting_object_classes(&self) -> Vec<String> {
        self.lexicon
            .terms_of("excitement_visual")
            .map(|t| t.to_vec())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjective_detection() {
        let kb = KnowledgeBase::new();
        assert!(kb.is_subjective("exciting"));
        assert!(kb.is_subjective("Boring"));
        assert!(!kb.is_subjective("year"));
        let found = kb.subjective_terms_in(
            "Sort the films by how exciting they are, but the poster should be 'boring'",
        );
        assert_eq!(found, vec!["exciting".to_string(), "boring".to_string()]);
    }

    #[test]
    fn keywords_for_uncommon_scenes_cover_violence_and_danger() {
        let kb = KnowledgeBase::new();
        // The exact user reply simulated in §6.
        let kws = kb.keywords_for("The movie plot contains scenes that are uncommon in real life");
        assert!(kws.contains(&"gun".to_string()));
        assert!(kws.contains(&"murder".to_string()));
        assert!(kws.contains(&"jump".to_string()));
        assert!(!kws.contains(&"tea".to_string()));
    }

    #[test]
    fn keywords_fallback_is_nonempty() {
        let kb = KnowledgeBase::new();
        assert!(!kb.keywords_for("something entirely unrelated").is_empty());
    }

    #[test]
    fn gazetteer_classes() {
        let kb = KnowledgeBase::new();
        assert_eq!(kb.entity_class("Irwin Winkler"), Some("person"));
        assert_eq!(kb.entity_class("Hollywood"), Some("place"));
        assert_eq!(kb.entity_class("HUAC"), Some("organization"));
        assert_eq!(kb.entity_class("Zzyzx"), None);
        // Partial-name match (a mention like "Swift").
        assert_eq!(kb.entity_class("Swift"), Some("person"));
    }

    #[test]
    fn exciting_object_classes_contain_paper_examples() {
        let kb = KnowledgeBase::new();
        let classes = kb.exciting_object_classes();
        // "e.g., weapons, motorcycles" (§1).
        assert!(classes.contains(&"weapon".to_string()));
        assert!(classes.contains(&"motorcycle".to_string()));
    }
}
