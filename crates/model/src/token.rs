//! Token accounting for simulated foundation-model calls.
//!
//! The paper's optimizer trades "query accuracy and token cost subject to
//! constraints" (§1). Real dollars are replaced by a deterministic meter:
//! tokens ≈ words × 4/3, charged per call, shared between all agents of one
//! query so the cost model sees a single budget.

use parking_lot::Mutex;
use std::sync::Arc;

/// Cumulative token usage, cheaply cloneable and shared across agents.
#[derive(Debug, Clone, Default)]
pub struct TokenMeter {
    inner: Arc<Mutex<Usage>>,
}

/// A usage snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Tokens sent as prompts.
    pub prompt_tokens: u64,
    /// Tokens generated.
    pub completion_tokens: u64,
    /// Number of model invocations.
    pub calls: u64,
}

impl Usage {
    /// Total tokens in both directions.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Approximate token count of a text (≈ 4/3 per whitespace word, the usual
/// English rule of thumb).
pub fn approx_tokens(text: &str) -> u64 {
    let words = text.split_whitespace().count() as u64;
    words + words / 3
}

impl TokenMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one model call with the given prompt/completion texts.
    pub fn charge(&self, prompt: &str, completion: &str) {
        let mut u = self.inner.lock();
        u.prompt_tokens += approx_tokens(prompt);
        u.completion_tokens += approx_tokens(completion);
        u.calls += 1;
    }

    /// Charges raw token counts (used by vision calls where the "prompt" is
    /// an image: flat per-image cost).
    pub fn charge_raw(&self, prompt_tokens: u64, completion_tokens: u64) {
        let mut u = self.inner.lock();
        u.prompt_tokens += prompt_tokens;
        u.completion_tokens += completion_tokens;
        u.calls += 1;
    }

    /// Current snapshot.
    pub fn usage(&self) -> Usage {
        *self.inner.lock()
    }

    /// Resets to zero (between benchmark runs).
    pub fn reset(&self) {
        *self.inner.lock() = Usage::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_is_shared() {
        let m = TokenMeter::new();
        let m2 = m.clone();
        m.charge("four words in prompt", "two words");
        m2.charge_raw(100, 10);
        let u = m.usage();
        assert_eq!(u.calls, 2);
        assert_eq!(u.prompt_tokens, (4 + 4 / 3) + 100);
        assert_eq!(u.completion_tokens, 2 + 10);
    }

    #[test]
    fn approx_tokens_rule() {
        assert_eq!(approx_tokens(""), 0);
        assert_eq!(approx_tokens("one two three"), 4); // 3 + 1
        assert_eq!(approx_tokens("w1 w2 w3 w4 w5 w6"), 8); // 6 + 2
    }

    #[test]
    fn reset_zeroes() {
        let m = TokenMeter::new();
        m.charge_raw(5, 5);
        m.reset();
        assert_eq!(m.usage(), Usage::default());
    }

    #[test]
    fn total_sums_directions() {
        let u = Usage {
            prompt_tokens: 7,
            completion_tokens: 3,
            calls: 1,
        };
        assert_eq!(u.total(), 10);
    }
}
