//! Human-AI interaction channels.
//!
//! KathDB's defining feature is that "user-system interaction does not have
//! to be limited to a query-result pair: it can be iterative" (§1). Every
//! stage — parsing, execution, explanation — talks to the user through a
//! [`UserChannel`]. The paper's own evaluation *simulates* the user's
//! replies (§6); [`ScriptedChannel`] reproduces exactly that, and
//! [`TranscriptChannel`] records the dialogue for Fig. 4-style rendering.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A bidirectional channel to the human in the loop.
pub trait UserChannel: Send + Sync {
    /// Asks the user a question and returns their reply.
    fn ask(&self, question: &str) -> String;

    /// Shows the user a message that needs no reply.
    fn notify(&self, message: &str);
}

/// A channel with pre-scripted replies (the paper's §6 setup). When the
/// script runs out, it answers `"OK"` — the explicit go-ahead the reactive
/// correction loop waits for (§5).
#[derive(Debug, Default)]
pub struct ScriptedChannel {
    replies: Mutex<VecDeque<String>>,
    log: Mutex<Vec<(String, String)>>,
}

impl ScriptedChannel {
    /// Builds a channel that will answer with `replies`, in order.
    pub fn new<S: Into<String>>(replies: impl IntoIterator<Item = S>) -> Arc<Self> {
        Arc::new(Self {
            replies: Mutex::new(replies.into_iter().map(Into::into).collect()),
            log: Mutex::new(Vec::new()),
        })
    }

    /// The `(question, reply)` transcript so far.
    pub fn transcript(&self) -> Vec<(String, String)> {
        self.log.lock().clone()
    }

    /// Notifications shown so far (question field, empty reply).
    pub fn remaining(&self) -> usize {
        self.replies.lock().len()
    }
}

impl UserChannel for ScriptedChannel {
    fn ask(&self, question: &str) -> String {
        let reply = self
            .replies
            .lock()
            .pop_front()
            .unwrap_or_else(|| "OK".to_string());
        self.log.lock().push((question.to_string(), reply.clone()));
        reply
    }

    fn notify(&self, message: &str) {
        self.log.lock().push((message.to_string(), String::new()));
    }
}

/// A channel backed by the process's stdin/stdout: the real interactive
/// mode (used by the `kathdb-repl` binary). Questions print to stdout and
/// replies are read line by line.
#[derive(Debug, Default)]
pub struct StdioChannel;

impl UserChannel for StdioChannel {
    fn ask(&self, question: &str) -> String {
        use std::io::{BufRead, Write};
        println!("{question}");
        print!("> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match std::io::stdin().lock().read_line(&mut line) {
            Ok(n) if n > 0 => line.trim().to_string(),
            // EOF or error: behave like the silent channel so piped runs
            // terminate cleanly.
            _ => "OK".to_string(),
        }
    }

    fn notify(&self, message: &str) {
        println!("{message}");
    }
}

/// A channel that always answers `"OK"` (fully autonomous runs/benches).
#[derive(Debug, Default)]
pub struct SilentChannel;

impl UserChannel for SilentChannel {
    fn ask(&self, _question: &str) -> String {
        "OK".to_string()
    }

    fn notify(&self, _message: &str) {}
}

/// Wraps any channel and records the dialogue (for Fig. 4 rendering).
pub struct TranscriptChannel<C: UserChannel> {
    inner: C,
    log: Mutex<Vec<TranscriptTurn>>,
}

/// One turn of the recorded dialogue.
#[derive(Debug, Clone, PartialEq)]
pub enum TranscriptTurn {
    /// System asked, user replied.
    Exchange {
        /// The system's question.
        question: String,
        /// The user's reply.
        reply: String,
    },
    /// System showed a message.
    Notice(String),
}

impl<C: UserChannel> TranscriptChannel<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            log: Mutex::new(Vec::new()),
        }
    }

    /// The recorded turns.
    pub fn turns(&self) -> Vec<TranscriptTurn> {
        self.log.lock().clone()
    }
}

impl<C: UserChannel> UserChannel for TranscriptChannel<C> {
    fn ask(&self, question: &str) -> String {
        let reply = self.inner.ask(question);
        self.log.lock().push(TranscriptTurn::Exchange {
            question: question.to_string(),
            reply: reply.clone(),
        });
        reply
    }

    fn notify(&self, message: &str) {
        self.inner.notify(message);
        self.log
            .lock()
            .push(TranscriptTurn::Notice(message.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_channel_replays_then_says_ok() {
        let ch = ScriptedChannel::new(["first answer", "second"]);
        assert_eq!(ch.ask("q1"), "first answer");
        assert_eq!(ch.ask("q2"), "second");
        assert_eq!(ch.ask("q3"), "OK");
        assert_eq!(ch.remaining(), 0);
        let t = ch.transcript();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], ("q1".to_string(), "first answer".to_string()));
    }

    #[test]
    fn stdio_channel_notify_does_not_panic() {
        StdioChannel.notify("notice");
    }

    #[test]
    fn silent_channel_always_agrees() {
        let ch = SilentChannel;
        assert_eq!(ch.ask("anything?"), "OK");
        ch.notify("noted");
    }

    #[test]
    fn transcript_channel_records_both_kinds() {
        let ch = TranscriptChannel::new(SilentChannel);
        ch.notify("starting");
        let _ = ch.ask("proceed?");
        let turns = ch.turns();
        assert_eq!(turns.len(), 2);
        assert!(matches!(&turns[0], TranscriptTurn::Notice(m) if m == "starting"));
        assert!(matches!(&turns[1], TranscriptTurn::Exchange { reply, .. } if reply == "OK"));
    }
}
