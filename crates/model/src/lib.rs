//! Simulated foundation models for KathDB.
//!
//! The paper invokes GPT-4o and vision models for parsing, keyword
//! generation, view population, critique, and repair. Per the reproduction
//! rules (DESIGN.md §1), this crate provides deterministic, seeded
//! simulators with an explicit knowledge base, plus per-call token
//! accounting so the optimizer's cost model has a realistic signal:
//!
//! - [`SimLlm`]: ambiguity review, keyword lists, concept scoring,
//!   monotonicity critique, exception diagnosis, anomaly explanation.
//! - [`SimVlm`] / [`SimOcr`] / [`VlmCascade`]: the alternative physical
//!   implementations of image analysis operators (§4).
//! - [`ner`]: rule-based entity extraction + coreference used to populate
//!   the text semantic graph (Table 2).

#![warn(missing_docs)]

mod channel;
mod knowledge;
mod llm;
pub mod ner;
mod token;
mod vision;

pub use channel::{
    ScriptedChannel, SilentChannel, StdioChannel, TranscriptChannel, TranscriptTurn, UserChannel,
};
pub use knowledge::{KnowledgeBase, SUBJECTIVE_TERMS};
pub use llm::{Clarification, FaultPlan, SimLlm, Verdict};
pub use token::{approx_tokens, TokenMeter, Usage};
pub use vision::{Detection, SimOcr, SimVlm, VlmCascade};
