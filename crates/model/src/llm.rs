//! The simulated language model (`SimLlm`).
//!
//! Replaces GPT-4o in every role the paper uses it for: ambiguity review,
//! keyword generation, text scoring, semantic critique, and repair hints.
//! All outputs are deterministic functions of the inputs and the seed; an
//! optional *fault plan* injects the systematic mistakes (e.g. a reversed
//! scoring direction) the critic/repair loops must catch (§4, §5).

use crate::{KnowledgeBase, TokenMeter};
use kath_vector::{cosine, fnv1a, TextEmbedder};

/// A clarification question raised by the reviewer agent (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct Clarification {
    /// The ambiguous/subjective term.
    pub term: String,
    /// The focused question shown to the user.
    pub question: String,
}

/// A critic verdict about a function's outputs (§4).
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Output plausibly matches the node description.
    Plausible,
    /// Output contradicts the description; hint tells the coder what to fix.
    Mismatch {
        /// Corrective hint returned to the coder.
        hint: String,
    },
}

/// Deliberate model faults, injectable for tests and benches.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Generate score functions with the direction reversed (the paper's
    /// example: recency scoring that favours *older* movies, §4).
    pub reversed_scores: bool,
    /// Assume one-to-one media↔row correspondence in joins (the paper's
    /// semantic-anomaly example, §5).
    pub assume_one_to_one: bool,
}

/// The simulated LLM.
#[derive(Debug, Clone)]
pub struct SimLlm {
    kb: KnowledgeBase,
    embedder: TextEmbedder,
    meter: TokenMeter,
    seed: u64,
    /// Injected systematic faults.
    pub faults: FaultPlan,
}

impl SimLlm {
    /// Builds a model over the standard knowledge base.
    pub fn new(seed: u64, meter: TokenMeter) -> Self {
        let kb = KnowledgeBase::new();
        let embedder = TextEmbedder::new(kb.lexicon().clone(), seed);
        Self {
            kb,
            embedder,
            meter,
            seed,
            faults: FaultPlan::default(),
        }
    }

    /// The knowledge base.
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The shared token meter.
    pub fn meter(&self) -> &TokenMeter {
        &self.meter
    }

    /// The text embedder (same lexicon as the knowledge base).
    pub fn embedder(&self) -> &TextEmbedder {
        &self.embedder
    }

    /// Seed (used to derive per-call determinism).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Reviewer-agent pass: "Look for ambiguous terms or subjective words…"
    /// (§5). Returns a focused question for the *first* unresolved
    /// subjective term, or `None` when the query maps to a single
    /// interpretation. `resolved` lists terms the user already clarified.
    pub fn detect_ambiguity(&self, query: &str, resolved: &[String]) -> Option<Clarification> {
        let found = self
            .kb
            .subjective_terms_in(query)
            .into_iter()
            .find(|t| !resolved.contains(t));
        let out = found.map(|term| {
            let question = format!("What does '{term}' mean in this context?");
            Clarification { term, question }
        });
        let completion = out
            .as_ref()
            .map(|c| c.question.clone())
            .unwrap_or_else(|| "no ambiguity detected".to_string());
        self.meter.charge(query, &completion);
        out
    }

    /// Expands a clarified concept into a keyword list (§6 step 4's
    /// "LLM generates the keyword list here").
    pub fn generate_keywords(&self, clarification: &str) -> Vec<String> {
        let kws = self.kb.keywords_for(clarification);
        self.meter.charge(clarification, &kws.join(" "));
        kws
    }

    /// Scores how strongly `text` evokes the concept captured by `keywords`
    /// using embedding similarity, in `[0,1]`. This is the body of
    /// `gen_excitement_score` (§6 step 4): embed keywords, embed text
    /// entities, aggregate similarity.
    pub fn concept_score(&self, text: &str, keywords: &[String]) -> f64 {
        if keywords.is_empty() || text.trim().is_empty() {
            self.meter.charge(text, "0");
            return 0.0;
        }
        let kw_vecs: Vec<_> = keywords.iter().map(|k| self.embedder.embed(k)).collect();
        // Per-sentence max similarity, averaged with a soft-max emphasis on
        // the strongest scenes, then squashed to [0,1].
        let sentences: Vec<&str> = text
            .split(['.', '!', '?'])
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let mut best: f64 = 0.0;
        let mut sum: f64 = 0.0;
        let mut n = 0usize;
        for s in &sentences {
            let sv = self.embedder.embed(s);
            let m = kw_vecs
                .iter()
                .map(|kv| cosine(&sv, kv) as f64)
                .fold(0.0f64, f64::max);
            best = best.max(m);
            sum += m;
            n += 1;
        }
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        // 0.7·peak + 0.3·mean, clamped. Peaks matter: one gunfight makes a
        // plot exciting even if the rest is quiet.
        let score = (0.7 * best + 0.3 * mean).clamp(0.0, 1.0);
        self.meter.charge(text, "score");
        score
    }

    /// Critic pass over a score column (§4): checks that the produced scores
    /// run in the direction the description asks for. `samples` are
    /// `(feature, score)` pairs, e.g. `(release_year, recency_score)`.
    pub fn critique_monotonic(&self, description: &str, samples: &[(f64, f64)]) -> Verdict {
        self.meter.charge(description, "verdict");
        if samples.len() < 2 {
            return Verdict::Plausible;
        }
        // Kendall-style concordance between feature and score.
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len() {
                let df = samples[i].0 - samples[j].0;
                let ds = samples[i].1 - samples[j].1;
                if df == 0.0 || ds == 0.0 {
                    continue;
                }
                if (df > 0.0) == (ds > 0.0) {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
        let wants_increasing = !description.to_lowercase().contains("older")
            && !description.to_lowercase().contains("reverse");
        let increasing = concordant >= discordant;
        if increasing == wants_increasing {
            Verdict::Plausible
        } else {
            Verdict::Mismatch {
                hint: format!(
                    "scores run in the wrong direction for '{}': flip the scoring \
                     so that larger inputs get {} scores",
                    description.trim(),
                    if wants_increasing {
                        "larger"
                    } else {
                        "smaller"
                    }
                ),
            }
        }
    }

    /// Diagnoses a runtime exception and proposes a repair action (the
    /// reviewer half of the two-agent repair loop, §5). Deterministic
    /// pattern match over the stack-trace text, as an LLM prompt would be.
    pub fn diagnose_exception(&self, error_text: &str) -> String {
        self.meter.charge(error_text, "diagnosis");
        let lower = error_text.to_lowercase();
        if lower.contains("unsupported file format") || lower.contains("heic") {
            "input media is in an unsupported container format; add a conversion \
             step to a cv2-compatible format before decoding"
                .to_string()
        } else if lower.contains("division by zero") {
            "guard the denominator against zero before dividing".to_string()
        } else if lower.contains("unknown column") {
            "the function references a column missing from its input schema; \
             re-read the catalog schema and fix the column name"
                .to_string()
        } else {
            format!("inspect and handle: {error_text}")
        }
    }

    /// Explains a likely cause for a semantic anomaly (§5's example: a
    /// similarity join matching one poster to several movies).
    pub fn explain_anomaly(&self, anomaly: &str) -> String {
        self.meter.charge(anomaly, "explanation");
        if anomaly.contains("multiple") || anomaly.contains("fan-out") {
            "the model may have implicitly assumed a one-to-one correspondence \
             between poster images and tuples in the movie table, an assumption \
             that does not hold in practice and produces spurious matches"
                .to_string()
        } else {
            format!("possible mismatch with user intent: {anomaly}")
        }
    }

    /// Deterministic pseudo-randomness derived from the seed and a context
    /// string; lets callers add reproducible noise.
    pub fn noise(&self, context: &str) -> f64 {
        let h = fnv1a(context.as_bytes()) ^ self.seed;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llm() -> SimLlm {
        SimLlm::new(42, TokenMeter::new())
    }

    #[test]
    fn detects_the_papers_ambiguity_and_respects_resolutions() {
        let m = llm();
        let q = "Sort the given films in the table by how exciting they are, \
                 but the poster should be 'boring'";
        let c = m.detect_ambiguity(q, &[]).unwrap();
        assert_eq!(c.term, "exciting");
        assert_eq!(c.question, "What does 'exciting' mean in this context?");
        // After resolving "exciting", the next subjective term surfaces.
        let c2 = m.detect_ambiguity(q, &["exciting".into()]).unwrap();
        assert_eq!(c2.term, "boring");
        assert!(m
            .detect_ambiguity(q, &["exciting".into(), "boring".into()])
            .is_none());
        // Unambiguous queries pass through.
        assert!(m.detect_ambiguity("sort films by year", &[]).is_none());
    }

    #[test]
    fn concept_score_separates_exciting_from_calm_plots() {
        let m = llm();
        let kws = m.generate_keywords("scenes that are uncommon in real life");
        let exciting = m.concept_score("A man jumped off a plane during a gun fight.", &kws);
        let calm = m.concept_score("They drank tea in a quiet garden.", &kws);
        assert!(
            exciting > calm + 0.2,
            "exciting={exciting} calm={calm} kws={kws:?}"
        );
        assert!((0.0..=1.0).contains(&exciting));
    }

    #[test]
    fn concept_score_edge_cases() {
        let m = llm();
        assert_eq!(m.concept_score("", &["gun".into()]), 0.0);
        assert_eq!(m.concept_score("anything", &[]), 0.0);
    }

    #[test]
    fn critic_catches_reversed_recency() {
        let m = llm();
        // Newer year should get higher score; these are reversed.
        let samples = [(1975.0, 0.9), (1988.0, 0.5), (1991.0, 0.1)];
        let v = m.critique_monotonic("assign a recency score based on release year", &samples);
        assert!(matches!(v, Verdict::Mismatch { .. }));
        let good = [(1975.0, 0.1), (1988.0, 0.5), (1991.0, 0.9)];
        assert_eq!(
            m.critique_monotonic("assign a recency score based on release year", &good),
            Verdict::Plausible
        );
    }

    #[test]
    fn critic_is_lenient_on_tiny_samples() {
        let m = llm();
        assert_eq!(
            m.critique_monotonic("recency", &[(1991.0, 0.1)]),
            Verdict::Plausible
        );
    }

    #[test]
    fn diagnosis_matches_paper_heic_example() {
        let m = llm();
        let d = m.diagnose_exception("unsupported file format: heic");
        assert!(d.contains("conversion"));
        let d2 = m.diagnose_exception("expression error: division by zero");
        assert!(d2.contains("denominator"));
    }

    #[test]
    fn anomaly_explanation_mentions_one_to_one_assumption() {
        let m = llm();
        let e = m.explain_anomaly("one poster image matched multiple movie rows (fan-out)");
        assert!(e.contains("one-to-one"));
    }

    #[test]
    fn token_meter_is_charged() {
        let meter = TokenMeter::new();
        let m = SimLlm::new(1, meter.clone());
        let _ = m.detect_ambiguity("an exciting query", &[]);
        let _ = m.generate_keywords("violent crime");
        assert_eq!(meter.usage().calls, 2);
        assert!(meter.usage().total() > 0);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let m = llm();
        assert_eq!(m.noise("ctx"), m.noise("ctx"));
        assert_ne!(m.noise("a"), m.noise("b"));
        assert!((0.0..1.0).contains(&m.noise("x")));
    }
}
