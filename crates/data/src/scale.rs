//! Parameterised corpus generation for benchmarks.
//!
//! Scales the MMQA-like shape to arbitrary sizes with seeded randomness:
//! controllable fractions of exciting plots, boring posters, and
//! unsupported-format (HEIC) posters for fault-injection benches.

use crate::{MmqaCorpus, MovieTruth};
use kath_media::{BBox, Color, Document, Image, ImageObject, MediaFormat};
use kath_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of movies.
    pub movies: usize,
    /// Fraction with exciting plots.
    pub exciting_fraction: f64,
    /// Fraction with boring posters.
    pub boring_fraction: f64,
    /// Fraction of posters stored as HEIC (triggers the repair loop).
    pub heic_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self {
            movies: 100,
            exciting_fraction: 0.5,
            boring_fraction: 0.5,
            heic_fraction: 0.0,
            seed: 7,
        }
    }
}

const EXCITING_SENTENCES: [&str; 6] = [
    "A gun fight erupts at the docks and a murder follows.",
    "A man jumped off a plane to escape the attack.",
    "An explosion tears through the bridge during the chase.",
    "A knife flashes and a threat of death hangs over the crew.",
    "The motorcycle crash nearly kills the lead in the storm.",
    "They fight through fire to escape the collapsing cliff.",
];

const CALM_SENTENCES: [&str; 6] = [
    "A calm morning of tea in the quiet garden.",
    "A peaceful walk through the ordinary town.",
    "Routine days pass gently with plain dinners.",
    "Letters are written over a quiet, mundane summer.",
    "Neighbours share a peaceful afternoon walk.",
    "An ordinary week ends with tea and a calm evening.",
];

const TITLE_A: [&str; 8] = [
    "Night", "Quiet", "Harbor", "Silver", "Broken", "Golden", "Distant", "Last",
];
const TITLE_B: [&str; 8] = [
    "Chase", "Days", "Story", "Letters", "Bridge", "Summer", "Signal", "Witness",
];

/// Generates a corpus per `spec`. Deterministic for a fixed spec.
pub fn generate_corpus(spec: &CorpusSpec) -> MmqaCorpus {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut movies = Table::new("movie_table", crate::mmqa::movie_schema());
    let mut documents = Vec::with_capacity(spec.movies);
    let mut images = Vec::with_capacity(spec.movies);
    let mut truth = Vec::with_capacity(spec.movies);

    for i in 0..spec.movies {
        let id = i as i64 + 1;
        let exciting = rng.gen::<f64>() < spec.exciting_fraction;
        let boring = rng.gen::<f64>() < spec.boring_fraction;
        let heic = rng.gen::<f64>() < spec.heic_fraction;
        let year = 1960 + rng.gen_range(0..65) as i64;
        let title = format!(
            "{} {} {}",
            TITLE_A[rng.gen_range(0..TITLE_A.len())],
            TITLE_B[rng.gen_range(0..TITLE_B.len())],
            id
        );

        // Plot: 3 sentences drawn from the matching pool (with one
        // contrasting sentence 20% of the time, so scores are not binary).
        let pool: &[&str] = if exciting {
            &EXCITING_SENTENCES
        } else {
            &CALM_SENTENCES
        };
        let other: &[&str] = if exciting {
            &CALM_SENTENCES
        } else {
            &EXCITING_SENTENCES
        };
        let mut plot = String::new();
        for s in 0..3 {
            let from = if s == 2 && rng.gen::<f64>() < 0.2 {
                other
            } else {
                pool
            };
            plot.push_str(from[rng.gen_range(0..from.len())]);
            plot.push(' ');
        }
        documents.push(Document::new(format!("doc://plot/{id}"), plot.trim()).with_title(&title));

        // Poster.
        let format = if heic {
            MediaFormat::Heic
        } else {
            MediaFormat::Png
        };
        let uri = format!("file://posters/{id}.{}", format.extension());
        let image = if boring {
            Image::new(uri, format)
                .with_color(Color::rgb(
                    100 + rng.gen_range(0..30),
                    100 + rng.gen_range(0..30),
                    100 + rng.gen_range(0..30),
                ))
                .with_object(
                    ImageObject::new("portrait", BBox::new(0.3, 0.2, 0.7, 0.8))
                        .with_saliency(0.2 + rng.gen::<f64>() * 0.15),
                )
        } else {
            let mut img = Image::new(uri, format)
                .with_color(Color::rgb(
                    200 + rng.gen_range(0..55),
                    rng.gen_range(0..60),
                    30,
                ))
                .with_color(Color::rgb(20, 40, 200 + rng.gen_range(0..55)))
                .with_object(ImageObject::new("person", BBox::new(0.05, 0.1, 0.45, 0.95)));
            for (cls, n) in [("weapon", 1), ("motorcycle", 1), ("explosion", 1)] {
                for _ in 0..n {
                    let x = rng.gen::<f64>() * 0.5;
                    let y = rng.gen::<f64>() * 0.5;
                    img = img.with_object(ImageObject::new(cls, BBox::new(x, y, x + 0.3, y + 0.3)));
                }
            }
            img
        };
        images.push(image);

        movies
            .push(vec![
                id.into(),
                title.clone().into(),
                year.into(),
                id.into(),
                id.into(),
            ])
            .expect("generated rows are schema-valid");
        truth.push(MovieTruth {
            id,
            title,
            exciting_plot: exciting,
            boring_poster: boring,
        });
    }

    MmqaCorpus {
        movies,
        documents,
        images,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec {
            movies: 20,
            ..Default::default()
        };
        let a = generate_corpus(&spec);
        let b = generate_corpus(&spec);
        assert_eq!(a.movies, b.movies);
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.images, b.images);
    }

    #[test]
    fn fractions_are_respected_roughly() {
        let spec = CorpusSpec {
            movies: 400,
            exciting_fraction: 0.3,
            boring_fraction: 0.7,
            heic_fraction: 0.1,
            seed: 11,
        };
        let c = generate_corpus(&spec);
        let exciting = c.truth.iter().filter(|t| t.exciting_plot).count() as f64 / 400.0;
        let boring = c.truth.iter().filter(|t| t.boring_poster).count() as f64 / 400.0;
        let heic = c
            .images
            .iter()
            .filter(|i| i.format == MediaFormat::Heic)
            .count() as f64
            / 400.0;
        assert!((exciting - 0.3).abs() < 0.08, "exciting={exciting}");
        assert!((boring - 0.7).abs() < 0.08, "boring={boring}");
        assert!((heic - 0.1).abs() < 0.05, "heic={heic}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(&CorpusSpec {
            seed: 1,
            movies: 10,
            ..Default::default()
        });
        let b = generate_corpus(&CorpusSpec {
            seed: 2,
            movies: 10,
            ..Default::default()
        });
        assert_ne!(a.documents, b.documents);
    }

    #[test]
    fn plots_match_truth_labels() {
        let c = generate_corpus(&CorpusSpec {
            movies: 50,
            ..Default::default()
        });
        for (doc, t) in c.documents.iter().zip(&c.truth) {
            // At least the first sentence comes from the matching pool.
            let first_exciting = EXCITING_SENTENCES.iter().any(|s| doc.text.starts_with(s));
            assert_eq!(first_exciting, t.exciting_plot, "{}", t.title);
        }
    }
}
