//! Synthetic MMQA-like corpora for KathDB.
//!
//! The paper evaluates on MMQA (tables, texts, and images crawled from
//! Wikipedia, §6). That crawl is not redistributable, so this crate
//! generates a synthetic equivalent with the same *shape*: a movie table
//! whose rows reference a plot document (`did`) and a poster image (`vid`),
//! plus planted ground truth so accuracy is measurable (something the
//! paper's qualitative evaluation could not do). The small corpus embeds
//! the paper's two result movies so Fig. 6 reproduces.

#![warn(missing_docs)]

mod mmqa;
mod scale;

pub use mmqa::{mmqa_small, MmqaCorpus, MovieTruth};
pub use scale::{generate_corpus, CorpusSpec};
