//! The small MMQA-like corpus used by the flagship query (§6, Fig. 6).

use kath_media::{BBox, Color, Document, Image, ImageObject, MediaFormat};
use kath_storage::{DataType, Schema, Table};

/// Planted ground truth for one movie.
#[derive(Debug, Clone, PartialEq)]
pub struct MovieTruth {
    /// Movie id.
    pub id: i64,
    /// Title.
    pub title: String,
    /// Whether the plot is genuinely "exciting" (uncommon scenes).
    pub exciting_plot: bool,
    /// Whether the poster is genuinely boring.
    pub boring_poster: bool,
}

/// A generated corpus: the base table, its media, and ground truth.
#[derive(Debug, Clone)]
pub struct MmqaCorpus {
    /// `movie_table(id, title, year, did, vid)` — the schema the paper's
    /// prototype assumes (§2.1: "a simple database schema containing the
    /// relevant tables and columns").
    pub movies: Table,
    /// Plot documents (`doc://plot/<did>`).
    pub documents: Vec<Document>,
    /// Poster images (`file://posters/<vid>.<ext>`).
    pub images: Vec<Image>,
    /// Ground truth labels.
    pub truth: Vec<MovieTruth>,
}

/// The movie-table schema.
pub fn movie_schema() -> Schema {
    Schema::of(&[
        ("id", DataType::Int),
        ("title", DataType::Str),
        ("year", DataType::Int),
        ("did", DataType::Int),
        ("vid", DataType::Int),
    ])
}

fn boring_poster(vid: i64) -> Image {
    Image::new(format!("file://posters/{vid}.png"), MediaFormat::Png)
        .with_color(Color::rgb(112, 112, 112))
        .with_color(Color::rgb(90, 90, 98))
        .with_object(
            ImageObject::new("portrait", BBox::new(0.3, 0.15, 0.7, 0.8)).with_saliency(0.25),
        )
        .with_object(
            ImageObject::new("text", BBox::new(0.1, 0.85, 0.9, 0.95))
                .with_saliency(0.2)
                .with_text("A FILM"),
        )
}

fn exciting_poster(vid: i64, format: MediaFormat) -> Image {
    Image::new(
        format!("file://posters/{vid}.{}", format.extension()),
        format,
    )
    .with_color(Color::rgb(235, 30, 30))
    .with_color(Color::rgb(250, 180, 20))
    .with_color(Color::rgb(20, 40, 230))
    .with_object(ImageObject::new("person", BBox::new(0.05, 0.1, 0.45, 0.95)))
    .with_object(ImageObject::new(
        "motorcycle",
        BBox::new(0.4, 0.55, 0.9, 0.95),
    ))
    .with_object(ImageObject::new("weapon", BBox::new(0.42, 0.35, 0.58, 0.5)))
    .with_object(ImageObject::new(
        "explosion",
        BBox::new(0.6, 0.05, 0.98, 0.4),
    ))
    .with_rel(0, "rides", 1)
    .with_rel(0, "holds", 2)
}

/// Builds the deterministic flagship corpus. Six movies:
///
/// | id | title | year | plot | poster |
/// |---|---|---|---|---|
/// | 1 | Guilty by Suspicion | 1991 | very exciting | boring |
/// | 2 | Clean and Sober | 1988 | exciting | boring |
/// | 3 | Quiet Days | 1975 | calm | boring |
/// | 4 | Night Chase | 1991 | exciting | vivid (filtered out) |
/// | 5 | Garden Letters | 1984 | calm | vivid (filtered out) |
/// | 6 | Harbor Story | 1990 | mild | boring |
///
/// With the paper's pipeline (excitement 0.7 + recency 0.3, keep boring
/// posters), the top two results are *Guilty by Suspicion* (1991) then
/// *Clean and Sober* (1988) — exactly Fig. 6.
pub fn mmqa_small() -> MmqaCorpus {
    let rows: Vec<(i64, &str, i64, &str, bool, bool, bool)> = vec![
        // id, title, year, plot, exciting_plot, boring_poster, heic
        (
            1,
            "Guilty by Suspicion",
            1991,
            "David Merrill returns to Hollywood under threat. A gun appears at a hearing \
             and a murder shakes the studio. Friends fear death and attack from every side; \
             he must escape the committee or kill his own career. Irwin Winkler directed \
             Guilty by Suspicion.",
            true,
            true,
            false,
        ),
        (
            2,
            "Clean and Sober",
            1988,
            "A broker flees after a theft. A fight breaks out in recovery and a threat \
             of death hangs over the clinic. He must escape his habits before the attack \
             on his life succeeds.",
            true,
            true,
            false,
        ),
        (
            3,
            "Quiet Days",
            1975,
            "A calm week in a quiet garden. Tea with neighbours, a peaceful walk, an \
             ordinary routine repeated gently every day.",
            false,
            true,
            false,
        ),
        (
            4,
            "Night Chase",
            1991,
            "A chase across the city: a motorcycle jump over the bridge, an explosion at \
             the docks, a gun fight in the rain.",
            true,
            false,
            false,
        ),
        (
            5,
            "Garden Letters",
            1984,
            "Letters between two friends about a garden, written over a calm and peaceful \
             summer of ordinary days.",
            false,
            false,
            false,
        ),
        (
            6,
            "Harbor Story",
            1990,
            "A harbor town prepares a festival. A storm threatens the pier but the day \
             ends with a quiet walk along the water.",
            false,
            true,
            false,
        ),
    ];

    let mut movies = Table::new("movie_table", movie_schema());
    let mut documents = Vec::new();
    let mut images = Vec::new();
    let mut truth = Vec::new();
    for (id, title, year, plot, exciting, boring, heic) in rows {
        movies
            .push(vec![
                id.into(),
                title.into(),
                year.into(),
                id.into(), // did
                id.into(), // vid
            ])
            .expect("static corpus rows are schema-valid");
        documents.push(Document::new(format!("doc://plot/{id}"), plot).with_title(title));
        let format = if heic {
            MediaFormat::Heic
        } else {
            MediaFormat::Png
        };
        images.push(if boring {
            boring_poster(id)
        } else {
            exciting_poster(id, format)
        });
        truth.push(MovieTruth {
            id,
            title: title.to_string(),
            exciting_plot: exciting,
            boring_poster: boring,
        });
    }
    MmqaCorpus {
        movies,
        documents,
        images,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_internally_consistent() {
        let c = mmqa_small();
        assert_eq!(c.movies.len(), 6);
        assert_eq!(c.documents.len(), 6);
        assert_eq!(c.images.len(), 6);
        assert_eq!(c.truth.len(), 6);
        // Every row's did/vid resolves to a document/image by URI convention.
        for row in c.movies.rows() {
            let did = row[3].as_int().unwrap();
            let vid = row[4].as_int().unwrap();
            assert!(c
                .documents
                .iter()
                .any(|d| d.uri == format!("doc://plot/{did}")));
            assert!(c.images.iter().any(|i| i.uri.contains(&format!("/{vid}."))));
        }
    }

    #[test]
    fn paper_movies_are_present_with_correct_years() {
        let c = mmqa_small();
        let guilty = c
            .truth
            .iter()
            .find(|t| t.title == "Guilty by Suspicion")
            .unwrap();
        assert!(guilty.exciting_plot && guilty.boring_poster);
        let idx = c
            .movies
            .find("title", &"Guilty by Suspicion".into())
            .unwrap()
            .unwrap();
        assert_eq!(c.movies.cell(idx, "year").unwrap().as_int(), Some(1991));
        let idx = c
            .movies
            .find("title", &"Clean and Sober".into())
            .unwrap()
            .unwrap();
        assert_eq!(c.movies.cell(idx, "year").unwrap().as_int(), Some(1988));
    }

    #[test]
    fn boring_and_vivid_posters_differ_visually() {
        let c = mmqa_small();
        for (img, t) in c.images.iter().zip(&c.truth) {
            if t.boring_poster {
                assert!(img.colorfulness() < 0.3, "{} should look boring", t.title);
            } else {
                assert!(img.colorfulness() > 0.5, "{} should look vivid", t.title);
            }
        }
    }
}
