//! Fixture tests for every lint pass: a seeded violation, a clean
//! variant, a test-exempt variant, and an allowlisted variant per pass,
//! asserting exact findings.

use kath_lint::baseline::Baseline;
use kath_lint::config::Config;
use kath_lint::{passes, run_on, Finding, SourceFile};

/// Runs the passes over (path, source) fixtures with a config and no
/// baseline ratchet.
fn lint(files: &[(&str, &str)], config: &str) -> Vec<Finding> {
    let config = Config::parse(config).expect("fixture config parses");
    let files: Vec<SourceFile> = files
        .iter()
        .map(|(path, text)| SourceFile::new(path, text))
        .collect();
    run_on(&files, &config, None).findings
}

fn pass_lines(findings: &[Finding], pass: &str) -> Vec<(String, u32)> {
    findings
        .iter()
        .filter(|f| f.pass == pass)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

// ───────────────────────────── io-seam ─────────────────────────────────

#[test]
fn io_seam_violation_is_detected() {
    let src = "use std::fs;\n\
               pub fn load(p: &std::path::Path) -> String {\n\
               \x20   let f = std::fs::File::open(p);\n\
               \x20   fs::read_to_string(p).unwrap()\n\
               }\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], "");
    let lines = pass_lines(&findings, passes::name::IO_SEAM);
    // Line 1 `use std::fs`, line 3 `std::fs`, line 4 `fs::`.
    assert_eq!(
        lines,
        vec![
            ("crates/x/src/a.rs".to_string(), 1),
            ("crates/x/src/a.rs".to_string(), 3),
            ("crates/x/src/a.rs".to_string(), 4),
        ]
    );
}

#[test]
fn io_seam_clean_and_seam_file_are_silent() {
    // Mentions in comments/strings don't count; io.rs itself is the seam.
    let clean = "// std::fs is banned\npub fn f() -> &'static str { \"std::fs\" }\n";
    let seam = "pub fn open() { let _ = std::fs::File::open(\"x\"); }\n";
    let findings = lint(
        &[
            ("crates/x/src/clean.rs", clean),
            ("crates/storage/src/io.rs", seam),
        ],
        "",
    );
    assert_eq!(pass_lines(&findings, passes::name::IO_SEAM), vec![]);
}

#[test]
fn io_seam_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::fs::read(\"x\"); }\n}\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], "");
    assert_eq!(pass_lines(&findings, passes::name::IO_SEAM), vec![]);
}

#[test]
fn io_seam_allowlisted_file_is_silent_and_entry_is_used() {
    let src = "pub fn f() { let _ = std::fs::read(\"x\"); }\n";
    let config = "[[allow]]\npass = \"io-seam\"\npath = \"crates/x/src/a.rs\"\n\
                  reason = \"cold-path config load\"\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], config);
    assert_eq!(
        findings,
        vec![],
        "allow suppresses the finding and is not stale"
    );
}

// ─────────────────────────── panic-ratchet ─────────────────────────────

fn ratchet(files: &[(&str, &str)], baseline: &str) -> Vec<Finding> {
    let config = Config::parse("").expect("empty config");
    let baseline = Baseline::parse(baseline).expect("fixture baseline");
    let files: Vec<SourceFile> = files
        .iter()
        .map(|(path, text)| SourceFile::new(path, text))
        .collect();
    run_on(&files, &config, Some(&baseline)).findings
}

const PANICKY: &str = "pub fn f(x: Option<u32>) -> u32 {\n\
                       \x20   if x.is_none() { panic!(\"no\"); }\n\
                       \x20   x.unwrap()\n}\n";

#[test]
fn panic_ratchet_flags_sites_over_baseline() {
    let findings = ratchet(
        &[("crates/storage/src/a.rs", PANICKY)],
        "{\"version\": 1, \"files\": {}}",
    );
    let lines = pass_lines(&findings, passes::name::PANIC);
    assert_eq!(lines, vec![("crates/storage/src/a.rs".to_string(), 0)]);
    assert!(findings[0]
        .message
        .contains("2 panic site(s), baseline allows 0"));
}

#[test]
fn panic_ratchet_at_baseline_is_clean_and_undershoot_is_stale() {
    // Exactly at budget: clean.
    let findings = ratchet(
        &[("crates/storage/src/a.rs", PANICKY)],
        "{\"version\": 1, \"files\": {\"crates/storage/src/a.rs\": 2}}",
    );
    assert_eq!(findings, vec![]);
    // Under budget: the baseline must shrink.
    let findings = ratchet(
        &[("crates/storage/src/a.rs", "pub fn f() {}\n")],
        "{\"version\": 1, \"files\": {\"crates/storage/src/a.rs\": 2}}",
    );
    assert_eq!(findings.len(), 1);
    assert!(
        findings[0].message.contains("stale baseline"),
        "{}",
        findings[0]
    );
}

#[test]
fn panic_ratchet_ignores_tests_and_unratcheted_crates() {
    let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
    let findings = ratchet(
        &[
            ("crates/storage/src/a.rs", test_src),
            // The explain crate is not ratcheted.
            ("crates/explain/src/b.rs", PANICKY),
        ],
        "{\"version\": 1, \"files\": {}}",
    );
    assert_eq!(findings, vec![]);
}

// ─────────────────────────── lock-order ────────────────────────────────

const LOCK_CONFIG: &str = "\
[[lock]]\nname = \"a\"\nfile = \"crates/x/src/l.rs\"\nfield = \"alpha\"\nmethods = [\"lock\"]\n\
[[lock]]\nname = \"b\"\nfile = \"crates/x/src/l.rs\"\nfield = \"beta\"\nmethods = [\"lock\"]\n\
[lock-order]\norder = [\"a\", \"b\"]\n";

#[test]
fn lock_order_violation_is_detected() {
    // Acquires `b` then `a`: against the declared order a → b.
    let src = "impl S {\n\
               \x20   pub fn bad(&self) {\n\
               \x20       let g = self.beta.lock();\n\
               \x20       let h = self.alpha.lock();\n\
               \x20       drop(h);\n\
               \x20       drop(g);\n\
               \x20   }\n\
               }\n";
    let findings = lint(&[("crates/x/src/l.rs", src)], LOCK_CONFIG);
    let lines = pass_lines(&findings, "lock-order");
    assert_eq!(lines, vec![("crates/x/src/l.rs".to_string(), 4)]);
    assert!(
        findings[0].message.contains("`a` acquired"),
        "{}",
        findings[0]
    );
}

#[test]
fn lock_order_in_order_nesting_is_clean() {
    let src = "impl S {\n\
               \x20   pub fn good(&self) {\n\
               \x20       let g = self.alpha.lock();\n\
               \x20       let h = self.beta.lock();\n\
               \x20       drop(h);\n\
               \x20       drop(g);\n\
               \x20   }\n\
               }\n";
    let findings = lint(&[("crates/x/src/l.rs", src)], LOCK_CONFIG);
    assert_eq!(pass_lines(&findings, "lock-order"), vec![]);
}

#[test]
fn lock_order_release_is_modeled() {
    // `a` is dropped before `b` is taken — no edge, no finding; sequential
    // statement-temporaries don't nest either.
    let src = "impl S {\n\
               \x20   pub fn seq(&self) {\n\
               \x20       let g = self.beta.lock();\n\
               \x20       drop(g);\n\
               \x20       let h = self.alpha.lock();\n\
               \x20       drop(h);\n\
               \x20       *self.beta.lock() = 1;\n\
               \x20       *self.alpha.lock() = 2;\n\
               \x20   }\n\
               }\n";
    let findings = lint(&[("crates/x/src/l.rs", src)], LOCK_CONFIG);
    assert_eq!(pass_lines(&findings, "lock-order"), vec![]);
}

#[test]
fn lock_order_guard_returning_helper_transfers_to_caller() {
    // `self.lock()` returns a guard on `b`; the caller then takes `a`
    // while holding it — the interprocedural during-set catches it.
    let src = "impl S {\n\
               \x20   fn lock(&self) -> MutexGuard<'_, T> {\n\
               \x20       self.beta.lock()\n\
               \x20   }\n\
               \x20   pub fn bad(&self) {\n\
               \x20       let st = self.lock();\n\
               \x20       let g = self.alpha.lock();\n\
               \x20       drop(g);\n\
               \x20       drop(st);\n\
               \x20   }\n\
               }\n";
    let findings = lint(&[("crates/x/src/l.rs", src)], LOCK_CONFIG);
    let lines = pass_lines(&findings, "lock-order");
    assert_eq!(lines, vec![("crates/x/src/l.rs".to_string(), 7)]);
}

#[test]
fn lock_order_self_deadlock_is_detected() {
    let src = "impl S {\n\
               \x20   pub fn twice(&self) {\n\
               \x20       let g = self.alpha.lock();\n\
               \x20       let h = self.alpha.lock();\n\
               \x20       drop(h);\n\
               \x20       drop(g);\n\
               \x20   }\n\
               }\n";
    let findings = lint(&[("crates/x/src/l.rs", src)], LOCK_CONFIG);
    assert_eq!(findings.len(), 1);
    assert!(
        findings[0].message.contains("re-acquired"),
        "{}",
        findings[0]
    );
}

#[test]
fn lock_order_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n\
               \x20   fn t(s: &S) {\n\
               \x20       let g = s.beta.lock();\n\
               \x20       let h = s.alpha.lock();\n\
               \x20       drop(h); drop(g);\n\
               \x20   }\n}\n";
    let findings = lint(&[("crates/x/src/l.rs", src)], LOCK_CONFIG);
    assert_eq!(pass_lines(&findings, "lock-order"), vec![]);
}

// ───────────────────────────── atomics ─────────────────────────────────

#[test]
fn atomics_relaxed_without_annotation_is_flagged() {
    let src = "pub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], "");
    assert_eq!(
        pass_lines(&findings, passes::name::ATOMICS),
        vec![("crates/x/src/a.rs".to_string(), 1)]
    );
}

#[test]
fn atomics_annotated_and_acquire_release_are_clean() {
    let src = "pub fn f(c: &AtomicU64) -> u64 {\n\
               \x20   c.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok — telemetry counter\n\
               \x20   // lint: relaxed-ok — stats snapshot\n\
               \x20   let n = c.load(Ordering::Relaxed);\n\
               \x20   c.store(n, Ordering::Release);\n\
               \x20   c.load(Ordering::Acquire)\n\
               }\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], "");
    assert_eq!(pass_lines(&findings, passes::name::ATOMICS), vec![]);
}

#[test]
fn atomics_test_code_is_exempt() {
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], "");
    assert_eq!(pass_lines(&findings, passes::name::ATOMICS), vec![]);
}

#[test]
fn atomics_allowlisted_file_is_silent() {
    let src = "pub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n";
    let config = "[[allow]]\npass = \"atomics\"\npath = \"crates/x/src/a.rs\"\n\
                  reason = \"counters audited in PR 10\"\n";
    assert_eq!(lint(&[("crates/x/src/a.rs", src)], config), vec![]);
}

// ───────────────────────────── nondet ──────────────────────────────────

#[test]
fn nondet_violations_are_detected() {
    let src = "pub fn f() {\n\
               \x20   let t = Instant::now();\n\
               \x20   let s = SystemTime::now();\n\
               \x20   let r: u64 = rand::random();\n\
               }\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], "");
    assert_eq!(
        pass_lines(&findings, passes::name::NONDET),
        vec![
            ("crates/x/src/a.rs".to_string(), 2),
            ("crates/x/src/a.rs".to_string(), 3),
            ("crates/x/src/a.rs".to_string(), 4),
        ]
    );
}

#[test]
fn nondet_guard_rs_tests_and_annotations_are_exempt() {
    let timed = "pub fn f() { let t = Instant::now(); }\n";
    let annotated = "pub fn f() { let t = Instant::now(); } // lint: nondet-ok — telemetry only\n";
    let test_src = "#[test]\nfn t() { let _ = Instant::now(); }\n";
    let findings = lint(
        &[
            ("crates/storage/src/guard.rs", timed),
            ("crates/x/src/annotated.rs", annotated),
            ("crates/x/src/gated.rs", test_src),
            ("crates/x/benches/bench.rs", timed),
        ],
        "",
    );
    assert_eq!(pass_lines(&findings, passes::name::NONDET), vec![]);
}

// ──────────────────── allowlist + annotation hygiene ───────────────────

#[test]
fn stale_allow_entry_is_reported() {
    let config = "[[allow]]\npass = \"io-seam\"\npath = \"crates/x/src/gone.rs\"\n\
                  reason = \"was needed once\"\n";
    let findings = lint(&[("crates/x/src/a.rs", "pub fn f() {}\n")], config);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].pass, passes::name::ALLOWLIST);
    assert!(findings[0].message.contains("stale"), "{}", findings[0]);
}

#[test]
fn malformed_annotation_is_reported() {
    let src = "pub fn f() {} // lint: relaxed-ok\n";
    let findings = lint(&[("crates/x/src/a.rs", src)], "");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].pass, passes::name::ANNOTATION);
    assert!(findings[0].message.contains("reason"), "{}", findings[0]);
}

#[test]
fn missing_allow_reason_is_a_config_error() {
    let err = Config::parse("[[allow]]\npass = \"nondet\"\npath = \"x.rs\"\n").unwrap_err();
    assert!(err.message.contains("reason"), "{err}");
}

// ──────────────────────── workspace self-check ─────────────────────────

/// `kathdb-lint` must run clean on the workspace itself, and the
/// committed baseline must match the tree exactly (the ratchet state is
/// never allowed to drift).
#[test]
fn workspace_is_clean_under_kathdb_lint() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let result = kath_lint::run(&root).expect("lint.toml and lint-baseline.json are committed");
    let rendered: Vec<String> = result.findings.iter().map(|f| f.to_string()).collect();
    assert_eq!(rendered, Vec::<String>::new(), "workspace must lint clean");
    // The committed baseline is exactly what the tree generates.
    let committed = std::fs::read_to_string(root.join("lint-baseline.json")).expect("baseline");
    assert_eq!(
        Baseline::parse(&committed).expect("parses"),
        result.generated_baseline(),
        "lint-baseline.json must be regenerated via `kathdb-lint --write-baseline`"
    );
    // The lock-order pass actually observed the engine's canonical
    // nesting — the analysis must not silently go vacuous.
    assert!(
        result
            .edges
            .iter()
            .any(|e| e.held_name == "txn.commit" && e.acquired_name == "txn.current"),
        "expected the commit→current edge in txn.rs, got {:?}",
        result.edges
    );
}
