//! A hand-rolled Rust token scanner for the lint passes.
//!
//! This is not a full Rust lexer: it produces exactly what the passes
//! need — identifiers, punctuation, and literal placeholders, each tagged
//! with a 1-based line number — while being *correct about what is code*:
//! line comments, nested block comments, string literals (plain, raw,
//! byte, and C strings), char literals, and lifetimes are recognized so a
//! `std::fs` inside a doc comment or a `"panic!("` inside a string never
//! counts as a finding.
//!
//! Two side channels ride along with the token stream:
//!
//! * **Lint annotations.** Comments containing `lint: <name>-ok — <reason>`
//!   become [`Annotation`]s. An annotation covers its own line and the
//!   next, so both trailing (`x.load(Relaxed) // lint: relaxed-ok — …`)
//!   and preceding (`// lint: relaxed-ok — …` above the site) styles
//!   work. A `lint:` marker that does not parse is itself reported as a
//!   malformed-annotation finding by the driver.
//! * **Test spans.** Any item under a `#[cfg(test)]` or `#[test]`
//!   attribute — in practice the per-file `mod tests { … }` — is recorded
//!   as an inclusive line range. Every pass exempts those lines: tests may
//!   unwrap, panic, and touch `std::fs` freely.

use std::fmt;

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string/char/byte/numeric literal (content intentionally dropped).
    Lit,
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Punct(c) => write!(f, "{c}"),
            Tok::Lit => write!(f, "<lit>"),
            Tok::Lifetime => write!(f, "<'_>"),
        }
    }
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A parsed `lint: <name>-ok — <reason>` comment annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Line the comment starts on (covers this line and the next).
    pub line: u32,
    /// The annotation name without the `-ok` suffix (`relaxed`, `nondet`).
    pub name: String,
    /// The mandatory human reason.
    pub reason: String,
}

/// A `lint:` marker that failed to parse (missing `-ok` name or reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedAnnotation {
    /// Line the comment starts on.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

/// A lexed source file: tokens plus the annotation and test-span side
/// channels.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Parsed lint annotations.
    pub annotations: Vec<Annotation>,
    /// `lint:` markers that failed to parse.
    pub malformed: Vec<MalformedAnnotation>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(u32, u32)>,
}

impl Lexed {
    /// Lexes `text` (registered under `path` for findings).
    pub fn new(path: &str, text: &str) -> Lexed {
        let (tokens, annotations, malformed) = scan(text);
        let test_spans = test_spans(&tokens);
        Lexed {
            path: path.to_string(),
            tokens,
            annotations,
            malformed,
            test_spans,
        }
    }

    /// Whether `line` falls inside a test-gated item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// The annotation of the given name covering `line`, if any. An
    /// annotation on line `n` covers lines `n` and `n + 1`.
    pub fn annotation(&self, name: &str, line: u32) -> Option<&Annotation> {
        self.annotations
            .iter()
            .find(|a| a.name == name && (a.line == line || a.line + 1 == line))
    }
}

/// Scans `text` into tokens, collecting annotations from comments.
fn scan(text: &str) -> (Vec<Token>, Vec<Annotation>, Vec<MalformedAnnotation>) {
    let b = text.as_bytes();
    let mut tokens = Vec::new();
    let mut annotations = Vec::new();
    let mut malformed = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                note_comment(&text[start..i], line, &mut annotations, &mut malformed);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                note_comment(
                    &text[start..i],
                    start_line,
                    &mut annotations,
                    &mut malformed,
                );
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: tok_line,
                });
            }
            b'r' | b'b' if raw_string_start(b, i).is_some() => {
                let tok_line = line;
                let hashes = raw_string_start(b, i).unwrap_or(0);
                i = skip_raw_string(b, i, hashes, &mut line);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: tok_line,
                });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let tok_line = line;
                i = skip_string(b, i + 1, &mut line);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: tok_line,
                });
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'\'' => {
                let tok_line = line;
                i = skip_char(b, i + 1);
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: tok_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_char = if i + 1 >= b.len() {
                    false
                } else if b[i + 1] == b'\\' {
                    true
                } else {
                    // `'x'` is a char; `'x` followed by anything else is a
                    // lifetime (or `'_`).
                    i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\''
                };
                if is_char {
                    let tok_line = line;
                    i = skip_char(b, i);
                    tokens.push(Token {
                        tok: Tok::Lit,
                        line: tok_line,
                    });
                } else {
                    let tok_line = line;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Lifetime,
                        line: tok_line,
                    });
                }
            }
            b'0'..=b'9' => {
                let tok_line = line;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // A fractional part, but not a `0..n` range.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    tok: Tok::Lit,
                    line: tok_line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(text[start..i].to_string()),
                    line,
                });
            }
            _ => {
                // Multi-byte UTF-8 (e.g. an em dash in a string would have
                // been consumed above; in code it can only appear inside
                // comments, already handled) — skip the whole character.
                let width = utf8_width(c);
                if width == 1 {
                    tokens.push(Token {
                        tok: Tok::Punct(c as char),
                        line,
                    });
                }
                i += width;
            }
        }
    }
    (tokens, annotations, malformed)
}

fn utf8_width(c: u8) -> usize {
    match c {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Consumes a plain (escaped) string starting at the opening quote index.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Whether a raw string starts at `i` (`r"`, `r#"`, `br##"`, …); returns
/// the hash count.
fn raw_string_start(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some(hashes)
    } else {
        None
    }
}

/// Consumes a raw string with `hashes` delimiter hashes.
fn skip_raw_string(b: &[u8], start: usize, hashes: usize, line: &mut u32) -> usize {
    let mut i = start;
    // Skip the `b`/`r`/`#`* prefix up to and including the opening quote.
    while i < b.len() && b[i] != b'"' {
        i += 1;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if i + 1 + k >= b.len() || b[i + 1 + k] != b'#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Consumes a char literal starting at the opening quote index.
fn skip_char(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Parses `lint:` annotations out of one comment's text.
fn note_comment(
    text: &str,
    line: u32,
    annotations: &mut Vec<Annotation>,
    malformed: &mut Vec<MalformedAnnotation>,
) {
    let Some(pos) = text.find("lint:") else {
        return;
    };
    let rest = text[pos + "lint:".len()..].trim_start();
    let name_end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    // Trailing `*`/`/` strip block-comment closers; backticks strip
    // doc-comment mentions of the grammar itself (`lint: <name>-ok`).
    let word = rest[..name_end]
        .trim_end_matches(['*', '/'])
        .trim_matches('`');
    let Some(name) = word.strip_suffix("-ok") else {
        malformed.push(MalformedAnnotation {
            line,
            message: format!("expected `lint: <name>-ok — <reason>`, got `lint: {word}`"),
        });
        return;
    };
    // The reason follows an optional separator: an em/en dash, `--`, `-`,
    // or `:`.
    let mut reason = rest[name_end..].trim_start();
    for sep in ["—", "–", "--", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    let reason = reason.trim_end_matches(['*', '/']).trim().trim_matches('`');
    if name.is_empty() || reason.is_empty() {
        malformed.push(MalformedAnnotation {
            line,
            message: format!("`lint: {word}` annotation is missing its reason"),
        });
        return;
    }
    annotations.push(Annotation {
        line,
        name: name.to_string(),
        reason: reason.to_string(),
    });
}

/// Finds the inclusive line spans of items gated on `#[cfg(test)]` or
/// `#[test]`.
fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_punct(tokens, i, '#') || !is_punct(tokens, i + 1, '[') {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        let (attr_end, is_test) = scan_attr(tokens, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between the test gate and the item.
        let mut j = attr_end;
        while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
            let (end, _) = scan_attr(tokens, j + 1);
            j = end;
        }
        // The item body is the first `{ … }` group; `;`-terminated items
        // (e.g. `use`) end at the `;`.
        let mut depth = 0usize;
        let mut end_line = tokens.get(j).map(|t| t.line).unwrap_or(attr_line);
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = tokens[j].line;
                        j += 1;
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => {
                    end_line = tokens[j].line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            end_line = tokens[j].line;
            j += 1;
        }
        spans.push((attr_line, end_line));
        i = j;
    }
    spans
}

/// Scans one attribute starting at its `[`; returns (index past `]`,
/// whether the attribute mentions the bare ident `test`).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, is_test);
                }
            }
            Tok::Ident(name) if name == "test" => is_test = true,
            _ => {}
        }
        j += 1;
    }
    (j, is_test)
}

/// Whether token `i` is the punctuation `c`.
pub fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

/// Whether token `i` is the identifier `name`.
pub fn is_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Ident(s), .. }) if s == name)
}

/// The identifier text of token `i`, if it is one.
pub fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
// std::fs in a comment
/* nested /* std::fs */ still comment */
let s = "std::fs::read";
let r = r#"panic!("x")"#;
let c = 'x';
let lt: &'static str = "y";
std::fs::read(s);
"##;
        let lexed = Lexed::new("x.rs", src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        // The only `fs` ident is the real call on the last line.
        assert_eq!(idents.iter().filter(|s| **s == "fs").count(), 1);
        let fs_tok = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "fs"))
            .unwrap();
        assert_eq!(fs_tok.line, 8);
    }

    #[test]
    fn annotations_parse_with_reason() {
        let src = "let x = 1; // lint: relaxed-ok — monotonic counter\n\
                   // lint: nondet-ok - telemetry only\nlet y = 2;\n\
                   // lint: broken\nlet z = 3; // lint: empty-ok —\n";
        let lexed = Lexed::new("x.rs", src);
        assert_eq!(lexed.annotations.len(), 2);
        assert_eq!(lexed.annotations[0].name, "relaxed");
        assert_eq!(lexed.annotations[0].reason, "monotonic counter");
        assert_eq!(lexed.annotations[1].name, "nondet");
        assert!(lexed.annotation("relaxed", 1).is_some());
        assert!(lexed.annotation("nondet", 3).is_some(), "covers next line");
        assert_eq!(lexed.malformed.len(), 2);
    }

    #[test]
    fn cfg_test_modules_are_exempt_spans() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live2() {}\n";
        let lexed = Lexed::new("x.rs", src);
        assert!(!lexed.is_test_line(1));
        assert!(lexed.is_test_line(2));
        assert!(lexed.is_test_line(4));
        assert!(lexed.is_test_line(5));
        assert!(!lexed.is_test_line(6));
    }

    #[test]
    fn test_attr_on_fn_is_exempt() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() {}\n";
        let lexed = Lexed::new("x.rs", src);
        assert!(lexed.is_test_line(2));
        assert!(!lexed.is_test_line(3));
    }

    #[test]
    fn raw_and_byte_strings_scan() {
        let src =
            "let a = b\"bytes\"; let b2 = br#\"raw \" bytes\"#; let c = b'x';\nstd::fs::x();\n";
        let lexed = Lexed::new("x.rs", src);
        let fs = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "fs"))
            .unwrap();
        assert_eq!(fs.line, 2);
    }
}
