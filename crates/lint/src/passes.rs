//! The per-file lint passes: io-seam, panic-ratchet, atomics, nondet.
//!
//! Each pass walks a [`Lexed`] token stream. Test-gated lines (the
//! lexer's test spans) are always exempt; inline annotations
//! (`// lint: <name>-ok — <reason>`) exempt single sites for the passes
//! that support them; file-level exemptions live in `lint.toml` and are
//! applied by the driver after the passes run.

use crate::baseline::Baseline;
use crate::lexer::{ident_at, is_ident, is_punct, Lexed, Tok};
use crate::Finding;
use std::collections::BTreeMap;

/// Pass names (also the `--json` identifiers and the `[[allow]]` keys).
pub mod name {
    /// Io-seam enforcement.
    pub const IO_SEAM: &str = "io-seam";
    /// Panic-freedom ratchet.
    pub const PANIC: &str = "panic-ratchet";
    /// `Ordering::Relaxed` audit.
    pub const ATOMICS: &str = "atomics";
    /// Nondeterminism lint.
    pub const NONDET: &str = "nondet";
    /// Allowlist hygiene (stale entries).
    pub const ALLOWLIST: &str = "allowlist";
    /// Malformed `lint:` markers.
    pub const ANNOTATION: &str = "annotation";
}

/// **Io-seam enforcement.** All file-system access must go through the
/// `Io` trait in `crates/storage/src/io.rs` — that seam is what makes
/// fault injection and the chaos suite possible. Flags `std::fs`,
/// imported `fs::…` paths, `File::…`, and `OpenOptions` in library code.
/// Sites may carry a `// lint: io-ok — <reason>` annotation.
pub fn io_seam(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let hit: Option<&str> = if is_ident(toks, i, "fs")
            && is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
        {
            // Covers both `std::fs::…` and an imported `fs::…`. `use
            // std::fs;` itself is also caught via this arm's `std::fs`
            // spelling below.
            Some("`fs::` path")
        } else if is_ident(toks, i, "std")
            && is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
            && is_ident(toks, i + 3, "fs")
        {
            Some("`std::fs`")
        } else if is_ident(toks, i, "File")
            && is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
        {
            Some("`File::`")
        } else if is_ident(toks, i, "OpenOptions") {
            Some("`OpenOptions`")
        } else {
            None
        };
        if let Some(what) = hit {
            let line = toks[i].line;
            // One finding per line: `std::fs::File::open` matches three
            // overlapping patterns but is one violation.
            let already = findings.last().is_some_and(|f: &Finding| f.line == line);
            if !already && !lexed.is_test_line(line) && lexed.annotation("io", line).is_none() {
                findings.push(Finding {
                    pass: name::IO_SEAM,
                    file: lexed.path.clone(),
                    line,
                    message: format!(
                        "{what} outside the Io seam — route file access through \
                         `crates/storage/src/io.rs` so faults stay injectable"
                    ),
                });
            }
        }
        i += 1;
    }
    findings
}

/// The lines of panic sites (`.unwrap()` / `.expect(` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!`) outside test spans.
pub fn panic_sites(lexed: &Lexed) -> Vec<u32> {
    let toks = &lexed.tokens;
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        let Tok::Ident(word) = &toks[i].tok else {
            continue;
        };
        let is_site = match word.as_str() {
            // Method calls only (`.unwrap(`), so a local `fn unwrap` or a
            // mention in a path does not count.
            "unwrap" | "expect" => {
                i > 0 && is_punct(toks, i - 1, '.') && is_punct(toks, i + 1, '(')
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                // Macro invocation, not `core::panic` paths or the
                // `#[panic_handler]` ident.
                is_punct(toks, i + 1, '!')
            }
            _ => false,
        };
        if is_site && !lexed.is_test_line(toks[i].line) {
            sites.push(toks[i].line);
        }
    }
    sites
}

/// **Panic-freedom ratchet.** Compares the per-file panic-site counts of
/// the ratcheted crates against the committed baseline. Exceeding the
/// budget fails (new panic sites refused); undershooting also fails with
/// a "regenerate" hint, so the committed number only ever shrinks.
pub fn panic_ratchet(counts: &BTreeMap<String, u64>, baseline: &Baseline) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (file, &count) in counts {
        let allowed = baseline.files.get(file).copied().unwrap_or(0);
        if count > allowed {
            findings.push(Finding {
                pass: name::PANIC,
                file: file.clone(),
                line: 0,
                message: format!(
                    "{count} panic site(s), baseline allows {allowed} — return a typed \
                     `StorageError` instead (the ratchet only goes down)"
                ),
            });
        } else if count < allowed {
            findings.push(Finding {
                pass: name::PANIC,
                file: file.clone(),
                line: 0,
                message: format!(
                    "{count} panic site(s) but the baseline still says {allowed} — \
                     stale baseline, lock the improvement in with \
                     `kathdb-lint --write-baseline`"
                ),
            });
        }
    }
    for file in baseline.files.keys() {
        if !counts.contains_key(file) {
            findings.push(Finding {
                pass: name::PANIC,
                file: file.clone(),
                line: 0,
                message: "baseline entry for a file that no longer exists — \
                          regenerate with `kathdb-lint --write-baseline`"
                    .to_string(),
            });
        }
    }
    findings
}

/// **Atomics audit.** Every `Ordering::Relaxed` (or imported `Relaxed`)
/// load/store must carry a `// lint: relaxed-ok — <reason>` annotation:
/// `Relaxed` is only sound for monotonic counters and telemetry, never
/// for cross-thread control flow, and the annotation forces that claim to
/// be written down next to the site.
pub fn atomics(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if !is_ident(toks, i, "Relaxed") {
            continue;
        }
        let line = toks[i].line;
        if lexed.is_test_line(line) || lexed.annotation("relaxed", line).is_some() {
            continue;
        }
        findings.push(Finding {
            pass: name::ATOMICS,
            file: lexed.path.clone(),
            line,
            message: "`Ordering::Relaxed` without a `// lint: relaxed-ok — <reason>` \
                      annotation — use Acquire/Release if this synchronizes data"
                .to_string(),
        });
    }
    findings
}

/// **Nondeterminism lint.** `Instant::now` / `SystemTime::now` / the
/// `rand` crate make query results or plans depend on wall-clock or
/// entropy, which breaks replay and the deterministic test suites. Only
/// `guard.rs` (timeout enforcement), benches, and tests may use them;
/// other sites need a `// lint: nondet-ok — <reason>` annotation or a
/// `lint.toml` entry.
pub fn nondet(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let hit: Option<&str> = if (is_ident(toks, i, "Instant") || is_ident(toks, i, "SystemTime"))
            && is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
            && is_ident(toks, i + 3, "now")
        {
            match ident_at(toks, i) {
                Some("Instant") => Some("`Instant::now()`"),
                _ => Some("`SystemTime::now()`"),
            }
        } else if is_ident(toks, i, "rand")
            && is_punct(toks, i + 1, ':')
            && is_punct(toks, i + 2, ':')
        {
            Some("the `rand` crate")
        } else {
            None
        };
        let Some(what) = hit else {
            continue;
        };
        let line = toks[i].line;
        if lexed.is_test_line(line) || lexed.annotation("nondet", line).is_some() {
            continue;
        }
        findings.push(Finding {
            pass: name::NONDET,
            file: lexed.path.clone(),
            line,
            message: format!(
                "{what} in library code — nondeterminism breaks replay; thread a clock/seed \
                 through, or annotate `// lint: nondet-ok — <reason>`"
            ),
        });
    }
    findings
}
