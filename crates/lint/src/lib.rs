//! `kath_lint`: the KathDB workspace static analyzer (`kathdb-lint`).
//!
//! PRs 8–9 left the engine's correctness resting on conventions no
//! compiler checks: all file I/O behind the `Io` seam, the txn layer's
//! lock order acyclic, acked durability never gated on a `Relaxed`
//! atomic, hot paths returning typed errors instead of panicking. This
//! crate machine-checks those invariants on every PR — the static
//! counterpart of the chaos suite.
//!
//! The analyzer is deliberately dependency-free (the workspace is
//! offline-vendored): a hand-rolled token scanner ([`lexer`]), a tiny
//! TOML-subset config parser ([`config`]), a tiny JSON baseline
//! ([`baseline`]), and five passes:
//!
//! | pass | checks |
//! |------|--------|
//! | `io-seam` | no `std::fs`/`File::`/`OpenOptions` outside `storage/src/io.rs` |
//! | `panic-ratchet` | panic sites in storage/sql/exec/core vs. a shrink-only baseline |
//! | `lock-order` | acquired-while-held graph vs. the declared total order |
//! | `atomics` | every `Ordering::Relaxed` carries a `relaxed-ok` reason |
//! | `nondet` | no wall-clock/entropy outside `guard.rs`/bench/test |
//!
//! See `docs/static-analysis.md` for the annotation grammar, the
//! baseline workflow, and how to add a pass.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod lock_order;
pub mod passes;

use baseline::Baseline;
use config::Config;
use lexer::Lexed;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Pass identifier (see [`passes::name`]).
    pub pass: &'static str,
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Finding {
    /// `file:line: [pass] message` (line elided for file-level findings).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.pass, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.pass, self.message
            )
        }
    }
}

/// How a source file participates in the passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code — every pass applies.
    Lib,
    /// A binary (`src/bin/`, `src/main.rs`, `build.rs`) — exempt from the
    /// engine-invariant passes (binaries are drivers, not the engine).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// A scanned workspace file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Role derived from the path.
    pub role: Role,
    /// The lexed contents (carries the repo-relative path).
    pub lexed: Lexed,
}

impl SourceFile {
    /// Builds a file from a path and its text (role derived from path).
    pub fn new(path: &str, text: &str) -> SourceFile {
        SourceFile {
            role: role_of(path),
            lexed: Lexed::new(path, text),
        }
    }
}

/// Derives the role of a repo-relative path.
fn role_of(path: &str) -> Role {
    if path.contains("/tests/") || path.starts_with("tests/") {
        Role::Test
    } else if path.contains("/benches/") || path.starts_with("benches/") {
        Role::Bench
    } else if path.contains("/examples/") || path.starts_with("examples/") {
        Role::Example
    } else if path.contains("/src/bin/") || path.ends_with("/main.rs") || path.ends_with("build.rs")
    {
        Role::Bin
    } else {
        Role::Lib
    }
}

/// Crates exempt from all passes: the linter itself (it must read files
/// and its fixtures seed violations) and the bench harness (wall-clock is
/// its job).
fn exempt_crate(path: &str) -> bool {
    path.starts_with("crates/lint/") || path.starts_with("crates/bench/")
}

/// The crates whose panic sites are ratcheted.
fn ratcheted(path: &str) -> bool {
    [
        "crates/storage/",
        "crates/sql/",
        "crates/exec/",
        "crates/core/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// The result of a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintResult {
    /// All findings, sorted by (file, line, pass).
    pub findings: Vec<Finding>,
    /// Panic-site counts for every ratcheted file (zeros included).
    pub panic_counts: BTreeMap<String, u64>,
    /// The acquired-while-held edges the lock-order pass observed.
    pub edges: Vec<lock_order::Edge>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintResult {
    /// The baseline the current panic counts would generate (files with
    /// zero sites are omitted).
    pub fn generated_baseline(&self) -> Baseline {
        Baseline {
            files: self
                .panic_counts
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(f, &c)| (f.clone(), c))
                .collect(),
        }
    }
}

/// Runs every pass over pre-scanned files. `baseline` is `None` in
/// `--write-baseline` mode (the ratchet comparison is skipped; counts are
/// still computed).
pub fn run_on(files: &[SourceFile], config: &Config, baseline: Option<&Baseline>) -> LintResult {
    let mut result = LintResult {
        files_scanned: files.len(),
        ..LintResult::default()
    };
    let mut findings = Vec::new();
    for file in files {
        let path = &file.lexed.path;
        if exempt_crate(path) {
            continue;
        }
        for m in &file.lexed.malformed {
            findings.push(Finding {
                pass: passes::name::ANNOTATION,
                file: path.clone(),
                line: m.line,
                message: m.message.clone(),
            });
        }
        if file.role != Role::Lib {
            continue;
        }
        if path != "crates/storage/src/io.rs" {
            findings.extend(passes::io_seam(&file.lexed));
        }
        if ratcheted(path) {
            result
                .panic_counts
                .insert(path.clone(), passes::panic_sites(&file.lexed).len() as u64);
        }
        findings.extend(passes::atomics(&file.lexed));
        if !path.ends_with("guard.rs") {
            findings.extend(passes::nondet(&file.lexed));
        }
    }
    if let Some(baseline) = baseline {
        findings.extend(passes::panic_ratchet(&result.panic_counts, baseline));
    }
    // Lock-order runs over the lib files of every crate that declares a
    // lock (callee resolution stays within those crates).
    let scopes: Vec<String> = config
        .locks
        .iter()
        .map(|l| match l.file.find("/src/") {
            Some(pos) => l.file[..pos + "/src/".len()].to_string(),
            None => l.file.clone(),
        })
        .collect();
    let lock_files: Vec<&Lexed> = files
        .iter()
        .filter(|f| f.role == Role::Lib && scopes.iter().any(|s| f.lexed.path.starts_with(s)))
        .map(|f| &f.lexed)
        .collect();
    let (lock_findings, edges) = lock_order::run(&lock_files, config);
    findings.extend(lock_findings);
    result.edges = edges;
    // Apply the allowlist; stale entries are themselves findings.
    let mut used = vec![false; config.allows.len()];
    findings.retain(|f| match config.allow_index(f.pass, &f.file) {
        Some(i) => {
            used[i] = true;
            false
        }
        None => true,
    });
    for (i, allow) in config.allows.iter().enumerate() {
        if !used[i] {
            findings.push(Finding {
                pass: passes::name::ALLOWLIST,
                file: "lint.toml".to_string(),
                line: 0,
                message: format!(
                    "stale allow entry (pass `{}`, path `{}`) matches no finding — remove it",
                    allow.pass, allow.path
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    result.findings = findings;
    result
}

/// Scans the workspace `.rs` files under `root` (the umbrella crate's
/// `src`/`tests`/`examples` plus `crates/`; `vendor/` and `target/` are
/// skipped — vendored stand-ins are not ours to lint).
pub fn scan_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.lexed.path.cmp(&b.lexed.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::new(&rel, &text));
        }
    }
    Ok(())
}

/// Scans the workspace and runs every pass with the committed `lint.toml`
/// and `lint-baseline.json` at `root`.
pub fn run(root: &Path) -> Result<LintResult, String> {
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).map_err(|e| format!("lint.toml: {e}"))?;
    let config = Config::parse(&config_text).map_err(|e| e.to_string())?;
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .map_err(|e| format!("lint-baseline.json: {e} (generate with --write-baseline)"))?;
    let baseline = Baseline::parse(&baseline_text).map_err(|e| e.to_string())?;
    let files = scan_workspace(root)?;
    Ok(run_on(&files, &config, Some(&baseline)))
}

/// Serializes findings as the `--json` machine output.
pub fn to_json(result: &LintResult) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", result.files_scanned));
    out.push_str(&format!(
        "  \"panic_baseline_total\": {},\n",
        result.generated_baseline().total()
    ));
    out.push_str("  \"lock_edges\": [\n");
    let n = result.edges.len();
    for (i, e) in result.edges.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        out.push_str(&format!(
            "    {{\"held\": \"{}\", \"acquired\": \"{}\", \"at\": \"{}:{}\", \
             \"function\": \"{}\"}}{comma}\n",
            json_escape(&e.held_name),
            json_escape(&e.acquired_name),
            json_escape(&e.file),
            e.line,
            json_escape(&e.function)
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"findings\": [\n");
    let n = result.findings.len();
    for (i, f) in result.findings.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        out.push_str(&format!(
            "    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}\n",
            json_escape(f.pass),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
