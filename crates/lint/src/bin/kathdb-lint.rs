//! `kathdb-lint`: run the workspace static-analysis passes.
//!
//! ```text
//! kathdb-lint [--root PATH] [--json] [--write-baseline]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/config/IO error.
//! `--write-baseline` regenerates `lint-baseline.json` from the current
//! panic-site counts (the only sanctioned way to change the ratchet).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("kathdb-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: kathdb-lint [--root PATH] [--json] [--write-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("kathdb-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if write_baseline {
        return match write_baseline_at(&root) {
            Ok(total) => {
                println!("kathdb-lint: wrote lint-baseline.json ({total} panic sites)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("kathdb-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let result = match kath_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kathdb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", kath_lint::to_json(&result));
    } else {
        for finding in &result.findings {
            println!("{finding}");
        }
        if result.findings.is_empty() {
            println!(
                "kathdb-lint: clean ({} files scanned, panic baseline {})",
                result.files_scanned,
                result.generated_baseline().total()
            );
        } else {
            println!("kathdb-lint: {} finding(s)", result.findings.len());
        }
    }
    if result.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scans the workspace and rewrites `lint-baseline.json`; returns the
/// total panic-site count written.
fn write_baseline_at(root: &std::path::Path) -> Result<u64, String> {
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).map_err(|e| format!("lint.toml: {e}"))?;
    let config = kath_lint::config::Config::parse(&config_text).map_err(|e| e.to_string())?;
    let files = kath_lint::scan_workspace(root)?;
    let result = kath_lint::run_on(&files, &config, None);
    let baseline = result.generated_baseline();
    let total = baseline.total();
    std::fs::write(root.join("lint-baseline.json"), baseline.to_json())
        .map_err(|e| format!("write lint-baseline.json: {e}"))?;
    Ok(total)
}
