//! Lock-order analysis: the acquired-while-held graph.
//!
//! The engine's deadlock freedom rests on a total acquisition order
//! (declared in `lint.toml` under `[lock-order]`): the txn commit lock is
//! outermost, then the published-version `RwLock`, then page/pool/I/O
//! internals. This pass checks that order *mechanically*:
//!
//! 1. **Locks** are declared as `(file, field, methods)` triples — an
//!    acquisition site is a call of `field.lock()` / `field.read()` /
//!    `field.write()` on a declared field in its declaring file. Only
//!    declared fields count, so ordinary `io.read(path)` file I/O never
//!    aliases a lock.
//! 2. **Functions** of the crates owning those files are extracted
//!    lexically (body token ranges, return types). A per-function
//!    *during* set — every lock the function may acquire, transitively
//!    through calls — is computed to a fixpoint over the call graph
//!    (callees resolved by name, same-file first).
//! 3. Each function body is **simulated**: guards bound with
//!    `let g = …` are held until `drop(g)` or their block ends;
//!    temporary guards (`*x.write() = v;`) die at the statement's `;`.
//!    Helpers whose return type contains `Guard` (e.g.
//!    `SharedCatalog::lock`) transfer their acquisitions to the caller's
//!    binding. Every acquisition — direct or via a callee's during set —
//!    while another lock is held adds an edge *held → acquired*.
//! 4. The edge set must be consistent with the declared order and
//!    acyclic; re-acquiring a held lock is reported as a self-deadlock.
//!
//! The analysis is lexical and over-approximate in the safe direction for
//! a total order: a spurious *forward* edge is harmless, and the files it
//! covers bind guards with `let` (no `match x.lock() { … }` holds), which
//! keeps the release model accurate. Limitations are documented in
//! `docs/static-analysis.md`.

use crate::config::{Config, LockSpec};
use crate::lexer::{ident_at, is_ident, is_punct, Lexed, Tok, Token};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// The pass name findings are reported under.
pub const PASS: &str = "lock-order";

struct FnInfo {
    name: String,
    file: usize,
    body: (usize, usize),
    returns_guard: bool,
    /// Direct acquisition sites: (lock index, token index).
    direct: Vec<(usize, usize)>,
    /// Call sites: (callee name, token index, resolution strictness).
    calls: Vec<(String, usize, CallKind)>,
}

/// How a call site may be resolved to definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallKind {
    /// `self.name(…)`, `Self::name(…)`, or a bare `name(…)` — resolve
    /// normally (same-file definitions first, else global).
    Direct,
    /// A method call on some other receiver (`self.pool.get_or_load(…)`,
    /// `io.write(…)`) — the receiver's type is unknown, so resolve only
    /// when exactly one function of that name exists in scope. Generic
    /// collision-prone names (`clone`, `get`, `write`) stay opaque;
    /// distinctive helpers still connect the cross-object chains.
    UniqueOnly,
}

/// One acquired-while-held edge with its witness site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Held lock (index into the config's lock list).
    pub held: usize,
    /// Acquired lock.
    pub acquired: usize,
    /// Held lock's declared name (`txn.commit`).
    pub held_name: String,
    /// Acquired lock's declared name.
    pub acquired_name: String,
    /// Witness file path.
    pub file: String,
    /// Witness line.
    pub line: u32,
    /// Function the acquisition happens in.
    pub function: String,
}

/// Resolves a callee name from `caller_file`. `Direct` calls prefer
/// same-file definitions and fall back to every definition in scope;
/// `UniqueOnly` calls resolve solely when the name is unambiguous.
fn resolve(
    by_name: &BTreeMap<String, Vec<usize>>,
    fns: &[FnInfo],
    caller_file: usize,
    name: &str,
    kind: CallKind,
) -> Vec<usize> {
    let Some(candidates) = by_name.get(name) else {
        return Vec::new();
    };
    if kind == CallKind::UniqueOnly {
        return if candidates.len() == 1 {
            candidates.clone()
        } else {
            Vec::new()
        };
    }
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| fns[i].file == caller_file)
        .collect();
    if same_file.is_empty() {
        candidates.clone()
    } else {
        same_file
    }
}

/// Runs the pass over the lexed files (the caller passes the lib files of
/// every crate that owns a declared lock).
pub fn run(files: &[&Lexed], config: &Config) -> (Vec<Finding>, Vec<Edge>) {
    let mut findings = Vec::new();
    if config.locks.is_empty() {
        return (findings, Vec::new());
    }
    let mut fns: Vec<FnInfo> = Vec::new();
    for (file_idx, lexed) in files.iter().enumerate() {
        extract_fns(lexed, file_idx, config, &mut fns);
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    // Fixpoint: during[f] = direct locks ∪ during of every callee.
    let mut during: Vec<BTreeSet<usize>> = fns
        .iter()
        .map(|f| f.direct.iter().map(|&(l, _)| l).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut merged = during[i].clone();
            for (callee, _, kind) in &fns[i].calls {
                for t in resolve(&by_name, &fns, fns[i].file, callee, *kind) {
                    merged.extend(during[t].iter().copied());
                }
            }
            if merged.len() != during[i].len() {
                during[i] = merged;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Simulate every function, collecting edges.
    let mut edges: Vec<Edge> = Vec::new();
    for f in &fns {
        simulate(f, files[f.file], &fns, &by_name, &during, &mut edges);
    }
    edges.sort_by(|a, b| {
        (a.held, a.acquired, &a.file, a.line).cmp(&(b.held, b.acquired, &b.file, b.line))
    });
    edges.dedup_by(|a, b| a.held == b.held && a.acquired == b.acquired);
    for edge in &mut edges {
        edge.held_name = config.locks[edge.held].name.clone();
        edge.acquired_name = config.locks[edge.acquired].name.clone();
    }
    // Check edges against the declared order.
    let order_pos: BTreeMap<&str, usize> = config
        .lock_order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let declared = config.lock_order.join(" → ");
    for edge in &edges {
        let held = &config.locks[edge.held].name;
        let acquired = &config.locks[edge.acquired].name;
        if edge.held == edge.acquired {
            findings.push(Finding {
                pass: PASS,
                file: edge.file.clone(),
                line: edge.line,
                message: format!(
                    "`{held}` re-acquired in `{}` while already held (self-deadlock)",
                    edge.function
                ),
            });
            continue;
        }
        let (Some(&ph), Some(&pa)) = (
            order_pos.get(held.as_str()),
            order_pos.get(acquired.as_str()),
        ) else {
            continue; // config validation guarantees both are declared
        };
        if ph > pa {
            findings.push(Finding {
                pass: PASS,
                file: edge.file.clone(),
                line: edge.line,
                message: format!(
                    "`{acquired}` acquired in `{}` while `{held}` is held — violates the \
                     declared order {declared}",
                    edge.function
                ),
            });
        }
    }
    // Belt-and-braces: an explicit cycle check over the edge graph (the
    // total-order check subsumes it when every lock is declared, but the
    // graph is tiny and the invariant is load-bearing).
    for cycle in find_cycles(config.locks.len(), &edges) {
        let names: Vec<&str> = cycle
            .iter()
            .map(|&i| config.locks[i].name.as_str())
            .collect();
        findings.push(Finding {
            pass: PASS,
            file: "lint.toml".to_string(),
            line: 0,
            message: format!("lock acquisition cycle: {}", names.join(" → ")),
        });
    }
    (findings, edges)
}

/// Extracts function bodies, direct acquisition sites, and call sites.
fn extract_fns(lexed: &Lexed, file_idx: usize, config: &Config, out: &mut Vec<FnInfo>) {
    let toks = &lexed.tokens;
    let specs: Vec<(usize, &LockSpec)> = config
        .locks
        .iter()
        .enumerate()
        .filter(|(_, s)| s.file == lexed.path)
        .collect();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks, i, "fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            i += 1;
            continue;
        };
        if lexed.is_test_line(toks[i].line) {
            i += 2;
            continue;
        }
        // Find the body `{` (or a `;` for body-less trait declarations)
        // outside the signature's parens/brackets.
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut arrow_at: Option<usize> = None;
        let body_start = loop {
            match toks.get(j).map(|t| &t.tok) {
                None => break None,
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                Some(Tok::Punct('{')) if depth == 0 => break Some(j),
                Some(Tok::Punct(';')) if depth == 0 => break None,
                Some(Tok::Punct('-')) if depth == 0 && is_punct(toks, j + 1, '>') => {
                    arrow_at = Some(j);
                }
                _ => {}
            }
            j += 1;
        };
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        let returns_guard = arrow_at.is_some_and(|a| {
            toks[a..start]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s.contains("Guard")))
        });
        // Match the body braces.
        let mut brace = 0i32;
        let mut end = start;
        while end < toks.len() {
            match toks[end].tok {
                Tok::Punct('{') => brace += 1,
                Tok::Punct('}') => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let mut info = FnInfo {
            name: name.to_string(),
            file: file_idx,
            body: (start, end),
            returns_guard,
            direct: Vec::new(),
            calls: Vec::new(),
        };
        let mut k = start;
        while k < end {
            if let Some(lock) = acquisition_at(toks, k, &specs) {
                info.direct.push((lock, k));
                k += 4; // skip `field . method (`
                continue;
            }
            if let (Some(callee), true) = (ident_at(toks, k), is_punct(toks, k + 1, '(')) {
                // A declared acquisition method name (`lock`/`read`/
                // `write`) on an arbitrary receiver is a synchronization
                // primitive, not a helper — `failure.lock()` on a local
                // mutex must not resolve by name to a `fn lock` helper.
                let primitive = config
                    .locks
                    .iter()
                    .any(|s| s.methods.iter().any(|m| m == callee));
                match call_kind(toks, k) {
                    Some(CallKind::UniqueOnly) if primitive => {}
                    Some(kind) => info.calls.push((callee.to_string(), k, kind)),
                    None => {}
                }
            }
            k += 1;
        }
        out.push(info);
        i = end.max(i + 1);
    }
}

/// Classifies the call whose name sits at `k`, or `None` for a function
/// definition. `self.name(…)`, `Self::name(…)`, and bare `name(…)` calls
/// resolve normally; method calls on any other receiver (including
/// `Type::name(…)` paths) resolve only if the name is unique in scope —
/// by-name resolution of generic method names (`clone`, `get`, `write`)
/// would merge unrelated during-sets into phantom held locks.
fn call_kind(toks: &[Token], k: usize) -> Option<CallKind> {
    if k == 0 {
        return Some(CallKind::Direct);
    }
    if is_ident(toks, k - 1, "fn") {
        return None; // the definition itself
    }
    if is_punct(toks, k - 1, '.') {
        return if k >= 2 && is_ident(toks, k - 2, "self") {
            Some(CallKind::Direct)
        } else {
            Some(CallKind::UniqueOnly)
        };
    }
    if is_punct(toks, k - 1, ':') {
        return if k >= 3 && is_punct(toks, k - 2, ':') && is_ident(toks, k - 3, "Self") {
            Some(CallKind::Direct)
        } else {
            Some(CallKind::UniqueOnly)
        };
    }
    Some(CallKind::Direct)
}

/// Whether tokens at `k` form `field.method(` for a declared lock of this
/// file; returns the lock index.
fn acquisition_at(toks: &[Token], k: usize, specs: &[(usize, &LockSpec)]) -> Option<usize> {
    let field = ident_at(toks, k)?;
    if !is_punct(toks, k + 1, '.') {
        return None;
    }
    let method = ident_at(toks, k + 2)?;
    if !is_punct(toks, k + 3, '(') {
        return None;
    }
    specs
        .iter()
        .find(|(_, s)| s.field == field && s.methods.iter().any(|m| m == method))
        .map(|(idx, _)| *idx)
}

struct Held {
    lock: usize,
    binder: Option<String>,
    depth: i32,
    temp: bool,
}

/// Lexically simulates one function body, appending held→acquired edges.
fn simulate(
    f: &FnInfo,
    lexed: &Lexed,
    fns: &[FnInfo],
    by_name: &BTreeMap<String, Vec<usize>>,
    during: &[BTreeSet<usize>],
    edges: &mut Vec<Edge>,
) {
    let toks = &lexed.tokens;
    let (start, end) = f.body;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let direct: BTreeMap<usize, usize> = f.direct.iter().map(|&(l, k)| (k, l)).collect();
    let calls: BTreeMap<usize, (&str, CallKind)> = f
        .calls
        .iter()
        .map(|(n, k, kind)| (*k, (n.as_str(), *kind)))
        .collect();
    let mut push_edges = |held: &[Held], acquired: &BTreeSet<usize>, line: u32| {
        for h in held {
            for &l in acquired {
                edges.push(Edge {
                    held: h.lock,
                    acquired: l,
                    // Names are filled in by `run` once edges are final.
                    held_name: String::new(),
                    acquired_name: String::new(),
                    file: lexed.path.clone(),
                    line,
                    function: f.name.clone(),
                });
            }
        }
    };
    let mut k = start;
    while k < end {
        match &toks[k].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|h| !h.temp && h.depth <= depth);
            }
            Tok::Punct(';') => held.retain(|h| !h.temp),
            Tok::Ident(name) if name == "drop" && is_punct(toks, k + 1, '(') => {
                if let (Some(victim), true) = (ident_at(toks, k + 2), is_punct(toks, k + 3, ')')) {
                    held.retain(|h| h.binder.as_deref() != Some(victim));
                    k += 4;
                    continue;
                }
            }
            _ => {}
        }
        if let Some(&lock) = direct.get(&k) {
            push_edges(&held, &BTreeSet::from([lock]), toks[k].line);
            let binder = binder_of(toks, start, k);
            held.push(Held {
                lock,
                temp: binder.is_none(),
                binder,
                depth,
            });
            k += 4;
            continue;
        }
        if let Some(&(callee, kind)) = calls.get(&k) {
            let targets = resolve(by_name, fns, f.file, callee, kind);
            let mut acquired: BTreeSet<usize> = BTreeSet::new();
            let mut guard_ret = false;
            for &t in &targets {
                acquired.extend(during[t].iter().copied());
                guard_ret |= fns[t].returns_guard;
            }
            if !acquired.is_empty() {
                push_edges(&held, &acquired, toks[k].line);
                if guard_ret {
                    // The helper hands its guard(s) to this statement's
                    // binding (e.g. `let st = self.lock();`).
                    let binder = binder_of(toks, start, k);
                    for &l in &acquired {
                        held.push(Held {
                            lock: l,
                            temp: binder.is_none(),
                            binder: binder.clone(),
                            depth,
                        });
                    }
                }
            }
        }
        k += 1;
    }
}

/// Finds the `let`-binding (or plain reassignment) target of the statement
/// containing token `k`, scanning back to the statement boundary.
fn binder_of(toks: &[Token], body_start: usize, k: usize) -> Option<String> {
    let mut j = k;
    let mut eq_at: Option<usize> = None;
    while j > body_start && k - j <= 48 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Punct('=') => {
                // Skip `==`, `<=`, `>=`, `!=` and compound assignments.
                let prev_op = matches!(
                    toks.get(j.wrapping_sub(1)).map(|t| &t.tok),
                    Some(Tok::Punct('='))
                        | Some(Tok::Punct('<'))
                        | Some(Tok::Punct('>'))
                        | Some(Tok::Punct('!'))
                        | Some(Tok::Punct('+'))
                        | Some(Tok::Punct('-'))
                        | Some(Tok::Punct('*'))
                        | Some(Tok::Punct('/'))
                );
                let next_eq = matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('=')));
                if !prev_op && !next_eq {
                    eq_at = Some(j);
                }
            }
            _ => {}
        }
    }
    let eq = eq_at?;
    ident_at(toks, eq - 1).map(|s| s.to_string())
}

/// Simple DFS cycle finder over the lock graph; returns each cycle once.
fn find_cycles(n: usize, edges: &[Edge]) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        if e.held != e.acquired {
            adj[e.held].push(e.acquired);
        }
    }
    fn dfs(
        v: usize,
        adj: &[Vec<usize>],
        color: &mut [u8],
        stack: &mut Vec<usize>,
        cycles: &mut Vec<Vec<usize>>,
    ) {
        color[v] = 1;
        stack.push(v);
        for &w in &adj[v] {
            if color[w] == 1 {
                let pos = stack.iter().position(|&x| x == w).unwrap_or(0);
                let mut cycle = stack[pos..].to_vec();
                cycle.push(w);
                cycles.push(cycle);
            } else if color[w] == 0 {
                dfs(w, adj, color, stack, cycles);
            }
        }
        stack.pop();
        color[v] = 2;
    }
    let mut cycles = Vec::new();
    let mut color = vec![0u8; n];
    let mut stack: Vec<usize> = Vec::new();
    for v in 0..n {
        if color[v] == 0 {
            dfs(v, &adj, &mut color, &mut stack, &mut cycles);
        }
    }
    cycles
}
