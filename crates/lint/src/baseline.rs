//! `lint-baseline.json`: the panic-freedom ratchet state.
//!
//! The baseline records, per file, how many panic sites
//! (`unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!`) the ratcheted crates are *allowed* to contain. The
//! pass fails when a file exceeds its recorded count (the ratchet: new
//! panic sites are refused) **and** when a file undershoots it (the
//! baseline must be regenerated with `kathdb-lint --write-baseline`, so
//! the committed number only ever shrinks — an improvement is locked in
//! the moment it lands).
//!
//! The format is deliberately tiny JSON (the workspace is offline and
//! dependency-free): `{"version": 1, "files": {"path": count, …}}`.

use std::collections::BTreeMap;
use std::fmt;

/// The parsed baseline: panic-site budget per file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Repo-relative path → allowed panic-site count.
    pub files: BTreeMap<String, u64>,
}

/// A baseline parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError(pub String);

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-baseline.json: {}", self.0)
    }
}

impl Baseline {
    /// Total allowed sites across all files.
    pub fn total(&self) -> u64 {
        self.files.values().sum()
    }

    /// Serializes the baseline (sorted, one file per line — diff-stable).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"files\": {\n");
        let n = self.files.len();
        for (i, (path, count)) in self.files.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            out.push_str(&format!("    \"{path}\": {count}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the baseline JSON (the exact shape `to_json` writes, with
    /// tolerance for whitespace).
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut files = BTreeMap::new();
        let mut chars = text.char_indices().peekable();
        let mut in_files = false;
        let mut depth = 0u32;
        let mut pending_key: Option<String> = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if in_files && depth <= 1 {
                        in_files = false;
                    }
                }
                '"' => {
                    let start = i + 1;
                    let mut end = start;
                    for (j, cj) in chars.by_ref() {
                        if cj == '"' {
                            end = j;
                            break;
                        }
                    }
                    let s = &text[start..end];
                    if depth == 1 && s == "files" {
                        in_files = true;
                    } else if in_files && depth == 2 {
                        pending_key = Some(s.to_string());
                    }
                }
                '0'..='9' => {
                    let start = i;
                    let mut end = i + 1;
                    while let Some(&(j, cj)) = chars.peek() {
                        if cj.is_ascii_digit() {
                            end = j + 1;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let value: u64 = text[start..end]
                        .parse()
                        .map_err(|_| BaselineError(format!("bad count `{}`", &text[start..end])))?;
                    if let Some(key) = pending_key.take() {
                        files.insert(key, value);
                    }
                    // `"version": 1` has no pending file key and is ignored.
                }
                _ => {}
            }
        }
        if depth != 0 {
            return Err(BaselineError("unbalanced braces".to_string()));
        }
        Ok(Baseline { files })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.files.insert("crates/a/src/x.rs".to_string(), 3);
        b.files.insert("crates/b/src/y.rs".to_string(), 0);
        let json = b.to_json();
        let parsed = Baseline::parse(&json).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn unbalanced_is_an_error() {
        assert!(Baseline::parse("{\"files\": {").is_err());
    }
}
