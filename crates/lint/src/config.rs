//! `lint.toml`: the allowlist and the lock model.
//!
//! The workspace is offline-vendored, so this is a hand-rolled parser for
//! the small TOML subset the config actually uses: `[section]` /
//! `[[array-of-tables]]` headers, `key = "string"`, and
//! `key = ["a", "b"]` single-line string arrays, with `#` comments.
//!
//! Every `[[allow]]` entry **requires** a non-empty `reason` — an
//! allowlist that does not say *why* is a suppression, not a decision.
//! Entries that no longer match any finding are reported as stale, so the
//! list can only describe the present.

use std::collections::BTreeMap;
use std::fmt;

/// One allowlist entry: suppresses all findings of `pass` in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Pass name (`io-seam`, `panic-ratchet`, `lock-order`, `atomics`,
    /// `nondet`).
    pub pass: String,
    /// Repo-relative file path the entry covers.
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
}

/// One declared lock: a struct field in a specific file whose
/// `lock()`/`read()`/`write()` calls are acquisition sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSpec {
    /// Canonical name used in the declared order (`txn.commit`).
    pub name: String,
    /// File the field lives in.
    pub file: String,
    /// Field identifier (`commit`, `current`, `inner`, …).
    pub field: String,
    /// Acquisition method names (`lock`, `read`, `write`).
    pub methods: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Allowlist entries.
    pub allows: Vec<Allow>,
    /// Declared locks.
    pub locks: Vec<LockSpec>,
    /// The total acquisition order (outermost first).
    pub lock_order: Vec<String>,
}

/// A config parse or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `lint.toml` (0 for file-level errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl Config {
    /// Parses and validates a `lint.toml` document.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        // Section currently being filled.
        enum Section {
            None,
            Allow(BTreeMap<String, Vec<String>>),
            Lock(BTreeMap<String, Vec<String>>),
            LockOrder,
        }
        let mut section = Section::None;
        let mut section_line = 0u32;
        let flush =
            |config: &mut Config, section: &mut Section, line: u32| -> Result<(), ConfigError> {
                match std::mem::replace(section, Section::None) {
                    Section::None | Section::LockOrder => Ok(()),
                    Section::Allow(map) => {
                        let get = |k: &str| -> Result<String, ConfigError> {
                            map.get(k)
                                .and_then(|v| v.first())
                                .filter(|s| !s.is_empty())
                                .cloned()
                                .ok_or(ConfigError {
                                    line,
                                    message: format!("[[allow]] entry is missing `{k}`"),
                                })
                        };
                        config.allows.push(Allow {
                            pass: get("pass")?,
                            path: get("path")?,
                            reason: get("reason")?,
                        });
                        Ok(())
                    }
                    Section::Lock(map) => {
                        let get = |k: &str| -> Result<String, ConfigError> {
                            map.get(k)
                                .and_then(|v| v.first())
                                .filter(|s| !s.is_empty())
                                .cloned()
                                .ok_or(ConfigError {
                                    line,
                                    message: format!("[[lock]] entry is missing `{k}`"),
                                })
                        };
                        let methods = map.get("methods").cloned().unwrap_or_default();
                        if methods.is_empty() {
                            return Err(ConfigError {
                                line,
                                message: "[[lock]] entry is missing `methods`".to_string(),
                            });
                        }
                        config.locks.push(LockSpec {
                            name: get("name")?,
                            file: get("file")?,
                            field: get("field")?,
                            methods,
                        });
                        Ok(())
                    }
                }
            };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                flush(&mut config, &mut section, section_line)?;
                section_line = lineno;
                section = match header.trim() {
                    "allow" => Section::Allow(BTreeMap::new()),
                    "lock" => Section::Lock(BTreeMap::new()),
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown section [[{other}]]"),
                        })
                    }
                };
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                flush(&mut config, &mut section, section_line)?;
                section_line = lineno;
                section = match header.trim() {
                    "lock-order" => Section::LockOrder,
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown section [{other}]"),
                        })
                    }
                };
                continue;
            }
            let (key, value) = line.split_once('=').ok_or(ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got `{line}`"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            let values = parse_value(value).map_err(|message| ConfigError {
                line: lineno,
                message,
            })?;
            match &mut section {
                Section::Allow(map) | Section::Lock(map) => {
                    map.insert(key.to_string(), values);
                }
                Section::LockOrder if key == "order" => config.lock_order = values,
                Section::LockOrder => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown [lock-order] key `{key}`"),
                    })
                }
                Section::None => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("`{key}` outside any section"),
                    })
                }
            }
        }
        flush(&mut config, &mut section, section_line)?;
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        for lock in &self.locks {
            if !self.lock_order.iter().any(|n| n == &lock.name) {
                return Err(ConfigError {
                    line: 0,
                    message: format!("lock `{}` is not listed in [lock-order] order", lock.name),
                });
            }
        }
        for name in &self.lock_order {
            if !self.locks.iter().any(|l| &l.name == name) {
                return Err(ConfigError {
                    line: 0,
                    message: format!("[lock-order] names undeclared lock `{name}`"),
                });
            }
        }
        Ok(())
    }

    /// Whether an allow entry covers (pass, path); returns its index.
    pub fn allow_index(&self, pass: &str, path: &str) -> Option<usize> {
        self.allows
            .iter()
            .position(|a| a.pass == pass && a.path == path)
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Parses `"string"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(parse_string(part)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value)?])
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allows_locks_and_order() {
        let toml = r#"
# comment
[[allow]]
pass = "nondet"
path = "crates/data/src/scale.rs"
reason = "seeded rng" # trailing comment

[[lock]]
name = "a"
file = "f.rs"
field = "x"
methods = ["lock"]

[[lock]]
name = "b"
file = "f.rs"
field = "y"
methods = ["read", "write"]

[lock-order]
order = ["a", "b"]
"#;
        let config = Config::parse(toml).unwrap();
        assert_eq!(config.allows.len(), 1);
        assert_eq!(config.allows[0].reason, "seeded rng");
        assert_eq!(config.locks.len(), 2);
        assert_eq!(config.locks[1].methods, vec!["read", "write"]);
        assert_eq!(config.lock_order, vec!["a", "b"]);
        assert!(config
            .allow_index("nondet", "crates/data/src/scale.rs")
            .is_some());
        assert!(config
            .allow_index("atomics", "crates/data/src/scale.rs")
            .is_none());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let toml = "[[allow]]\npass = \"nondet\"\npath = \"x.rs\"\n";
        let err = Config::parse(toml).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn undeclared_order_lock_is_rejected() {
        let toml = "[[lock]]\nname = \"a\"\nfile = \"f.rs\"\nfield = \"x\"\nmethods = [\"lock\"]\n";
        let err = Config::parse(toml).unwrap_err();
        assert!(err.message.contains("lock-order"), "{err}");
    }
}
