//! Property tests: the lineage graph is acyclic by construction, traces
//! terminate, and every recorded lid is reachable from itself.

use kath_lineage::*;
use proptest::prelude::*;

proptest! {
    /// Build a random DAG respecting allocation order; every trace
    /// terminates and only visits older lids.
    #[test]
    fn traces_terminate_and_visit_older_lids(
        edges in prop::collection::vec((0usize..50, 0usize..50), 1..120)
    ) {
        let mut store = LineageStore::new();
        let lids: Vec<i64> = (0..50).map(|_| store.alloc_lid()).collect();
        for (a, b) in edges {
            let (child, parent) = if lids[a] > lids[b] { (lids[a], lids[b]) } else { (lids[b], lids[a]) };
            if child == parent {
                prop_assert!(store.record(child, Some(parent), None, "f", 1, DataKind::Row).is_err());
                continue;
            }
            store.record(child, Some(parent), None, "f", 1, DataKind::Row).unwrap();
        }
        for &l in &lids {
            if store.contains(l) {
                let t = store.trace(l).unwrap();
                prop_assert!(t.depth() <= 50);
                for visited in t.lids() {
                    prop_assert!(visited <= l);
                }
            }
        }
    }

    /// children() and parents() are mutually consistent.
    #[test]
    fn child_parent_symmetry(
        edges in prop::collection::vec((0usize..20, 0usize..20), 1..60)
    ) {
        let mut store = LineageStore::new();
        let lids: Vec<i64> = (0..20).map(|_| store.alloc_lid()).collect();
        for (a, b) in edges {
            if lids[a] == lids[b] { continue; }
            let (child, parent) = if lids[a] > lids[b] { (lids[a], lids[b]) } else { (lids[b], lids[a]) };
            store.record(child, Some(parent), None, "f", 1, DataKind::Table).unwrap();
        }
        for &l in &lids {
            for c in store.children(l) {
                prop_assert!(store.parents(c).contains(&l));
            }
            for p in store.parents(l) {
                prop_assert!(store.children(p).contains(&l));
            }
        }
    }

    /// The Table-3 rendering always has one row per recorded edge and
    /// validates against the schema.
    #[test]
    fn table_rendering_is_faithful(n in 0usize..40) {
        let mut store = LineageStore::new();
        let mut prev = None;
        for i in 0..n {
            let l = store.alloc_lid();
            let kind = if i % 3 == 0 { DataKind::Table } else { DataKind::Row };
            store.record(l, prev, None, &format!("f{i}"), (i % 5) as u32 + 1, kind).unwrap();
            prev = Some(l);
        }
        let t = store.as_table().unwrap();
        prop_assert_eq!(t.len(), n);
    }
}
