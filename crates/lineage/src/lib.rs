//! KathDB provenance (Table 3 of the paper).
//!
//! Every derived tuple or table gets a row in the unified lineage relation
//! `Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts)`:
//! one **edge** of the provenance graph per row, so a child with several
//! parents (Fig. 2: table 1274 derives from tables 940 and 941) occupies
//! several rows. Functions classified `one_to_one`/`one_to_many` record
//! row-level lineage; `many_to_one`/`many_to_many` (aggregation, sorting)
//! record table-level lineage only (§3).

#![warn(missing_docs)]

use kath_storage::{DataType, Schema, StorageError, Table, Value};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Granularity of one lineage edge (`data_type` in Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataKind {
    /// Row-level lineage: the child tuple depends on exactly the parent.
    Row,
    /// Table-level lineage: all inputs are assumed to contribute.
    Table,
}

impl fmt::Display for DataKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataKind::Row => "row",
            DataKind::Table => "table",
        })
    }
}

/// The dependency pattern the generating LLM assigns to each function (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependencyPattern {
    /// Each output tuple derives from exactly one input tuple.
    OneToOne,
    /// One input tuple may produce several outputs.
    OneToMany,
    /// Wide dependency: many inputs fold into one output (aggregation).
    ManyToOne,
    /// Wide dependency: joins, sorts, global transforms.
    ManyToMany,
}

impl DependencyPattern {
    /// Narrow patterns permit row-level lineage (§3).
    pub fn is_narrow(&self) -> bool {
        matches!(
            self,
            DependencyPattern::OneToOne | DependencyPattern::OneToMany
        )
    }

    /// The lineage granularity this pattern records.
    pub fn data_kind(&self) -> DataKind {
        if self.is_narrow() {
            DataKind::Row
        } else {
            DataKind::Table
        }
    }

    /// Paper spelling (`one_to_one`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            DependencyPattern::OneToOne => "one_to_one",
            DependencyPattern::OneToMany => "one_to_many",
            DependencyPattern::ManyToOne => "many_to_one",
            DependencyPattern::ManyToMany => "many_to_many",
        }
    }

    /// Parses the paper spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "one_to_one" => DependencyPattern::OneToOne,
            "one_to_many" => DependencyPattern::OneToMany,
            "many_to_one" => DependencyPattern::ManyToOne,
            "many_to_many" => DependencyPattern::ManyToMany,
            _ => return None,
        })
    }
}

impl fmt::Display for DependencyPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One edge in the provenance graph (one row of Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct LineageEntry {
    /// Derived (child) identifier.
    pub lid: i64,
    /// Input identifier; `None` for external input data.
    pub parent_lid: Option<i64>,
    /// Source path for ingested raw data; `None` for intermediates.
    pub src_uri: Option<String>,
    /// Function that produced the child.
    pub func_id: String,
    /// Version of that function (§4).
    pub ver_id: u32,
    /// Row- or table-level edge.
    pub data_type: DataKind,
    /// Seconds since query start when the child was created.
    pub ts: f64,
}

/// How much lineage to record — the paper's overhead research question (§3)
/// made concrete as a policy knob benchmarked by `bench_lineage_overhead`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineagePolicy {
    /// Record nothing (baseline).
    Off,
    /// Record only table-level edges.
    TableOnly,
    /// Record everything (default).
    Full,
    /// Record table-level edges plus every `n`-th row-level edge.
    Sampled(u32),
}

impl LineagePolicy {
    fn admits(&self, kind: DataKind, row_counter: u64) -> bool {
        match self {
            LineagePolicy::Off => false,
            LineagePolicy::TableOnly => kind == DataKind::Table,
            LineagePolicy::Full => true,
            LineagePolicy::Sampled(n) => {
                kind == DataKind::Table || row_counter.is_multiple_of((*n).max(1) as u64)
            }
        }
    }
}

/// Errors from the lineage store.
#[derive(Debug, Clone, PartialEq)]
pub enum LineageError {
    /// Parent lid must precede the child (allocation is monotone; this
    /// structurally guarantees acyclicity).
    ParentNotOlder {
        /// Child lid.
        lid: i64,
        /// Offending parent.
        parent: i64,
    },
    /// Unknown lid queried.
    UnknownLid(i64),
    /// Storage error while rendering.
    Storage(StorageError),
}

impl fmt::Display for LineageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineageError::ParentNotOlder { lid, parent } => {
                write!(
                    f,
                    "lineage edge {lid} -> parent {parent} violates allocation order"
                )
            }
            LineageError::UnknownLid(l) => write!(f, "unknown lid {l}"),
            LineageError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LineageError {}

impl From<StorageError> for LineageError {
    fn from(e: StorageError) -> Self {
        LineageError::Storage(e)
    }
}

/// The provenance store: allocates lids and records edges.
#[derive(Debug)]
pub struct LineageStore {
    entries: Vec<LineageEntry>,
    // lid -> indexes of entries with that child lid (multi-parent support).
    by_lid: HashMap<i64, Vec<usize>>,
    // parent lid -> indexes of entries pointing at it.
    by_parent: HashMap<i64, Vec<usize>>,
    next_lid: i64,
    row_counter: u64,
    /// Recording policy.
    pub policy: LineagePolicy,
    started: Instant,
}

impl Default for LineageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LineageStore {
    /// A fresh store with full recording.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            by_lid: HashMap::new(),
            by_parent: HashMap::new(),
            next_lid: 1,
            row_counter: 0,
            policy: LineagePolicy::Full,
            started: Instant::now(), // lint: nondet-ok — lineage-store age telemetry only
        }
    }

    /// A store with an explicit policy.
    pub fn with_policy(policy: LineagePolicy) -> Self {
        Self {
            policy,
            ..Self::new()
        }
    }

    /// Allocates the next lid (monotonically increasing, §4).
    pub fn alloc_lid(&mut self) -> i64 {
        let l = self.next_lid;
        self.next_lid += 1;
        l
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records one edge. Parent lids must be older than the child lid,
    /// which makes the graph a DAG by construction. Returns whether the
    /// policy admitted the edge.
    pub fn record(
        &mut self,
        lid: i64,
        parent_lid: Option<i64>,
        src_uri: Option<String>,
        func_id: &str,
        ver_id: u32,
        data_type: DataKind,
    ) -> Result<bool, LineageError> {
        if data_type == DataKind::Row {
            self.row_counter += 1;
        }
        // Policy admission runs first: stores used purely for profiling
        // (policy Off) accept foreign lids without order checks.
        if !self.policy.admits(data_type, self.row_counter) {
            return Ok(false);
        }
        if let Some(p) = parent_lid {
            if p >= lid {
                return Err(LineageError::ParentNotOlder { lid, parent: p });
            }
        }
        let idx = self.entries.len();
        self.entries.push(LineageEntry {
            lid,
            parent_lid,
            src_uri,
            func_id: func_id.to_string(),
            ver_id,
            data_type,
            ts: self.started.elapsed().as_secs_f64(),
        });
        self.by_lid.entry(lid).or_default().push(idx);
        if let Some(p) = parent_lid {
            self.by_parent.entry(p).or_default().push(idx);
        }
        Ok(true)
    }

    /// All edges whose child is `lid` (one per parent).
    pub fn edges_of(&self, lid: i64) -> Vec<&LineageEntry> {
        self.by_lid
            .get(&lid)
            .map(|ix| ix.iter().map(|&i| &self.entries[i]).collect())
            .unwrap_or_default()
    }

    /// Parent lids of `lid`.
    pub fn parents(&self, lid: i64) -> Vec<i64> {
        self.edges_of(lid)
            .iter()
            .filter_map(|e| e.parent_lid)
            .collect()
    }

    /// Child lids derived (directly) from `lid`.
    pub fn children(&self, lid: i64) -> Vec<i64> {
        let mut out: Vec<i64> = self
            .by_parent
            .get(&lid)
            .map(|ix| ix.iter().map(|&i| self.entries[i].lid).collect())
            .unwrap_or_default();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether a lid is known.
    pub fn contains(&self, lid: i64) -> bool {
        self.by_lid.contains_key(&lid)
    }

    /// All edges in insertion order.
    pub fn entries(&self) -> &[LineageEntry] {
        &self.entries
    }

    /// Full derivation trace of `lid`: the entry's edges plus recursively
    /// traced parents. Terminates because parents are strictly older.
    pub fn trace(&self, lid: i64) -> Result<DerivationTrace, LineageError> {
        if !self.contains(lid) {
            return Err(LineageError::UnknownLid(lid));
        }
        Ok(self.trace_inner(lid))
    }

    fn trace_inner(&self, lid: i64) -> DerivationTrace {
        let edges: Vec<LineageEntry> = self.edges_of(lid).into_iter().cloned().collect();
        let mut parents = Vec::new();
        for e in &edges {
            if let Some(p) = e.parent_lid {
                if self.contains(p) {
                    parents.push(self.trace_inner(p));
                }
            }
        }
        DerivationTrace {
            lid,
            edges,
            parents,
        }
    }

    /// Renders the store as the exact Table 3 relation.
    pub fn as_table(&self) -> Result<Table, LineageError> {
        let mut t = Table::new("Lineage", lineage_schema());
        for e in &self.entries {
            t.push(vec![
                Value::Int(e.lid),
                e.parent_lid.map(Value::Int).unwrap_or(Value::Null),
                e.src_uri.clone().map(Value::Str).unwrap_or(Value::Null),
                Value::Str(e.func_id.clone()),
                Value::Int(e.ver_id as i64),
                Value::Str(e.data_type.to_string()),
                Value::Float(e.ts),
            ])?;
        }
        Ok(t)
    }
}

/// The exact Table 3 schema:
/// `Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts)`.
pub fn lineage_schema() -> Schema {
    Schema::of(&[
        ("lid", DataType::Int),
        ("parent_lid", DataType::Int),
        ("src_uri", DataType::Str),
        ("func_id", DataType::Str),
        ("ver_id", DataType::Int),
        ("data_type", DataType::Str),
        ("ts", DataType::Float),
    ])
}

/// A recursive derivation trace rooted at one lid.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationTrace {
    /// The traced lid.
    pub lid: i64,
    /// Its incoming edges (one per parent; possibly several).
    pub edges: Vec<LineageEntry>,
    /// Traces of all known parents.
    pub parents: Vec<DerivationTrace>,
}

impl DerivationTrace {
    /// Depth of the trace (1 for a root).
    pub fn depth(&self) -> usize {
        1 + self
            .parents
            .iter()
            .map(DerivationTrace::depth)
            .max()
            .unwrap_or(0)
    }

    /// All distinct lids in the trace.
    pub fn lids(&self) -> Vec<i64> {
        let mut out = vec![self.lid];
        for p in &self.parents {
            out.extend(p.lids());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The functions applied along the trace, root-first, deduplicated.
    pub fn functions(&self) -> Vec<(String, u32)> {
        let mut out: Vec<(String, u32)> = Vec::new();
        for e in &self.edges {
            let f = (e.func_id.clone(), e.ver_id);
            if !out.contains(&f) {
                out.push(f);
            }
        }
        for p in &self.parents {
            for f in p.functions() {
                if !out.contains(&f) {
                    out.push(f);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rebuilds the derivation of Fig. 2: raw file -> load_data -> joins ->
    /// gen_excitement_score row 1417.
    fn paper_like_store() -> LineageStore {
        let mut s = LineageStore::new();
        let l1 = s.alloc_lid();
        s.record(
            l1,
            None,
            Some("file://data/movies".into()),
            "ingest",
            1,
            DataKind::Table,
        )
        .unwrap();
        let l21 = s.alloc_lid();
        s.record(l21, Some(l1), None, "load_data", 1, DataKind::Table)
            .unwrap();
        let l940 = s.alloc_lid();
        s.record(
            l940,
            Some(l21),
            None,
            "populate_text_views",
            1,
            DataKind::Table,
        )
        .unwrap();
        let l941 = s.alloc_lid();
        s.record(
            l941,
            Some(l21),
            None,
            "populate_scene_views",
            1,
            DataKind::Table,
        )
        .unwrap();
        let l1274 = s.alloc_lid();
        // Two parents: one edge per parent, same child lid.
        s.record(
            l1274,
            Some(l940),
            None,
            "join_text_scene_graph",
            1,
            DataKind::Table,
        )
        .unwrap();
        s.record(
            l1274,
            Some(l941),
            None,
            "join_text_scene_graph",
            1,
            DataKind::Table,
        )
        .unwrap();
        let l1417 = s.alloc_lid();
        s.record(
            l1417,
            Some(l1274),
            None,
            "gen_excitement_score",
            1,
            DataKind::Row,
        )
        .unwrap();
        s
    }

    #[test]
    fn schema_matches_table3() {
        assert_eq!(
            lineage_schema().names(),
            vec![
                "lid",
                "parent_lid",
                "src_uri",
                "func_id",
                "ver_id",
                "data_type",
                "ts"
            ]
        );
    }

    #[test]
    fn multi_parent_children_and_parents() {
        let s = paper_like_store();
        // lid 5 is the join output with two parents (3 and 4).
        assert_eq!(s.parents(5), vec![3, 4]);
        assert_eq!(s.children(5), vec![6]);
        assert_eq!(s.children(2), vec![3, 4]);
    }

    #[test]
    fn trace_reaches_the_external_root() {
        let s = paper_like_store();
        let t = s.trace(6).unwrap();
        assert!(t.depth() >= 4);
        let lids = t.lids();
        assert!(lids.contains(&1));
        let funcs: Vec<String> = t.functions().into_iter().map(|(f, _)| f).collect();
        assert_eq!(funcs[0], "gen_excitement_score");
        assert!(funcs.contains(&"ingest".to_string()));
    }

    #[test]
    fn acyclicity_is_enforced_structurally() {
        let mut s = LineageStore::new();
        let a = s.alloc_lid();
        let b = s.alloc_lid();
        s.record(b, Some(a), None, "f", 1, DataKind::Row).unwrap();
        // A parent younger than (or equal to) the child is rejected.
        assert!(matches!(
            s.record(a, Some(b), None, "g", 1, DataKind::Row),
            Err(LineageError::ParentNotOlder { .. })
        ));
        assert!(s.record(a, Some(a), None, "g", 1, DataKind::Row).is_err());
    }

    #[test]
    fn unknown_lid_errors() {
        let s = paper_like_store();
        assert!(matches!(s.trace(999), Err(LineageError::UnknownLid(999))));
    }

    #[test]
    fn policies_control_recording() {
        // Off records nothing.
        let mut off = LineageStore::with_policy(LineagePolicy::Off);
        let l = off.alloc_lid();
        assert!(!off.record(l, None, None, "f", 1, DataKind::Row).unwrap());
        assert!(off.is_empty());

        // TableOnly drops row edges.
        let mut to = LineageStore::with_policy(LineagePolicy::TableOnly);
        let l1 = to.alloc_lid();
        assert!(to.record(l1, None, None, "f", 1, DataKind::Table).unwrap());
        let l2 = to.alloc_lid();
        assert!(!to
            .record(l2, Some(l1), None, "f", 1, DataKind::Row)
            .unwrap());
        assert_eq!(to.len(), 1);

        // Sampled(10) keeps ~1/10 row edges and all table edges.
        let mut sa = LineageStore::with_policy(LineagePolicy::Sampled(10));
        let root = sa.alloc_lid();
        sa.record(root, None, None, "f", 1, DataKind::Table)
            .unwrap();
        let mut kept = 0;
        for _ in 0..100 {
            let l = sa.alloc_lid();
            if sa
                .record(l, Some(root), None, "f", 1, DataKind::Row)
                .unwrap()
            {
                kept += 1;
            }
        }
        assert_eq!(kept, 10);
    }

    #[test]
    fn as_table_round_trips_fields() {
        let s = paper_like_store();
        let t = s.as_table().unwrap();
        assert_eq!(t.len(), s.len());
        assert_eq!(t.schema().names(), lineage_schema().names());
        // The external root row has NULL parent and a src_uri.
        let root = t.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert!(root[1].is_null());
        assert_eq!(root[2].as_str(), Some("file://data/movies"));
        assert_eq!(root[5].as_str(), Some("table"));
    }

    #[test]
    fn version_ids_flow_through() {
        let mut s = LineageStore::new();
        let a = s.alloc_lid();
        s.record(a, None, None, "classify_boring", 3, DataKind::Row)
            .unwrap();
        let e = s.edges_of(a)[0];
        assert_eq!(e.ver_id, 3);
        assert_eq!(e.func_id, "classify_boring");
    }

    #[test]
    fn dependency_pattern_mapping() {
        assert!(DependencyPattern::OneToOne.is_narrow());
        assert!(DependencyPattern::OneToMany.is_narrow());
        assert!(!DependencyPattern::ManyToOne.is_narrow());
        assert!(!DependencyPattern::ManyToMany.is_narrow());
        assert_eq!(DependencyPattern::OneToOne.data_kind(), DataKind::Row);
        assert_eq!(DependencyPattern::ManyToMany.data_kind(), DataKind::Table);
        assert_eq!(
            DependencyPattern::parse("many_to_one"),
            Some(DependencyPattern::ManyToOne)
        );
        assert_eq!(DependencyPattern::parse("nope"), None);
    }
}
