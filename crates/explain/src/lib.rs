//! KathDB's query result explainer (§5, Fig. 5).
//!
//! Exposes the full provenance of query results and makes it queryable in
//! NL. Two modes: **coarse** (a high-level overview of the transformations
//! the pipeline performed) and **fine-grained** (a per-`lid` account of how
//! every output field was derived, tracing parent tuples through the
//! versioned functions that produced them).

#![warn(missing_docs)]

use kath_exec::PhysicalPlan;
use kath_fao::{FunctionBody, FunctionRegistry};
use kath_lineage::{LineageError, LineageStore};
use kath_storage::{Catalog, Value};

/// The explainer: read-only views over the artifacts of one executed query.
pub struct Explainer<'a> {
    /// The executed physical plan.
    pub plan: &'a PhysicalPlan,
    /// The function registry (bodies + versions + notes).
    pub registry: &'a FunctionRegistry,
    /// The provenance store.
    pub lineage: &'a LineageStore,
    /// The catalog with all materialized intermediates.
    pub catalog: &'a Catalog,
}

impl<'a> Explainer<'a> {
    /// Builds an explainer over a finished query's artifacts.
    pub fn new(
        plan: &'a PhysicalPlan,
        registry: &'a FunctionRegistry,
        lineage: &'a LineageStore,
        catalog: &'a Catalog,
    ) -> Self {
        Self {
            plan,
            registry,
            lineage,
            catalog,
        }
    }

    /// Coarse-grained mode (Fig. 5 left): a numbered overview of every
    /// transformation in the pipeline, including how many versions each
    /// function went through.
    pub fn explain_pipeline(&self) -> String {
        let mut out = String::from("Pipeline overview:\n");
        for (i, node) in self.plan.nodes.iter().enumerate() {
            let line = match self.registry.get(&node.func_id) {
                Ok(entry) => {
                    let v = entry.active_version();
                    let versions = entry.versions.len();
                    let version_note = if versions > 1 {
                        format!(" [v{} of {}: {}]", v.ver_id, versions, v.note)
                    } else {
                        String::new()
                    };
                    format!(
                        "{}: {} — {}{}\n",
                        i + 1,
                        node.func_id,
                        v.body.summarize(),
                        version_note
                    )
                }
                Err(_) => format!("{}: {} (unregistered)\n", i + 1, node.func_id),
            };
            out.push_str(&line);
        }
        out
    }

    /// Fine-grained mode (Fig. 5 right): takes a specific `lid`, inspects
    /// the function implementations along its derivation, traces parent
    /// tuples, and shows how each computed field of the tuple was derived.
    pub fn explain_tuple(&self, lid: i64) -> Result<String, LineageError> {
        let trace = self.lineage.trace(lid)?;
        let mut out = format!("Derivation of tuple lid={lid}:\n");

        // Locate the tuple's row in a materialized table.
        let located = self.locate_row(lid);
        if let Some((table_name, row, schema_names)) = &located {
            out.push_str(&format!("  found in materialized view '{table_name}':\n"));
            for (name, value) in schema_names.iter().zip(row.iter()) {
                out.push_str(&format!("    {name}: {}\n", value.render()));
            }
            // Field derivations for computed columns: walk the trace's
            // functions and, for expression-valued bodies, show the formula
            // with the operand values substituted (Fig. 5's
            // "0.7 * 0.99999988 + 0.3 * 1.0 ≈ 0.99999992").
            out.push_str("  field derivations:\n");
            for (func_id, ver_id) in trace.functions() {
                let Ok(entry) = self.registry.get(&func_id) else {
                    continue;
                };
                let Some(version) = entry.version(ver_id) else {
                    continue;
                };
                match &version.body {
                    FunctionBody::MapExpr {
                        expr,
                        output_column,
                        ..
                    } => {
                        let value = schema_names
                            .iter()
                            .position(|n| n == output_column)
                            .map(|i| row[i].render())
                            .unwrap_or_else(|| "<not in this view>".into());
                        let substituted = substitute_operands(expr, schema_names, row);
                        out.push_str(&format!(
                            "    **{output_column}** (by {func_id} v{ver_id}): \
                             {substituted} ≈ {value}\n"
                        ));
                    }
                    FunctionBody::ConceptScore {
                        keywords,
                        output_column,
                        ..
                    } => {
                        let value = schema_names
                            .iter()
                            .position(|n| n == output_column)
                            .map(|i| row[i].render())
                            .unwrap_or_else(|| "<not in this view>".into());
                        let preview: Vec<&str> =
                            keywords.iter().take(4).map(String::as_str).collect();
                        out.push_str(&format!(
                            "    **{output_column}** (by {func_id} v{ver_id}): plot contains \
                             keywords related to \"{}\", etc.; score is {value}\n",
                            preview.join("\", \"")
                        ));
                    }
                    FunctionBody::VisualClassify {
                        output_column,
                        threshold,
                        implementation,
                        ..
                    } => {
                        let value = schema_names
                            .iter()
                            .position(|n| n == output_column)
                            .map(|i| row[i].render())
                            .unwrap_or_else(|| "<not in this view>".into());
                        out.push_str(&format!(
                            "    **{output_column}** (by {func_id} v{ver_id}): poster flagged \
                             {value} — visual interest vs threshold {threshold} using {}\n",
                            implementation.as_str()
                        ));
                    }
                    _ => {}
                }
            }
        } else {
            out.push_str("  (tuple not present in any materialized view)\n");
        }

        // Parent chain.
        out.push_str("  provenance chain:\n");
        render_trace(&trace, 2, &mut out);
        Ok(out)
    }

    /// NL question answering over the lineage and plan artifacts (§5:
    /// "the user can also ask NL queries over this lineage information").
    pub fn answer(&self, question: &str) -> String {
        let lower = question.to_lowercase();
        // "explain tuple 1621" / "why is tuple 1621 in the result"
        if let Some(lid) = extract_number(&lower) {
            if lower.contains("tuple") || lower.contains("row") || lower.contains("lid") {
                return self
                    .explain_tuple(lid)
                    .unwrap_or_else(|e| format!("cannot explain lid {lid}: {e}"));
            }
        }
        if lower.contains("pipeline") || lower.contains("whole query") || lower.contains("overview")
        {
            return self.explain_pipeline();
        }
        // "what produced column final_score"
        if lower.contains("column") || lower.contains("produced") {
            for name in self.registry.names() {
                let Ok(entry) = self.registry.get(name) else {
                    continue;
                };
                let out_col = match &entry.active_version().body {
                    FunctionBody::MapExpr { output_column, .. }
                    | FunctionBody::ConceptScore { output_column, .. }
                    | FunctionBody::VisualClassify { output_column, .. } => {
                        Some(output_column.clone())
                    }
                    _ => None,
                };
                if let Some(col) = out_col {
                    if lower.contains(&col.to_lowercase()) {
                        let v = entry.active_version();
                        return format!(
                            "Column '{col}' is produced by {name} (v{}): {}",
                            v.ver_id,
                            v.body.summarize()
                        );
                    }
                }
            }
        }
        // "how many versions of classify_boring"
        if lower.contains("version") {
            for name in self.registry.names() {
                if lower.contains(&name.to_lowercase()) {
                    let entry = self.registry.get(name).expect("name from registry");
                    let notes: Vec<String> = entry
                        .versions
                        .iter()
                        .map(|v| format!("v{} ({})", v.ver_id, v.note))
                        .collect();
                    return format!(
                        "{name} has {} version(s): {} — active: v{}",
                        entry.versions.len(),
                        notes.join(", "),
                        entry.active
                    );
                }
            }
        }
        format!(
            "I can explain: 'explain the pipeline', 'explain tuple <lid>', \
             'what produced column <name>', 'versions of <function>'. \
             (question was: {question})"
        )
    }

    /// Finds the materialized row carrying `lid` in its `lid` column,
    /// searching the most recent (later-plan) outputs first.
    fn locate_row(&self, lid: i64) -> Option<(String, Vec<Value>, Vec<String>)> {
        for node in self.plan.nodes.iter().rev() {
            let Ok(table) = self.catalog.get(&node.output) else {
                continue;
            };
            let Some(idx) = table.schema().index_of("lid") else {
                continue;
            };
            for row in table.rows() {
                if row[idx] == Value::Int(lid) {
                    return Some((
                        node.output.clone(),
                        row.clone(),
                        table
                            .schema()
                            .names()
                            .into_iter()
                            .map(String::from)
                            .collect(),
                    ));
                }
            }
        }
        None
    }
}

/// Substitutes column operands of an expression with the row's values:
/// `0.7 * excitement_score + 0.3 * recency_score` becomes
/// `0.7 * 0.99999988 + 0.3 * 1.0`.
fn substitute_operands(expr: &str, names: &[String], row: &[Value]) -> String {
    let mut out = expr.to_string();
    // Longest names first so `excitement_score` is replaced before `score`.
    let mut indexed: Vec<(usize, &String)> = names.iter().enumerate().collect();
    indexed.sort_by_key(|(_, n)| std::cmp::Reverse(n.len()));
    for (i, name) in indexed {
        if out.contains(name.as_str()) {
            out = out.replace(name.as_str(), &row[i].render());
        }
    }
    out
}

fn render_trace(trace: &kath_lineage::DerivationTrace, indent: usize, out: &mut String) {
    for edge in &trace.edges {
        out.push_str(&format!(
            "{}lid {} <- {} (by {} v{}, {})\n",
            "  ".repeat(indent),
            edge.lid,
            edge.parent_lid
                .map(|p| format!("parent lid {p}"))
                .unwrap_or_else(|| format!(
                    "external source {}",
                    edge.src_uri.as_deref().unwrap_or("<unknown>")
                )),
            edge.func_id,
            edge.ver_id,
            edge.data_type,
        ));
    }
    for parent in &trace.parents {
        render_trace(parent, indent + 1, out);
    }
}

fn extract_number(text: &str) -> Option<i64> {
    let mut current = String::new();
    for c in text.chars() {
        if c.is_ascii_digit() {
            current.push(c);
        } else if !current.is_empty() {
            break;
        }
    }
    current.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_exec::{execute_body, ExecContext, PhysicalNode};
    use kath_fao::FunctionSignature;
    use kath_model::{SimLlm, TokenMeter};
    use kath_storage::{DataType, Schema, Table};

    /// A two-step pipeline: recency score then weighted combine, enough to
    /// reproduce the Fig. 5 explanations.
    fn setup() -> (ExecContext, FunctionRegistry, PhysicalPlan) {
        let mut ctx = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
        let films = Table::from_rows(
            "films",
            Schema::of(&[
                ("id", DataType::Int),
                ("title", DataType::Str),
                ("year", DataType::Int),
                ("excitement_score", DataType::Float),
            ]),
            vec![
                vec![
                    1i64.into(),
                    "Guilty by Suspicion".into(),
                    1991i64.into(),
                    0.99999988.into(),
                ],
                vec![
                    2i64.into(),
                    "Clean and Sober".into(),
                    1988i64.into(),
                    0.973.into(),
                ],
            ],
        )
        .unwrap();
        ctx.ingest_table(films, "file://data/films").unwrap();
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new(
                "gen_recency_score",
                "newer scores higher",
                vec!["films".into()],
                "with_recency",
            ),
            FunctionBody::MapExpr {
                input: "films".into(),
                expr: "clamp01((year - 1975) / 16.0)".into(),
                output_column: "recency_score".into(),
            },
            "initial",
        );
        registry.register(
            FunctionSignature::new(
                "combine_score",
                "weighted sum",
                vec!["with_recency".into()],
                "combined",
            ),
            FunctionBody::MapExpr {
                input: "with_recency".into(),
                expr: "0.7 * excitement_score + 0.3 * recency_score".into(),
                output_column: "final_score".into(),
            },
            "initial",
        );
        let plan = PhysicalPlan {
            nodes: vec![
                PhysicalNode {
                    func_id: "gen_recency_score".into(),
                    output: "with_recency".into(),
                },
                PhysicalNode {
                    func_id: "combine_score".into(),
                    output: "combined".into(),
                },
            ],
        };
        for node in &plan.nodes {
            let body = registry
                .get(&node.func_id)
                .unwrap()
                .active_version()
                .body
                .clone();
            execute_body(&mut ctx, &node.func_id, 1, &body, &node.output).unwrap();
        }
        (ctx, registry, plan)
    }

    #[test]
    fn coarse_mode_numbers_every_step() {
        let (ctx, registry, plan) = setup();
        let snapshot = ctx.catalog.snapshot();
        let ex = Explainer::new(&plan, &registry, &ctx.lineage, &snapshot);
        let text = ex.explain_pipeline();
        assert!(text.contains("1: gen_recency_score"));
        assert!(text.contains("2: combine_score"));
        assert!(text.contains("0.7 * excitement_score"));
    }

    #[test]
    fn fine_mode_shows_weighted_sum_with_substituted_values() {
        let (ctx, registry, plan) = setup();
        let final_table = ctx.catalog.get("combined").unwrap();
        let lid_idx = final_table.schema().index_of("lid").unwrap();
        let lid = final_table.rows()[0][lid_idx].as_int().unwrap();
        let snapshot = ctx.catalog.snapshot();
        let ex = Explainer::new(&plan, &registry, &ctx.lineage, &snapshot);
        let text = ex.explain_tuple(lid).unwrap();
        // Fig. 5: the weighted sum appears with operand values substituted.
        assert!(text.contains("**final_score**"), "{text}");
        assert!(text.contains("0.7 * 0.99999988"), "{text}");
        assert!(text.contains("**recency_score**"), "{text}");
        assert!(text.contains("provenance chain"), "{text}");
        assert!(text.contains("external source file://data/films"), "{text}");
    }

    #[test]
    fn nl_questions_route_to_the_right_mode() {
        let (ctx, registry, plan) = setup();
        let snapshot = ctx.catalog.snapshot();
        let ex = Explainer::new(&plan, &registry, &ctx.lineage, &snapshot);
        assert!(ex
            .answer("Explain the pipeline?")
            .contains("Pipeline overview"));
        let final_table = ctx.catalog.get("combined").unwrap();
        let lid_idx = final_table.schema().index_of("lid").unwrap();
        let lid = final_table.rows()[0][lid_idx].as_int().unwrap();
        let a = ex.answer(&format!("Explain tuple {lid}?"));
        assert!(a.contains("Derivation of tuple"));
        let a = ex.answer("what produced column final_score?");
        assert!(a.contains("combine_score"));
        let a = ex.answer("how many versions of gen_recency_score are there?");
        assert!(a.contains("1 version(s)"));
        let a = ex.answer("sing a song");
        assert!(a.contains("I can explain"));
    }

    #[test]
    fn unknown_lid_is_reported() {
        let (ctx, registry, plan) = setup();
        let snapshot = ctx.catalog.snapshot();
        let ex = Explainer::new(&plan, &registry, &ctx.lineage, &snapshot);
        assert!(ex.explain_tuple(999_999).is_err());
        assert!(ex.answer("explain tuple 999999").contains("cannot explain"));
    }

    #[test]
    fn substitution_replaces_longest_names_first() {
        let names = vec!["score".to_string(), "excitement_score".to_string()];
        let row = vec![Value::Float(0.5), Value::Float(0.9)];
        let out = substitute_operands("0.7 * excitement_score + score", &names, &row);
        assert_eq!(out, "0.7 * 0.9 + 0.5");
    }
}
