//! Scene-graph views over images and videos (Table 1 of the paper).
//!
//! Visual content is represented as "objects interacting in space and time"
//! (§3, after EQUI-VOCAL): four relations — `Objects`, `Relationships`,
//! `Attributes`, `Frames` — with images treated as single-frame videos.

use kath_media::{Image, Video};
use kath_model::SimVlm;
use kath_storage::{DataType, Schema, StorageError, Table, Value};

/// The exact `Objects` schema of Table 1:
/// `Objects(vid, fid, oid, lid, cid, x_1, y_1, x_2, y_2)`.
pub fn objects_schema() -> Schema {
    Schema::of(&[
        ("vid", DataType::Int),
        ("fid", DataType::Int),
        ("oid", DataType::Int),
        ("lid", DataType::Int),
        ("cid", DataType::Str),
        ("x_1", DataType::Float),
        ("y_1", DataType::Float),
        ("x_2", DataType::Float),
        ("y_2", DataType::Float),
    ])
}

/// `Relationships(vid, fid, rid, lid, oid_i, pid, oid_j)` (Table 1).
pub fn relationships_schema() -> Schema {
    Schema::of(&[
        ("vid", DataType::Int),
        ("fid", DataType::Int),
        ("rid", DataType::Int),
        ("lid", DataType::Int),
        ("oid_i", DataType::Int),
        ("pid", DataType::Str),
        ("oid_j", DataType::Int),
    ])
}

/// `Attributes(vid, fid, oid, lid, k, v)` (Table 1).
pub fn attributes_schema() -> Schema {
    Schema::of(&[
        ("vid", DataType::Int),
        ("fid", DataType::Int),
        ("oid", DataType::Int),
        ("lid", DataType::Int),
        ("k", DataType::Str),
        ("v", DataType::Str),
    ])
}

/// `Frames(vid, fid, lid, pixels)` (Table 1). Pixels are represented by the
/// source URI of the frame descriptor (the paper itself stores "a file path
/// to the image stored on disk", §1).
pub fn frames_schema() -> Schema {
    Schema::of(&[
        ("vid", DataType::Int),
        ("fid", DataType::Int),
        ("lid", DataType::Int),
        ("pixels", DataType::Str),
    ])
}

/// The four materialized scene-graph views.
#[derive(Debug, Clone)]
pub struct SceneGraphViews {
    /// Detected objects.
    pub objects: Table,
    /// Object–object relationships.
    pub relationships: Table,
    /// Object attributes.
    pub attributes: Table,
    /// Frame registry.
    pub frames: Table,
}

impl SceneGraphViews {
    /// Empty views with the canonical names and schemas.
    pub fn empty() -> Self {
        Self {
            objects: Table::new("scene_objects", objects_schema()),
            relationships: Table::new("scene_relationships", relationships_schema()),
            attributes: Table::new("scene_attributes", attributes_schema()),
            frames: Table::new("scene_frames", frames_schema()),
        }
    }
}

/// Populates scene-graph views for one image (`vid` identifies it; images
/// are single-frame videos with `fid = 0`). Detection runs through the
/// provided vision model; `next_lid` allocates lineage ids.
///
/// Fails (without partial writes) when the image's format is unsupported —
/// the execution monitor catches this and repairs (§5).
pub fn populate_image(
    views: &mut SceneGraphViews,
    vid: i64,
    image: &Image,
    vlm: &SimVlm,
    next_lid: &mut impl FnMut() -> i64,
) -> Result<usize, SceneGraphError> {
    populate_frame(views, vid, 0, image, vlm, next_lid)
}

/// Populates scene-graph views for a whole video, one frame at a time.
/// Objects sharing a `track_id` keep the same `oid` across frames (§3).
pub fn populate_video(
    views: &mut SceneGraphViews,
    vid: i64,
    video: &Video,
    vlm: &SimVlm,
    next_lid: &mut impl FnMut() -> i64,
) -> Result<usize, SceneGraphError> {
    let mut total = 0;
    for (fid, frame) in video.frames.iter().enumerate() {
        total += populate_frame(views, vid, fid as i64, frame, vlm, next_lid)?;
    }
    Ok(total)
}

/// Errors from scene-graph population.
#[derive(Debug, Clone, PartialEq)]
pub enum SceneGraphError {
    /// Media decode/analysis failed (e.g. unsupported format).
    Media(kath_media::MediaError),
    /// The storage layer rejected a row.
    Storage(StorageError),
}

impl std::fmt::Display for SceneGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SceneGraphError::Media(e) => write!(f, "{e}"),
            SceneGraphError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SceneGraphError {}

impl From<kath_media::MediaError> for SceneGraphError {
    fn from(e: kath_media::MediaError) -> Self {
        SceneGraphError::Media(e)
    }
}

impl From<StorageError> for SceneGraphError {
    fn from(e: StorageError) -> Self {
        SceneGraphError::Storage(e)
    }
}

fn populate_frame(
    views: &mut SceneGraphViews,
    vid: i64,
    fid: i64,
    image: &Image,
    vlm: &SimVlm,
    next_lid: &mut impl FnMut() -> i64,
) -> Result<usize, SceneGraphError> {
    let detections = vlm.detect(image)?;

    views.frames.push(vec![
        Value::Int(vid),
        Value::Int(fid),
        Value::Int(next_lid()),
        Value::Str(image.uri.clone()),
    ])?;

    // Map from descriptor-object index → assigned oid, for relationships.
    // Track ids (videos) take priority so the same physical object keeps
    // one oid across frames; untracked objects get per-frame sequential ids
    // offset past the track range.
    let mut oid_of_index: Vec<Option<i64>> = vec![None; image.objects.len()];
    let mut next_seq = 10_000i64 + fid * 1_000;
    for det in &detections {
        // Find the descriptor index this detection came from (first
        // unclaimed object with the same class and box).
        let idx = image.objects.iter().enumerate().position(|(i, o)| {
            oid_of_index[i].is_none() && o.class == det.class && o.bbox == det.bbox
        });
        let Some(idx) = idx else { continue };
        let oid = match det.track_id {
            Some(t) => t as i64,
            None => {
                next_seq += 1;
                next_seq
            }
        };
        oid_of_index[idx] = Some(oid);
        views.objects.push(vec![
            Value::Int(vid),
            Value::Int(fid),
            Value::Int(oid),
            Value::Int(next_lid()),
            Value::Str(det.class.clone()),
            Value::Float(det.bbox.x1),
            Value::Float(det.bbox.y1),
            Value::Float(det.bbox.x2),
            Value::Float(det.bbox.y2),
        ])?;
        for (k, v) in &det.attributes {
            views.attributes.push(vec![
                Value::Int(vid),
                Value::Int(fid),
                Value::Int(oid),
                Value::Int(next_lid()),
                Value::Str(k.clone()),
                Value::Str(v.clone()),
            ])?;
        }
    }

    // Relationships: only between objects that were both detected.
    let mut rid = 0i64;
    for (si, pred, oi) in &image.relationships {
        if let (Some(Some(a)), Some(Some(b))) = (oid_of_index.get(*si), oid_of_index.get(*oi)) {
            views.relationships.push(vec![
                Value::Int(vid),
                Value::Int(fid),
                Value::Int(rid),
                Value::Int(next_lid()),
                Value::Int(*a),
                Value::Str(pred.clone()),
                Value::Int(*b),
            ])?;
            rid += 1;
        }
    }

    Ok(detections.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_media::{BBox, ImageObject, MediaFormat};
    use kath_model::TokenMeter;

    fn vlm() -> SimVlm {
        SimVlm::accurate(7, TokenMeter::new())
    }

    fn lid_counter() -> (impl FnMut() -> i64, std::rc::Rc<std::cell::Cell<i64>>) {
        let c = std::rc::Rc::new(std::cell::Cell::new(0i64));
        let c2 = std::rc::Rc::clone(&c);
        (
            move || {
                c2.set(c2.get() + 1);
                c2.get()
            },
            c,
        )
    }

    fn poster() -> Image {
        Image::new("file://posters/1.png", MediaFormat::Png)
            .with_object(ImageObject::new("person", BBox::new(0.1, 0.1, 0.5, 0.9)))
            .with_object(
                ImageObject::new("gun", BBox::new(0.45, 0.4, 0.6, 0.6)).with_attr("color", "black"),
            )
            .with_rel(0, "holds", 1)
    }

    #[test]
    fn schemas_match_table1_exactly() {
        assert_eq!(
            objects_schema().names(),
            vec!["vid", "fid", "oid", "lid", "cid", "x_1", "y_1", "x_2", "y_2"]
        );
        assert_eq!(
            relationships_schema().names(),
            vec!["vid", "fid", "rid", "lid", "oid_i", "pid", "oid_j"]
        );
        assert_eq!(
            attributes_schema().names(),
            vec!["vid", "fid", "oid", "lid", "k", "v"]
        );
        assert_eq!(frames_schema().names(), vec!["vid", "fid", "lid", "pixels"]);
    }

    #[test]
    fn image_population_fills_all_views() {
        let mut views = SceneGraphViews::empty();
        let (mut lid, counter) = lid_counter();
        let n = populate_image(&mut views, 9, &poster(), &vlm(), &mut lid).unwrap();
        assert_eq!(n, 2);
        assert_eq!(views.objects.len(), 2);
        assert_eq!(views.frames.len(), 1);
        assert_eq!(views.attributes.len(), 1);
        assert_eq!(views.relationships.len(), 1);
        // Every row consumed a fresh lid.
        assert_eq!(counter.get() as usize, 1 + 2 + 1 + 1);
        // Images are single-frame videos: fid = 0.
        assert_eq!(views.objects.cell(0, "fid").unwrap(), &Value::Int(0));
        assert_eq!(views.objects.cell(0, "vid").unwrap(), &Value::Int(9));
    }

    #[test]
    fn relationship_links_detected_oids() {
        let mut views = SceneGraphViews::empty();
        let (mut lid, _) = lid_counter();
        populate_image(&mut views, 1, &poster(), &vlm(), &mut lid).unwrap();
        let rel = views.relationships.row(0).unwrap().clone();
        let oid_i = rel[4].as_int().unwrap();
        let oid_j = rel[6].as_int().unwrap();
        let oids: Vec<i64> = views
            .objects
            .rows()
            .iter()
            .map(|r| r[2].as_int().unwrap())
            .collect();
        assert!(oids.contains(&oid_i));
        assert!(oids.contains(&oid_j));
        assert_eq!(rel[5].as_str(), Some("holds"));
    }

    #[test]
    fn unsupported_format_fails_population() {
        let mut views = SceneGraphViews::empty();
        let (mut lid, _) = lid_counter();
        let heic = poster().convert_to(MediaFormat::Heic);
        let err = populate_image(&mut views, 1, &heic, &vlm(), &mut lid);
        assert!(matches!(err, Err(SceneGraphError::Media(_))));
        assert!(views.frames.is_empty());
    }

    #[test]
    fn video_tracks_share_oid_across_frames() {
        let mut obj = ImageObject::new("person", BBox::new(0.1, 0.1, 0.4, 0.4));
        obj.track_id = Some(77);
        let video = Video::new("vid://1")
            .with_frame(Image::new("f0.png", MediaFormat::Png).with_object(obj.clone()))
            .with_frame(Image::new("f1.png", MediaFormat::Png).with_object(obj));
        let mut views = SceneGraphViews::empty();
        let (mut lid, _) = lid_counter();
        populate_video(&mut views, 5, &video, &vlm(), &mut lid).unwrap();
        assert_eq!(views.objects.len(), 2);
        assert_eq!(views.frames.len(), 2);
        for r in views.objects.rows() {
            assert_eq!(r[2], Value::Int(77)); // same oid both frames
        }
        // Distinct fids.
        assert_ne!(views.objects.rows()[0][1], views.objects.rows()[1][1]);
    }

    #[test]
    fn noisy_vlm_drops_relationships_of_missed_objects() {
        // recall 0 → nothing detected → no objects, no relationships, but the
        // frame row is still registered.
        let vlm = SimVlm::with_recall(0.0, 10, 1, TokenMeter::new());
        let mut views = SceneGraphViews::empty();
        let (mut lid, _) = lid_counter();
        let n = populate_image(&mut views, 1, &poster(), &vlm, &mut lid).unwrap();
        assert_eq!(n, 0);
        assert_eq!(views.objects.len(), 0);
        assert_eq!(views.relationships.len(), 0);
        assert_eq!(views.frames.len(), 1);
    }
}
