//! Text semantic-graph views (Table 2 of the paper).
//!
//! A textual corpus is represented by entities, their mentions (with
//! character spans), relationships, attributes, and the raw texts. The key
//! semantic move is entity resolution: "Taylor" and "Mrs. Swift" get
//! different `mid`s but share an `eid` (§3), so queries that group by entity
//! avoid double counting.

use kath_media::Document;
use kath_model::ner::{extract_mentions, resolve_entities};
use kath_model::SimLlm;
use kath_storage::{DataType, Schema, StorageError, Table, Value};

/// `Entities(did, eid, lid, cid)` (Table 2).
pub fn entities_schema() -> Schema {
    Schema::of(&[
        ("did", DataType::Int),
        ("eid", DataType::Int),
        ("lid", DataType::Int),
        ("cid", DataType::Str),
    ])
}

/// `Mentions(did, sid, mid, lid, eid, span1, span2)` (Table 2).
pub fn mentions_schema() -> Schema {
    Schema::of(&[
        ("did", DataType::Int),
        ("sid", DataType::Int),
        ("mid", DataType::Int),
        ("lid", DataType::Int),
        ("eid", DataType::Int),
        ("span1", DataType::Int),
        ("span2", DataType::Int),
    ])
}

/// `Relationships(did, sid, rid, lid, eid_i, pid, eid_j)` (Table 2).
pub fn relationships_schema() -> Schema {
    Schema::of(&[
        ("did", DataType::Int),
        ("sid", DataType::Int),
        ("rid", DataType::Int),
        ("lid", DataType::Int),
        ("eid_i", DataType::Int),
        ("pid", DataType::Str),
        ("eid_j", DataType::Int),
    ])
}

/// `Attributes(did, sid, eid, lid, k, v)` (Table 2).
pub fn attributes_schema() -> Schema {
    Schema::of(&[
        ("did", DataType::Int),
        ("sid", DataType::Int),
        ("eid", DataType::Int),
        ("lid", DataType::Int),
        ("k", DataType::Str),
        ("v", DataType::Str),
    ])
}

/// `Texts(did, lid, chars)` (Table 2).
pub fn texts_schema() -> Schema {
    Schema::of(&[
        ("did", DataType::Int),
        ("lid", DataType::Int),
        ("chars", DataType::Str),
    ])
}

/// The five materialized text-graph views.
#[derive(Debug, Clone)]
pub struct TextGraphViews {
    /// Resolved entities.
    pub entities: Table,
    /// Entity mentions with character spans.
    pub mentions: Table,
    /// Entity–entity relationships.
    pub relationships: Table,
    /// Entity attributes.
    pub attributes: Table,
    /// Raw text registry.
    pub texts: Table,
}

impl TextGraphViews {
    /// Empty views with the canonical names and schemas.
    pub fn empty() -> Self {
        Self {
            entities: Table::new("text_entities", entities_schema()),
            mentions: Table::new("text_mentions", mentions_schema()),
            relationships: Table::new("text_relationships", relationships_schema()),
            attributes: Table::new("text_attributes", attributes_schema()),
            texts: Table::new("text_texts", texts_schema()),
        }
    }
}

/// Verb patterns that induce relationships between two entities mentioned in
/// the same sentence: `(surface verb, pid)`.
const RELATION_PATTERNS: [(&str, &str); 6] = [
    ("directed", "director_of"),
    ("produced", "producer_of"),
    ("starred in", "star_of"),
    ("married", "spouse_of"),
    ("wrote", "writer_of"),
    ("met", "met"),
];

/// Populates the text-graph views for one document identified by `did`.
/// Entity resolution and class assignment run through the simulated model's
/// NER stack; `next_lid` allocates lineage ids. Returns the entity count.
pub fn populate_document(
    views: &mut TextGraphViews,
    did: i64,
    doc: &Document,
    llm: &SimLlm,
    next_lid: &mut impl FnMut() -> i64,
) -> Result<usize, StorageError> {
    let sentences = doc.sentences();
    let mentions = extract_mentions(&sentences);
    let entities = resolve_entities(mentions, llm.knowledge());

    views.texts.push(vec![
        Value::Int(did),
        Value::Int(next_lid()),
        Value::Str(doc.text.clone()),
    ])?;

    let mut mid = 0i64;
    for ent in &entities {
        views.entities.push(vec![
            Value::Int(did),
            Value::Int(ent.id as i64),
            Value::Int(next_lid()),
            Value::Str(ent.class.clone()),
        ])?;
        for m in &ent.mentions {
            views.mentions.push(vec![
                Value::Int(did),
                Value::Int(m.sentence as i64),
                Value::Int(mid),
                Value::Int(next_lid()),
                Value::Int(ent.id as i64),
                Value::Int(m.span1 as i64),
                Value::Int(m.span2 as i64),
            ])?;
            mid += 1;
        }
    }

    // Relationships: verb patterns between two entity mentions within one
    // sentence, in textual order. Mention spans are document offsets; the
    // verb position is sentence-local, so shift by the sentence start.
    let mut rid = 0i64;
    for (si, (sstart, _send, stext)) in sentences.iter().enumerate() {
        let lower = stext.to_lowercase();
        // Non-pronoun mentions of this sentence as (local offset, eid).
        let local_mentions: Vec<(usize, usize)> = entities
            .iter()
            .flat_map(|e| e.mentions.iter().map(move |m| (e.id, m)))
            .filter(|(_, m)| m.sentence == si && !m.pronoun)
            .map(|(id, m)| (m.span1.saturating_sub(*sstart), id))
            .collect();
        for (verb, pid) in RELATION_PATTERNS {
            let Some(vpos) = lower.find(verb) else {
                continue;
            };
            // Subject: mention closest before the verb; object: first
            // mention after it.
            let subj = local_mentions
                .iter()
                .filter(|(off, _)| *off < vpos)
                .max_by_key(|(off, _)| *off)
                .map(|(_, id)| *id);
            let obj = local_mentions
                .iter()
                .filter(|(off, _)| *off > vpos)
                .min_by_key(|(off, _)| *off)
                .map(|(_, id)| *id);
            if let (Some(ei), Some(ej)) = (subj, obj) {
                if ei != ej {
                    views.relationships.push(vec![
                        Value::Int(did),
                        Value::Int(si as i64),
                        Value::Int(rid),
                        Value::Int(next_lid()),
                        Value::Int(ei as i64),
                        Value::Str(pid.to_string()),
                        Value::Int(ej as i64),
                    ])?;
                    rid += 1;
                }
            }
        }
        // Attribute pattern: "<entity> ... budget of <amount>", attached to
        // the first entity mentioned in the sentence.
        if let Some(bpos) = lower.find("budget of ") {
            let amount: String = stext[bpos + "budget of ".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '.' || *c == '$')
                .collect();
            let first = local_mentions
                .iter()
                .min_by_key(|(off, _)| *off)
                .map(|(_, id)| *id);
            if let (Some(eid), false) = (first, amount.is_empty()) {
                views.attributes.push(vec![
                    Value::Int(did),
                    Value::Int(si as i64),
                    Value::Int(eid as i64),
                    Value::Int(next_lid()),
                    Value::Str("movie_budget".to_string()),
                    Value::Str(amount),
                ])?;
            }
        }
    }

    Ok(entities.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kath_model::TokenMeter;

    fn llm() -> SimLlm {
        SimLlm::new(42, TokenMeter::new())
    }

    fn lid() -> impl FnMut() -> i64 {
        let mut c = 0i64;
        move || {
            c += 1;
            c
        }
    }

    #[test]
    fn schemas_match_table2_exactly() {
        assert_eq!(entities_schema().names(), vec!["did", "eid", "lid", "cid"]);
        assert_eq!(
            mentions_schema().names(),
            vec!["did", "sid", "mid", "lid", "eid", "span1", "span2"]
        );
        assert_eq!(
            relationships_schema().names(),
            vec!["did", "sid", "rid", "lid", "eid_i", "pid", "eid_j"]
        );
        assert_eq!(
            attributes_schema().names(),
            vec!["did", "sid", "eid", "lid", "k", "v"]
        );
        assert_eq!(texts_schema().names(), vec!["did", "lid", "chars"]);
    }

    #[test]
    fn entity_resolution_shares_eid_across_mentions() {
        let mut views = TextGraphViews::empty();
        let doc = Document::new(
            "doc://1",
            "Taylor Swift released an album. Mrs. Swift then toured the world.",
        );
        let mut gen = lid();
        populate_document(&mut views, 1, &doc, &llm(), &mut gen).unwrap();
        // One Swift entity...
        let swift_rows: Vec<_> = views
            .entities
            .rows()
            .iter()
            .filter(|r| r[3].as_str() == Some("person"))
            .collect();
        assert_eq!(swift_rows.len(), 1);
        let eid = swift_rows[0][1].clone();
        // ...with at least two mentions carrying distinct mids.
        let mentions: Vec<_> = views
            .mentions
            .rows()
            .iter()
            .filter(|r| r[4] == eid)
            .collect();
        assert!(mentions.len() >= 2);
        assert_ne!(mentions[0][2], mentions[1][2]); // different mid
    }

    #[test]
    fn mention_spans_are_document_offsets() {
        let mut views = TextGraphViews::empty();
        let text = "Irwin Winkler directed Guilty by Suspicion.";
        let doc = Document::new("doc://2", text);
        let mut gen = lid();
        populate_document(&mut views, 2, &doc, &llm(), &mut gen).unwrap();
        for row in views.mentions.rows() {
            let (a, b) = (
                row[5].as_int().unwrap() as usize,
                row[6].as_int().unwrap() as usize,
            );
            assert!(b <= text.len() && a < b);
        }
    }

    #[test]
    fn director_relationship_extracted_as_in_paper() {
        // §3: entity "Irwin Winkler" has relationship "director_of" with
        // movie entity "Guilty by Suspicion".
        let mut views = TextGraphViews::empty();
        let doc = Document::new("doc://3", "Irwin Winkler directed Guilty by Suspicion.");
        let mut gen = lid();
        populate_document(&mut views, 3, &doc, &llm(), &mut gen).unwrap();
        assert_eq!(views.relationships.len(), 1, "{:?}", views.relationships);
        let rel = views.relationships.row(0).unwrap();
        assert_eq!(rel[5].as_str(), Some("director_of"));
        let eid_i = rel[4].as_int().unwrap();
        // Subject must be the Winkler entity.
        let winkler = views
            .entities
            .rows()
            .iter()
            .position(|r| r[3].as_str() == Some("person"))
            .unwrap();
        assert_eq!(views.entities.rows()[winkler][1].as_int().unwrap(), eid_i);
    }

    #[test]
    fn budget_attribute_extracted() {
        let mut views = TextGraphViews::empty();
        let doc = Document::new(
            "doc://4",
            "Guilty by Suspicion had a budget of 13M according to reports.",
        );
        let mut gen = lid();
        populate_document(&mut views, 4, &doc, &llm(), &mut gen).unwrap();
        assert_eq!(views.attributes.len(), 1);
        let a = views.attributes.row(0).unwrap();
        assert_eq!(a[4].as_str(), Some("movie_budget"));
        assert_eq!(a[5].as_str(), Some("13M"));
    }

    #[test]
    fn texts_view_keeps_raw_content() {
        let mut views = TextGraphViews::empty();
        let doc = Document::new("doc://5", "Plain text without entities here.");
        let mut gen = lid();
        populate_document(&mut views, 5, &doc, &llm(), &mut gen).unwrap();
        assert_eq!(views.texts.len(), 1);
        assert_eq!(
            views.texts.cell(0, "chars").unwrap().as_str(),
            Some("Plain text without entities here.")
        );
    }

    #[test]
    fn multiple_documents_accumulate() {
        let mut views = TextGraphViews::empty();
        let mut gen = lid();
        for d in 0..3i64 {
            let doc = Document::new(format!("doc://{d}"), "Robert De Niro stars.");
            populate_document(&mut views, d, &doc, &llm(), &mut gen).unwrap();
        }
        assert_eq!(views.texts.len(), 3);
        assert_eq!(views.entities.len(), 3);
        // eids are per-document (paper: unique within corpus per doc scope).
        let dids: Vec<i64> = views
            .entities
            .rows()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(dids, vec![0, 1, 2]);
    }
}
