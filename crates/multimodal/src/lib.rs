//! KathDB multimodal view layer.
//!
//! Implements the paper's unified relational data model (§3): scene graphs
//! over images/videos (Table 1) and text semantic graphs (Table 2), plus the
//! view-population pipelines that run the simulated vision/language models
//! over media and materialize the views.

#![warn(missing_docs)]

mod scene_graph;
mod text_graph;

pub use scene_graph::{
    attributes_schema as scene_attributes_schema, frames_schema, objects_schema, populate_image,
    populate_video, relationships_schema as scene_relationships_schema, SceneGraphError,
    SceneGraphViews,
};
pub use text_graph::{
    attributes_schema as text_attributes_schema, entities_schema, mentions_schema,
    populate_document, relationships_schema as text_relationships_schema, texts_schema,
    TextGraphViews,
};
