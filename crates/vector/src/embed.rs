//! Deterministic text embeddings.
//!
//! The paper's excitement scorer "computes excitement scores by measuring
//! vector similarity between keywords (e.g., gun, murder, …) and all
//! extracted text entities" (§6). A hosted embedding model is replaced by a
//! *lexicon-clustered hash embedder*: every token gets a pseudo-random unit
//! vector from its hash, and tokens that belong to the same lexicon concept
//! are pulled toward that concept's centroid. The result preserves exactly
//! the property the pipeline needs — related words ("gun", "weapon",
//! "shootout") are mutually similar, unrelated words are not — while being
//! fully deterministic and offline.

/// Embedding dimensionality.
pub const DIM: usize = 64;

/// A dense embedding vector.
pub type Embedding = Vec<f32>;

/// Deterministic 64-bit hash (FNV-1a); avoids `std` hasher instability
/// across runs/platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Generates a unit vector pseudo-randomly from a seed (splitmix64 stream).
pub fn seeded_unit_vector(seed: u64) -> Embedding {
    let mut state = seed;
    let mut v: Vec<f32> = (0..DIM)
        .map(|_| {
            // splitmix64 step
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            // Map to roughly N(0,1) via sum of uniforms (CLT over 2 halves).
            let u1 = (z >> 11) as f64 / (1u64 << 53) as f64;
            (u1 - 0.5) as f32
        })
        .collect();
    normalize(&mut v);
    v
}

/// Normalizes a vector in place; leaves the zero vector untouched.
pub fn normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// A concept lexicon: concept name → member terms. Terms of one concept
/// embed near each other.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    concepts: Vec<(String, Vec<String>)>,
}

impl Lexicon {
    /// An empty lexicon (pure hash embeddings).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a concept with member terms (builder style).
    pub fn with_concept<S: Into<String>>(
        mut self,
        name: impl Into<String>,
        terms: impl IntoIterator<Item = S>,
    ) -> Self {
        self.concepts.push((
            name.into(),
            terms.into_iter().map(|t| t.into().to_lowercase()).collect(),
        ));
        self
    }

    /// The concept a term belongs to, if any.
    pub fn concept_of(&self, term: &str) -> Option<&str> {
        let t = term.to_lowercase();
        self.concepts
            .iter()
            .find(|(_, terms)| terms.contains(&t))
            .map(|(name, _)| name.as_str())
    }

    /// All concept names.
    pub fn concepts(&self) -> impl Iterator<Item = &str> {
        self.concepts.iter().map(|(n, _)| n.as_str())
    }

    /// Terms of a concept.
    pub fn terms_of(&self, concept: &str) -> Option<&[String]> {
        self.concepts
            .iter()
            .find(|(n, _)| n == concept)
            .map(|(_, t)| t.as_slice())
    }
}

/// The lexicon-clustered text embedder.
#[derive(Debug, Clone)]
pub struct TextEmbedder {
    lexicon: Lexicon,
    /// How strongly lexicon terms are pulled to their concept centroid.
    cluster_strength: f32,
    /// Base seed separating unrelated embedder instances.
    seed: u64,
}

impl TextEmbedder {
    /// Builds an embedder over `lexicon`.
    pub fn new(lexicon: Lexicon, seed: u64) -> Self {
        Self {
            lexicon,
            cluster_strength: 0.85,
            seed,
        }
    }

    /// Embeds one token.
    pub fn embed_token(&self, token: &str) -> Embedding {
        let t = token.to_lowercase();
        let noise = seeded_unit_vector(self.seed ^ fnv1a(t.as_bytes()));
        match self.lexicon.concept_of(&t) {
            None => noise,
            Some(concept) => {
                let centroid = seeded_unit_vector(self.seed ^ fnv1a(concept.as_bytes()) ^ 0xC0FFEE);
                let a = self.cluster_strength;
                let mut v: Vec<f32> = centroid
                    .iter()
                    .zip(&noise)
                    .map(|(c, n)| a * c + (1.0 - a) * n)
                    .collect();
                normalize(&mut v);
                v
            }
        }
    }

    /// Embeds a phrase as the normalized mean of token embeddings.
    /// Empty/whitespace input embeds to the zero vector.
    pub fn embed(&self, text: &str) -> Embedding {
        let tokens: Vec<&str> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .collect();
        if tokens.is_empty() {
            return vec![0.0; DIM];
        }
        let mut acc = vec![0.0f32; DIM];
        for t in &tokens {
            for (a, b) in acc.iter_mut().zip(self.embed_token(t)) {
                *a += b;
            }
        }
        normalize(&mut acc);
        acc
    }

    /// The lexicon in use.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }
}

/// Seed of the canonical shared embedder behind [`embed_query`]. One fixed
/// seed means stored `EMBED(...)` blobs, `SIMILARITY(col, 'query')`
/// expressions, and the catalog's vector indexes all live in the same
/// embedding space.
pub const QUERY_EMBED_SEED: u64 = 7;

/// Embeds text with the canonical default-lexicon embedder — the single
/// embedding convention the SQL surface and the vector indexes share.
pub fn embed_query(text: &str) -> Embedding {
    use std::sync::OnceLock;
    static EMBEDDER: OnceLock<TextEmbedder> = OnceLock::new();
    EMBEDDER
        .get_or_init(|| TextEmbedder::new(default_lexicon(), QUERY_EMBED_SEED))
        .embed(text)
}

/// A small built-in lexicon for tests and the default pipeline: concepts the
/// flagship query needs ("excitement" keywords from §6 plus contrast sets).
pub fn default_lexicon() -> Lexicon {
    Lexicon::new()
        .with_concept(
            "violence",
            [
                "gun",
                "murder",
                "weapon",
                "shootout",
                "kill",
                "attack",
                "fight",
                "threat",
                "death",
                "knife",
                "explosion",
                "chase",
            ],
        )
        .with_concept(
            "danger",
            [
                "danger",
                "jump",
                "fall",
                "crash",
                "fire",
                "escape",
                "plane",
                "cliff",
                "motorcycle",
                "storm",
            ],
        )
        .with_concept(
            "calm",
            [
                "calm", "quiet", "peaceful", "garden", "tea", "walk", "routine", "plain",
                "ordinary", "mundane",
            ],
        )
        .with_concept(
            "romance",
            ["love", "romance", "kiss", "wedding", "heart", "date"],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::cosine;

    fn embedder() -> TextEmbedder {
        TextEmbedder::new(default_lexicon(), 42)
    }

    #[test]
    fn embeddings_are_deterministic() {
        let e = embedder();
        assert_eq!(e.embed("gun fight"), e.embed("gun fight"));
        let e2 = TextEmbedder::new(default_lexicon(), 42);
        assert_eq!(e.embed("murder"), e2.embed("murder"));
    }

    #[test]
    fn same_concept_terms_are_similar() {
        let e = embedder();
        let sim_related = cosine(&e.embed("gun"), &e.embed("murder"));
        let sim_unrelated = cosine(&e.embed("gun"), &e.embed("tea"));
        assert!(
            sim_related > 0.5,
            "related terms should be similar, got {sim_related}"
        );
        assert!(
            sim_related > sim_unrelated + 0.3,
            "related {sim_related} vs unrelated {sim_unrelated}"
        );
    }

    #[test]
    fn case_insensitive() {
        let e = embedder();
        assert_eq!(e.embed("GUN"), e.embed("gun"));
    }

    #[test]
    fn unknown_words_are_stable_but_unclustered() {
        let e = embedder();
        let a = e.embed_token("zxqw");
        assert_eq!(a, e.embed_token("zxqw"));
        let b = e.embed_token("vbnm");
        assert!(cosine(&a, &b).abs() < 0.5);
    }

    #[test]
    fn phrase_embedding_is_unit_or_zero() {
        let e = embedder();
        let v = e.embed("a man jumped off a plane");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        let z = e.embed("   ");
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn lexicon_lookup() {
        let l = default_lexicon();
        assert_eq!(l.concept_of("Gun"), Some("violence"));
        assert_eq!(l.concept_of("unknown"), None);
        assert!(l
            .terms_of("violence")
            .unwrap()
            .contains(&"murder".to_string()));
        assert!(l.concepts().count() >= 4);
    }

    #[test]
    fn seeded_unit_vectors_differ_by_seed() {
        let a = seeded_unit_vector(1);
        let b = seeded_unit_vector(2);
        assert_ne!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }
}
