//! KathDB vector-similarity substrate.
//!
//! Provides the deterministic text embedder (the reproduction's stand-in for
//! a hosted embedding model — see DESIGN.md §1), similarity measures, and
//! exact/ANN indexes used by FAO bodies of the `VectorScore` kind
//! ("vector-based similarity search for semantic keyword matching", §2.2).

#![warn(missing_docs)]

mod embed;
mod index;
mod sim;

pub use embed::{
    default_lexicon, embed_query, fnv1a, normalize, seeded_unit_vector, Embedding, Lexicon,
    TextEmbedder, DIM, QUERY_EMBED_SEED,
};
pub use index::{FlatIndex, Hit, IvfIndex};
pub use sim::{cosine, dot, l2};
