//! Vector indexes: exact flat search and IVF (inverted-file) ANN.
//!
//! KathDB's physical optimizer chooses between implementations of the same
//! logical operator (§4); for "vector-based similarity search for semantic
//! keyword matching" (§2.2) the choice is exact-but-linear vs
//! approximate-but-sublinear, which `bench_vector_index` measures.

use crate::sim::cosine;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Identifier supplied at insert time.
    pub id: u64,
    /// Cosine similarity to the query.
    pub score: f32,
}

// Max-heap ordering by score, tie-broken by id for determinism.
#[derive(PartialEq)]
struct HeapEntry(f32, u64);

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .total_cmp(&other.0)
            .then(other.1.cmp(&self.1))
            .reverse() // min-heap: smallest score at top for top-k pruning
    }
}

fn top_k(candidates: impl Iterator<Item = (u64, f32)>, k: usize) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (id, score) in candidates {
        // Non-finite scores are no-matches: `total_cmp` would rank NaN
        // above every real score, letting one corrupt embedding win every
        // query. Skip them instead.
        if !score.is_finite() {
            continue;
        }
        heap.push(HeapEntry(score, id));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut hits: Vec<Hit> = heap
        .into_iter()
        .map(|HeapEntry(score, id)| Hit { id, score })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    hits
}

/// Exact top-k search by linear scan.
#[derive(Debug, Clone, Default)]
pub struct FlatIndex {
    entries: Vec<(u64, Vec<f32>)>,
}

impl FlatIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a vector under `id`.
    pub fn insert(&mut self, id: u64, vector: Vec<f32>) {
        self.entries.push((id, vector));
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact top-k by cosine similarity.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        top_k(
            self.entries.iter().map(|(id, v)| (*id, cosine(query, v))),
            k,
        )
    }
}

/// IVF approximate index: vectors are partitioned into clusters by a few
/// rounds of k-means (seeded, deterministic); queries probe only the
/// `nprobe` nearest clusters.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<(u64, Vec<f32>)>>,
    /// Number of clusters probed per query.
    pub nprobe: usize,
}

impl IvfIndex {
    /// Builds the index over `(id, vector)` pairs with `nlist` clusters.
    /// `seed` fixes the k-means initialization.
    pub fn build(entries: Vec<(u64, Vec<f32>)>, nlist: usize, nprobe: usize, seed: u64) -> Self {
        let nlist = nlist.clamp(1, entries.len().max(1));
        // Deterministic init: spread over the data by a seeded stride,
        // linear-probing past already-used entries so every centroid starts
        // from a *distinct* vector (the raw stride can collide, which used
        // to seed duplicate centroids and permanently empty clusters).
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(nlist);
        if entries.is_empty() {
            centroids.push(Vec::new());
        } else {
            let n = entries.len();
            let mut used = vec![false; n];
            for i in 0..nlist {
                let mut idx = ((seed as usize)
                    .wrapping_mul(2654435761)
                    .wrapping_add(i * 97))
                    % n;
                while used[idx] {
                    idx = (idx + 1) % n;
                }
                used[idx] = true;
                centroids.push(entries[idx].1.clone());
            }
        }
        // A few Lloyd iterations are enough for recall purposes.
        for _ in 0..4 {
            if entries.is_empty() {
                break;
            }
            let dim = entries[0].1.len();
            let mut sums = vec![vec![0.0f32; dim]; nlist];
            let mut counts = vec![0usize; nlist];
            let mut assign = vec![0usize; entries.len()];
            for (e, (_, v)) in entries.iter().enumerate() {
                let c = nearest_centroid(&centroids, v);
                assign[e] = c;
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(v) {
                    *s += x;
                }
            }
            for (c, sum) in sums.into_iter().enumerate() {
                if counts[c] > 0 {
                    centroids[c] = sum.into_iter().map(|x| x / counts[c] as f32).collect();
                }
            }
            // Repair empty clusters: an unrepaired empty cluster keeps its
            // stale centroid forever, wasting a probe slot and degrading
            // recall. Reseed each from the largest cluster's farthest
            // member (deterministic tie-breaks: lowest index).
            for c in 0..nlist {
                if counts[c] > 0 {
                    continue;
                }
                let mut donor = 0usize;
                for d in 1..nlist {
                    if counts[d] > counts[donor] {
                        donor = d;
                    }
                }
                if counts[donor] <= 1 {
                    continue; // nothing left to split
                }
                let mut farthest: Option<(usize, f32)> = None;
                for (e, (_, v)) in entries.iter().enumerate() {
                    if assign[e] != donor {
                        continue;
                    }
                    let s = cosine(&centroids[donor], v);
                    let s = if s.is_finite() { s } else { f32::NEG_INFINITY };
                    if farthest.is_none_or(|(_, best)| s < best) {
                        farthest = Some((e, s));
                    }
                }
                if let Some((e, _)) = farthest {
                    centroids[c] = entries[e].1.clone();
                    assign[e] = c;
                    counts[c] += 1;
                    counts[donor] -= 1;
                }
            }
        }
        let mut lists: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); nlist];
        for (id, v) in entries {
            let c = nearest_centroid(&centroids, &v);
            lists[c].push((id, v));
        }
        Self {
            centroids,
            lists,
            nprobe: nprobe.clamp(1, nlist),
        }
    }

    /// Total vectors indexed.
    pub fn len(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Vectors per cluster (diagnostics; empty clusters waste probe slots).
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(Vec::len).collect()
    }

    /// Approximate top-k: probes the `nprobe` closest clusters.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut ranked: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, cosine(query, c)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let probe = ranked.iter().take(self.nprobe).map(|(i, _)| *i);
        top_k(
            probe.flat_map(|i| self.lists[i].iter().map(|(id, v)| (*id, cosine(query, v)))),
            k,
        )
    }
}

fn nearest_centroid(centroids: &[Vec<f32>], v: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_sim = f32::NEG_INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let s = cosine(c, v);
        if s > best_sim {
            best_sim = s;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{default_lexicon, seeded_unit_vector, TextEmbedder};

    #[test]
    fn flat_search_exact_order() {
        let e = TextEmbedder::new(default_lexicon(), 7);
        let mut ix = FlatIndex::new();
        ix.insert(1, e.embed("gun"));
        ix.insert(2, e.embed("tea"));
        ix.insert(3, e.embed("murder"));
        let hits = ix.search(&e.embed("weapon"), 2);
        assert_eq!(hits.len(), 2);
        // The violence-cluster entries must outrank "tea".
        assert!(hits.iter().all(|h| h.id != 2));
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn top_k_respects_k_and_ties() {
        let mut ix = FlatIndex::new();
        let v = seeded_unit_vector(5);
        for id in 0..10 {
            ix.insert(id, v.clone()); // all identical: ties broken by id
        }
        let hits = ix.search(&v, 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn k_zero_and_empty_index() {
        let ix = FlatIndex::new();
        assert!(ix.search(&seeded_unit_vector(1), 5).is_empty());
        let mut ix2 = FlatIndex::new();
        ix2.insert(1, seeded_unit_vector(1));
        assert!(ix2.search(&seeded_unit_vector(1), 0).is_empty());
    }

    #[test]
    fn ivf_recall_against_flat() {
        // 200 vectors in 4 natural clusters; IVF with enough probes must
        // agree with exact search on the top hit.
        let mut entries = Vec::new();
        let mut flat = FlatIndex::new();
        for i in 0..200u64 {
            let base = seeded_unit_vector(i % 4 + 100);
            let noise = seeded_unit_vector(i + 1000);
            let mut v: Vec<f32> = base
                .iter()
                .zip(&noise)
                .map(|(b, n)| 0.9 * b + 0.1 * n)
                .collect();
            crate::embed::normalize(&mut v);
            entries.push((i, v.clone()));
            flat.insert(i, v);
        }
        let ivf = IvfIndex::build(entries, 8, 4, 42);
        assert_eq!(ivf.len(), 200);
        let mut agree = 0;
        for q in 0..20u64 {
            let query = seeded_unit_vector(q % 4 + 100);
            let f = flat.search(&query, 1);
            let a = ivf.search(&query, 1);
            if !a.is_empty() && a[0].id == f[0].id {
                agree += 1;
            }
        }
        assert!(agree >= 16, "IVF top-1 agreement too low: {agree}/20");
    }

    #[test]
    fn top_k_skips_non_finite_scores() {
        // One corrupt (NaN) embedding must never win a query; it is a
        // no-match, not the best match.
        let mut ix = FlatIndex::new();
        ix.insert(1, vec![f32::NAN; 4]);
        ix.insert(2, vec![1.0, 0.0, 0.0, 0.0]);
        ix.insert(3, vec![0.9, 0.1, 0.0, 0.0]);
        let hits = ix.search(&[1.0, 0.0, 0.0, 0.0], 3);
        assert_eq!(hits.len(), 2, "corrupt entry must be dropped: {hits:?}");
        assert_eq!(hits[0].id, 2);
        assert!(hits.iter().all(|h| h.score.is_finite()));
        // An all-corrupt index matches nothing.
        let mut bad = FlatIndex::new();
        bad.insert(1, vec![f32::INFINITY; 4]);
        assert!(bad.search(&[1.0, 0.0, 0.0, 0.0], 1).is_empty());
    }

    #[test]
    fn ivf_init_deduplicates_and_repairs_empty_clusters() {
        // 4 tight, well-separated clusters of 25 points each. Any seed —
        // including ones whose raw stride collides — must leave every one
        // of 4 cluster lists populated: duplicate initial picks are
        // linear-probed apart and empty clusters are reseeded.
        for seed in 0..16u64 {
            let mut entries = Vec::new();
            for i in 0..100u64 {
                let base = seeded_unit_vector(i % 4 + 500);
                let noise = seeded_unit_vector(i + 9000);
                let mut v: Vec<f32> = base
                    .iter()
                    .zip(&noise)
                    .map(|(b, n)| 0.97 * b + 0.03 * n)
                    .collect();
                crate::embed::normalize(&mut v);
                entries.push((i, v));
            }
            let ivf = IvfIndex::build(entries, 4, 1, seed);
            let sizes = ivf.list_sizes();
            assert!(
                sizes.iter().all(|&s| s > 0),
                "seed {seed}: empty cluster in {sizes:?}"
            );
        }
    }

    #[test]
    fn ivf_duplicate_entries_build_distinct_centroid_seeds() {
        // All-identical data cannot split into distinct clusters, but the
        // build must stay well-formed: no panic, all vectors indexed.
        let v = seeded_unit_vector(3);
        let entries: Vec<_> = (0..10u64).map(|i| (i, v.clone())).collect();
        let ivf = IvfIndex::build(entries, 4, 4, 7);
        assert_eq!(ivf.len(), 10);
        let hits = ivf.search(&v, 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn ivf_clamps_parameters() {
        let entries = vec![(1u64, seeded_unit_vector(1)), (2, seeded_unit_vector(2))];
        let ivf = IvfIndex::build(entries, 100, 100, 1);
        assert!(ivf.nlist() <= 2);
        assert!(ivf.nprobe <= ivf.nlist());
        assert_eq!(ivf.len(), 2);
    }

    #[test]
    fn ivf_empty_build() {
        let ivf = IvfIndex::build(Vec::new(), 4, 2, 1);
        assert!(ivf.is_empty());
        assert!(ivf.search(&seeded_unit_vector(1), 3).is_empty());
    }
}
