//! Vector similarity measures.

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0.
///
/// Non-finite inputs (a NaN or infinite component, or an overflowing
/// norm/dot) yield `NaN` — the "no match" sentinel. Rankers must treat a
/// non-finite score as no-match (the index `top_k` skips them), so one
/// corrupt embedding can never outrank every real one. `-0.0` results are
/// normalized to `0.0` so score ties break deterministically.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    if !(dot.is_finite() && na.is_finite() && nb.is_finite()) {
        return f32::NAN;
    }
    let c = (dot / (na * nb)).clamp(-1.0, 1.0);
    if c == 0.0 {
        0.0
    } else {
        c
    }
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) distance.
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_bounds_and_identity() {
        let a = vec![1.0, 2.0, 3.0];
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
        let neg: Vec<f32> = a.iter().map(|x| -x).collect();
        assert!((cosine(&a, &neg) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_orthogonal() {
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn cosine_non_finite_is_no_match() {
        // A corrupt (NaN/∞) component must yield NaN — never a real score
        // that could outrank genuine matches.
        assert!(cosine(&[f32::NAN, 1.0], &[1.0, 1.0]).is_nan());
        assert!(cosine(&[1.0, 1.0], &[f32::INFINITY, 1.0]).is_nan());
        assert!(cosine(&[f32::NEG_INFINITY], &[1.0]).is_nan());
    }

    #[test]
    fn l2_and_dot() {
        assert!((l2(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l2(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }
}
