//! SQL abstract syntax tree and its printer.
//!
//! The printer matters: KathDB persists generated SQL function bodies to
//! disk and shows them to users during debugging (§5), so the AST must
//! round-trip through text (`parse(print(ast)) == ast`, property-tested).

use std::fmt;

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, optionally qualified (`t.col`).
    Column(Option<String>, String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL literal.
    Null,
    /// Binary operation.
    Binary(SqlBinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// `NOT expr`
    Not(Box<SqlExpr>),
    /// `-expr`
    Neg(Box<SqlExpr>),
    /// `expr IS NULL` / `expr IS NOT NULL`
    IsNull(Box<SqlExpr>, bool),
    /// Scalar function call.
    Call(String, Vec<SqlExpr>),
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Agg(AggCall, Option<Box<SqlExpr>>),
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggCall {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggCall {
    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggCall::Count => "COUNT",
            AggCall::Sum => "SUM",
            AggCall::Avg => "AVG",
            AggCall::Min => "MIN",
            AggCall::Max => "MAX",
        }
    }
}

/// Binary operators (SQL spellings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl SqlBinOp {
    fn symbol(&self) -> &'static str {
        match self {
            SqlBinOp::Add => "+",
            SqlBinOp::Sub => "-",
            SqlBinOp::Mul => "*",
            SqlBinOp::Div => "/",
            SqlBinOp::Mod => "%",
            SqlBinOp::Eq => "=",
            SqlBinOp::Ne => "<>",
            SqlBinOp::Lt => "<",
            SqlBinOp::Le => "<=",
            SqlBinOp::Gt => ">",
            SqlBinOp::Ge => ">=",
            SqlBinOp::And => "AND",
            SqlBinOp::Or => "OR",
        }
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr(SqlExpr, Option<String>),
}

/// A `JOIN` clause (equi-joins only, matching KathDB's generated bodies).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined table.
    pub table: String,
    /// Left join if true, inner otherwise.
    pub left_outer: bool,
    /// `ON left = right` column pair.
    pub on_left: (Option<String>, String),
    /// Right column of the ON condition.
    pub on_right: (Option<String>, String),
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression: a plain column, or any scalar expression
    /// (computed into a hidden sort column by the planner — the shape
    /// `SIMILARITY(col, 'query')` additionally unlocks the top-k vector
    /// scan).
    pub expr: SqlExpr,
    /// Descending if true.
    pub desc: bool,
}

impl OrderKey {
    /// A key sorting on a bare column name.
    pub fn column(name: impl Into<String>, desc: bool) -> Self {
        OrderKey {
            expr: SqlExpr::Column(None, name.into()),
            desc,
        }
    }

    /// The bare column name this key sorts on, if it is one.
    pub fn as_column(&self) -> Option<&str> {
        match &self.expr {
            SqlExpr::Column(None, c) => Some(c),
            _ => None,
        }
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM table.
    pub from: String,
    /// JOIN clauses, applied in order.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT count.
    pub limit: Option<usize>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT query.
    Select(Select),
    /// `CREATE TABLE name (col TYPE, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// `(column, type name)` pairs.
        columns: Vec<(String, String)>,
    },
    /// `INSERT INTO name VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        rows: Vec<Vec<SqlExpr>>,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table to remove.
        name: String,
    },
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Column(None, c) => write!(f, "{c}"),
            SqlExpr::Column(Some(t), c) => write!(f, "{t}.{c}"),
            SqlExpr::Int(i) => write!(f, "{i}"),
            SqlExpr::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            SqlExpr::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            SqlExpr::Bool(true) => write!(f, "TRUE"),
            SqlExpr::Bool(false) => write!(f, "FALSE"),
            SqlExpr::Null => write!(f, "NULL"),
            SqlExpr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            SqlExpr::Not(e) => write!(f, "(NOT {e})"),
            SqlExpr::Neg(e) => write!(f, "(- {e})"),
            SqlExpr::IsNull(e, false) => write!(f, "({e} IS NULL)"),
            SqlExpr::IsNull(e, true) => write!(f, "({e} IS NOT NULL)"),
            SqlExpr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            SqlExpr::Agg(agg, None) => write!(f, "{}(*)", agg.name()),
            SqlExpr::Agg(agg, Some(e)) => write!(f, "{}({e})", agg.name()),
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr(e, None) => write!(f, "{e}")?,
                SelectItem::Expr(e, Some(a)) => write!(f, "{e} AS {a}")?,
            }
        }
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            let kind = if j.left_outer { "LEFT JOIN" } else { "JOIN" };
            let qual = |q: &Option<String>, c: &String| match q {
                Some(t) => format!("{t}.{c}"),
                None => c.clone(),
            };
            write!(
                f,
                " {kind} {} ON {} = {}",
                j.table,
                qual(&j.on_left.0, &j.on_left.1),
                qual(&j.on_right.0, &j.on_right.1)
            )?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY {}", self.group_by.join(", "))?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", k.expr, if k.desc { " DESC" } else { " ASC" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, (c, t)) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} {t}")?;
                }
                write!(f, ")")
            }
            Statement::Insert { table, rows } => {
                write!(f, "INSERT INTO {table} VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, v) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
        }
    }
}
