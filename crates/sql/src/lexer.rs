//! SQL lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched later).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semi => write!(f, ";"),
        }
    }
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes SQL text. Identifiers keep their original case; keyword
/// recognition is case-insensitive and happens in the parser.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // Line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b'.' if !bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                out.push(Token::Dot);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                pos += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                pos += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                pos += 1;
            }
            b';' => {
                out.push(Token::Semi);
                pos += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(LexError {
                        offset: pos,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    pos += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b'\'' => {
                let start = pos;
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        None => {
                            return Err(LexError {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(pos + 1) == Some(&b'\'') => {
                            s.push('\'');
                            pos += 2;
                        }
                        Some(b'\'') => {
                            pos += 1;
                            break;
                        }
                        Some(_) => {
                            // Collect one UTF-8 character.
                            let rest = &input[pos..];
                            let c = rest.chars().next().expect("non-empty");
                            s.push(c);
                            pos += c.len_utf8();
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9' | b'.' => {
                let start = pos;
                let mut is_float = false;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_digit()
                        || bytes[pos] == b'.'
                        || bytes[pos] == b'e'
                        || bytes[pos] == b'E'
                        || ((bytes[pos] == b'+' || bytes[pos] == b'-')
                            && matches!(bytes.get(pos - 1), Some(b'e' | b'E'))))
                {
                    if bytes[pos] == b'.' || bytes[pos] == b'e' || bytes[pos] == b'E' {
                        is_float = true;
                    }
                    pos += 1;
                }
                let text = &input[start..pos];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("invalid number '{text}'"),
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        offset: start,
                        message: format!("invalid integer '{text}'"),
                    })?;
                    out.push(Token::Int(v));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                out.push(Token::Ident(input[start..pos].to_string()));
            }
            other => {
                return Err(LexError {
                    offset: pos,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_select() {
        let toks = tokenize("SELECT title, year FROM films WHERE year >= 1990").unwrap();
        assert_eq!(toks.len(), 10);
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[8], Token::Ge);
        assert_eq!(toks[9], Token::Int(1990));
    }

    #[test]
    fn string_escapes_doubled_quotes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn numbers_int_and_float() {
        let toks = tokenize("1 2.5 0.7 1e3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(0.7),
                Token::Float(1000.0)
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT @x").is_err());
        assert!(tokenize("'unterminated").is_err());
    }
}
