//! KathDB SQL subset.
//!
//! FAO function bodies "can contain a SQL query over a table" (§4). This
//! crate provides the lexer, parser, AST (with a printer that round-trips),
//! and an executor that lowers SQL onto the relational substrate in
//! `kath-storage`. The subset covers what KathDB's coder agent emits:
//! SELECT (projection, computed columns, DISTINCT), equi-JOIN / LEFT JOIN,
//! WHERE, GROUP BY with COUNT/SUM/AVG/MIN/MAX, ORDER BY (columns or
//! computed expressions), LIMIT, plus CREATE TABLE, INSERT, and DROP TABLE
//! for setup. Mutating statements lower to [`kath_storage::WalRecord`]s
//! ([`plan_mutation`] / [`apply_mutation`]) so the durability layer can
//! log them write-ahead.
//!
//! The `ORDER BY SIMILARITY(col, 'query') DESC LIMIT k` shape is
//! recognized as the paper's §2.2 similarity search and lowered to a top-k
//! vector-scan operator whose Flat/IVF implementation the cost model picks
//! per query ([`vector_plan_choice`]).

#![warn(missing_docs)]

mod ast;
mod lexer;
mod parser;
mod plan;

pub use ast::{AggCall, JoinClause, OrderKey, Select, SelectItem, SqlBinOp, SqlExpr, Statement};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse_expr, parse_select, parse_statement, SqlParseError};
pub use plan::{
    apply_mutation, execute, execute_with, plan_mutation, run_select, run_select_auto,
    run_select_auto_guarded, run_select_opt, run_select_opt_guarded, run_select_parallel,
    run_select_parallel_opt, run_select_parallel_opt_guarded, run_select_with, to_expr,
    vector_plan_choice, vector_topk_pattern, SelectStats, SqlError, VectorPattern,
};
