//! Planning and execution of parsed SQL against a [`Catalog`].
//!
//! This is the interpreter behind FAO bodies of kind `Sql` (§4: "a function
//! can contain a SQL query over a table").

use crate::ast::*;
use crate::parser::{parse_statement, SqlParseError};
use kath_storage::{
    collect, collect_batched, AggFunc, Aggregate, BinOp, Catalog, Column, DataType, Distinct,
    ExecMode, Expr, Filter, HashAggregate, HashJoin, IndexScan, JoinKind, Limit, Operator, Project,
    Schema, Sort, SortKey, StorageError, Table, TableScan, Value,
};
use std::fmt;

/// Errors from SQL execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Parsing failed.
    Parse(SqlParseError),
    /// The storage layer rejected the plan or data.
    Storage(StorageError),
    /// The query uses a feature outside the KathDB subset.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Storage(e) => write!(f, "{e}"),
            SqlError::Unsupported(m) => write!(f, "unsupported sql: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<SqlParseError> for SqlError {
    fn from(e: SqlParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Executes one SQL statement against the catalog. SELECT returns the result
/// table (named `output_name`); CREATE/INSERT mutate the catalog and return
/// an empty/affected summary table. SELECTs run batch-at-a-time with the
/// default batch size; use [`execute_with`] to pick the execution mode.
pub fn execute(catalog: &mut Catalog, sql: &str, output_name: &str) -> Result<Table, SqlError> {
    execute_with(catalog, sql, output_name, ExecMode::default())
}

/// [`execute`] with an explicit execution mode for SELECTs.
pub fn execute_with(
    catalog: &mut Catalog,
    sql: &str,
    output_name: &str,
    mode: ExecMode,
) -> Result<Table, SqlError> {
    match parse_statement(sql)? {
        Statement::Select(select) => {
            run_select_with(catalog, &select, output_name, mode).map(|(table, _batches)| table)
        }
        Statement::CreateTable { name, columns } => {
            let cols = columns
                .iter()
                .map(|(c, ty)| Ok(Column::new(c.clone(), parse_type(ty)?)))
                .collect::<Result<Vec<_>, SqlError>>()?;
            let schema = Schema::new(cols).map_err(SqlError::Storage)?;
            catalog.register(Table::new(name, schema))?;
            Ok(Table::new(output_name, Schema::of(&[])))
        }
        Statement::Insert { table, rows } => {
            let existing = catalog.get(&table)?;
            let mut new_table = (*existing).clone();
            let empty_schema = Schema::of(&[]);
            for row in &rows {
                let values: Vec<Value> = row
                    .iter()
                    .map(|e| {
                        to_expr(e, &empty_schema).and_then(|x| Ok(x.eval(&vec![], &empty_schema)?))
                    })
                    .collect::<Result<_, SqlError>>()?;
                new_table.push(values)?;
            }
            let n = rows.len();
            catalog.register_or_replace(new_table);
            let mut summary =
                Table::new(output_name, Schema::of(&[("rows_inserted", DataType::Int)]));
            summary.push(vec![Value::Int(n as i64)])?;
            Ok(summary)
        }
    }
}

/// Runs a SELECT and materializes the result under `output_name`
/// (batch-at-a-time with the default batch size).
pub fn run_select(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
) -> Result<Table, SqlError> {
    run_select_with(catalog, select, output_name, ExecMode::default()).map(|(t, _)| t)
}

/// Runs a SELECT in the given execution mode, returning the result table
/// and the number of batches the root operator produced (0 in Volcano
/// mode). When the catalog carries a hash index matching an equality
/// conjunct of the WHERE clause on the FROM table, the leading scan reads
/// only the index's candidate positions instead of the whole table; the
/// full predicate is still applied, so results are identical to a scan.
pub fn run_select_with(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
) -> Result<(Table, usize), SqlError> {
    let mut op: Box<dyn Operator> = leading_scan(catalog, select, mode)?;

    // Joins, in order.
    for j in &select.joins {
        let right = catalog.get(&j.table)?;
        let right_schema = right.schema().clone();
        let rscan: Box<dyn Operator> = Box::new(TableScan::new(right));
        // The ON pair may be written either way round; figure out which side
        // belongs to the accumulated left pipeline.
        let (lcol, rcol) = orient_on(op.schema(), &right_schema, &j.on_left, &j.on_right)?;
        let kind = if j.left_outer {
            JoinKind::Left
        } else {
            JoinKind::Inner
        };
        op = Box::new(HashJoin::new(op, rscan, &lcol, &rcol, kind)?);
    }

    // WHERE.
    if let Some(w) = &select.where_clause {
        let pred = to_expr(w, op.schema())?;
        op = Box::new(Filter::new(op, pred));
    }

    // Aggregation vs plain projection.
    let has_agg = select.items.iter().any(|i| match i {
        SelectItem::Expr(e, _) => contains_agg(e),
        SelectItem::Wildcard => false,
    });

    let sort_keys: Vec<SortKey> = select
        .order_by
        .iter()
        .map(|k| SortKey {
            column: k.column.clone(),
            desc: k.desc,
        })
        .collect();

    if has_agg || !select.group_by.is_empty() {
        op = plan_aggregate(op, select)?;
        if !sort_keys.is_empty() {
            op = Box::new(Sort::new(op, sort_keys)?);
        }
    } else if !(select.items.len() == 1 && select.items[0] == SelectItem::Wildcard) {
        let mut outputs = Vec::new();
        for item in &select.items {
            match item {
                SelectItem::Wildcard => {
                    for name in op.schema().names() {
                        outputs.push((name.to_string(), Expr::col(name)));
                    }
                }
                SelectItem::Expr(e, alias) => {
                    let name = alias.clone().unwrap_or_else(|| default_name(e));
                    outputs.push((name, to_expr(e, op.schema())?));
                }
            }
        }
        // ORDER BY may reference input columns the projection drops; in that
        // case sort before projecting (standard SQL behaviour).
        let sort_before = !sort_keys.is_empty()
            && sort_keys
                .iter()
                .any(|k| !outputs.iter().any(|(n, _)| *n == k.column));
        if sort_before {
            op = Box::new(Sort::new(op, sort_keys.clone())?);
        }
        op = Box::new(Project::new(op, outputs)?);
        if !sort_before && !sort_keys.is_empty() {
            op = Box::new(Sort::new(op, sort_keys)?);
        }
    } else if !sort_keys.is_empty() {
        op = Box::new(Sort::new(op, sort_keys)?);
    }

    if select.distinct {
        op = Box::new(Distinct::new(op));
    }

    if let Some(n) = select.limit {
        op = Box::new(Limit::new(op, n));
    }

    match mode {
        ExecMode::Volcano => Ok((collect(output_name, op)?, 0)),
        ExecMode::Batched(_) => Ok(collect_batched(output_name, op)?),
    }
}

/// The access path for the FROM table: an [`IndexScan`] when an equality
/// conjunct of the WHERE clause hits a catalog index, a [`TableScan`]
/// otherwise. The batch size of the mode is applied to the scan, which
/// pass-through operators inherit.
fn leading_scan(
    catalog: &Catalog,
    select: &Select,
    mode: ExecMode,
) -> Result<Box<dyn Operator>, SqlError> {
    let table = catalog.get(&select.from)?;
    let batch = mode.batch_size();
    if let Some(w) = &select.where_clause {
        if let Some((column, value)) = equality_target(w, &select.from, table.schema()) {
            if let Some(ix) = catalog.index_on(&select.from, &column) {
                let positions = ix.lookup(&value).to_vec();
                let scan = IndexScan::new(table, positions);
                return Ok(match batch {
                    Some(n) => Box::new(scan.with_batch_size(n)),
                    None => Box::new(scan),
                });
            }
        }
    }
    let scan = TableScan::new(table);
    Ok(match batch {
        Some(n) => Box::new(scan.with_batch_size(n)),
        None => Box::new(scan),
    })
}

/// Finds a `column = literal` conjunct of `predicate` over a column of the
/// FROM table (qualifier absent or equal to `from`). The index candidate
/// set is a superset of the predicate's matches, so callers must still
/// apply the full predicate.
fn equality_target(predicate: &SqlExpr, from: &str, schema: &Schema) -> Option<(String, Value)> {
    match predicate {
        SqlExpr::Binary(SqlBinOp::And, l, r) => {
            equality_target(l, from, schema).or_else(|| equality_target(r, from, schema))
        }
        SqlExpr::Binary(SqlBinOp::Eq, l, r) => {
            let col_lit = |a: &SqlExpr, b: &SqlExpr| -> Option<(String, Value)> {
                let SqlExpr::Column(qualifier, column) = a else {
                    return None;
                };
                if qualifier.as_deref().is_some_and(|q| q != from) {
                    return None;
                }
                schema.index_of(column)?;
                literal_value(b).map(|v| (column.clone(), v))
            };
            col_lit(l, r).or_else(|| col_lit(r, l))
        }
        _ => None,
    }
}

fn literal_value(e: &SqlExpr) -> Option<Value> {
    match e {
        SqlExpr::Int(i) => Some(Value::Int(*i)),
        SqlExpr::Float(f) => Some(Value::Float(*f)),
        SqlExpr::Str(s) => Some(Value::Str(s.clone())),
        SqlExpr::Bool(b) => Some(Value::Bool(*b)),
        _ => None,
    }
}

fn plan_aggregate(
    input: Box<dyn Operator>,
    select: &Select,
) -> Result<Box<dyn Operator>, SqlError> {
    let mut aggregates = Vec::new();
    let mut group_names = select.group_by.clone();
    let mut output_order: Vec<String> = Vec::new();

    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                return Err(SqlError::Unsupported(
                    "SELECT * cannot be combined with aggregation".into(),
                ))
            }
            SelectItem::Expr(SqlExpr::Agg(agg, arg), alias) => {
                let column = match arg.as_deref() {
                    None => None,
                    Some(SqlExpr::Column(_, c)) => Some(c.clone()),
                    Some(other) => {
                        return Err(SqlError::Unsupported(format!(
                            "aggregate over expression '{other}' (use a plain column)"
                        )))
                    }
                };
                let output = alias.clone().unwrap_or_else(|| {
                    format!(
                        "{}_{}",
                        agg.name().to_ascii_lowercase(),
                        column.clone().unwrap_or_else(|| "all".into())
                    )
                });
                let func = match (agg, column.is_some()) {
                    (AggCall::Count, false) => AggFunc::CountStar,
                    (AggCall::Count, true) => AggFunc::Count,
                    (AggCall::Sum, _) => AggFunc::Sum,
                    (AggCall::Avg, _) => AggFunc::Avg,
                    (AggCall::Min, _) => AggFunc::Min,
                    (AggCall::Max, _) => AggFunc::Max,
                };
                output_order.push(output.clone());
                aggregates.push(Aggregate {
                    func,
                    column,
                    output,
                });
            }
            SelectItem::Expr(SqlExpr::Column(_, c), alias) => {
                if !group_names.contains(c) {
                    // Implicit grouping column (common in generated SQL).
                    if select.group_by.is_empty() {
                        return Err(SqlError::Unsupported(format!(
                            "column '{c}' must appear in GROUP BY"
                        )));
                    }
                    return Err(SqlError::Unsupported(format!(
                        "column '{c}' is not in GROUP BY"
                    )));
                }
                output_order.push(alias.clone().unwrap_or_else(|| c.clone()));
            }
            SelectItem::Expr(e, _) => {
                return Err(SqlError::Unsupported(format!(
                    "non-column expression '{e}' in aggregate query"
                )))
            }
        }
    }

    // GROUP BY columns not in the SELECT list are still legal keys.
    group_names.dedup();
    let agg = HashAggregate::new(input, group_names, aggregates)?;
    Ok(Box::new(agg))
}

fn orient_on(
    left: &Schema,
    right: &Schema,
    a: &(Option<String>, String),
    b: &(Option<String>, String),
) -> Result<(String, String), SqlError> {
    let in_left = |c: &(Option<String>, String)| resolve_name(left, c).ok();
    let in_right =
        |c: &(Option<String>, String)| right.index_of(&c.1).map(|i| right.column(i).name.clone());
    if let (Some(l), Some(r)) = (in_left(a), in_right(b)) {
        return Ok((l, r));
    }
    if let (Some(l), Some(r)) = (in_left(b), in_right(a)) {
        return Ok((l, r));
    }
    Err(SqlError::Unsupported(format!(
        "cannot orient join condition {}.{} = {}.{}",
        a.0.as_deref().unwrap_or(""),
        a.1,
        b.0.as_deref().unwrap_or(""),
        b.1
    )))
}

fn resolve_name(schema: &Schema, col: &(Option<String>, String)) -> Result<String, SqlError> {
    // Resolution order: exact qualified name, bare name, right-prefixed name.
    if let Some(q) = &col.0 {
        let qualified = format!("{q}.{}", col.1);
        if schema.index_of(&qualified).is_some() {
            return Ok(qualified);
        }
    }
    if schema.index_of(&col.1).is_some() {
        return Ok(col.1.clone());
    }
    let prefixed = format!("right.{}", col.1);
    if schema.index_of(&prefixed).is_some() {
        return Ok(prefixed);
    }
    Err(SqlError::Storage(StorageError::UnknownColumn(
        col.1.clone(),
    )))
}

fn contains_agg(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Agg(..) => true,
        SqlExpr::Binary(_, l, r) => contains_agg(l) || contains_agg(r),
        SqlExpr::Not(x) | SqlExpr::Neg(x) | SqlExpr::IsNull(x, _) => contains_agg(x),
        SqlExpr::Call(_, args) => args.iter().any(contains_agg),
        _ => false,
    }
}

fn default_name(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Column(_, c) => c.clone(),
        other => other.to_string(),
    }
}

/// Lowers a [`SqlExpr`] into a storage [`Expr`] resolved against `schema`.
pub fn to_expr(e: &SqlExpr, schema: &Schema) -> Result<Expr, SqlError> {
    Ok(match e {
        SqlExpr::Column(q, c) => Expr::Col(resolve_name(schema, &(q.clone(), c.clone()))?),
        SqlExpr::Int(i) => Expr::Lit(Value::Int(*i)),
        SqlExpr::Float(x) => Expr::Lit(Value::Float(*x)),
        SqlExpr::Str(s) => Expr::Lit(Value::Str(s.clone())),
        SqlExpr::Bool(b) => Expr::Lit(Value::Bool(*b)),
        SqlExpr::Null => Expr::Lit(Value::Null),
        SqlExpr::Binary(op, l, r) => Expr::Bin(
            lower_op(*op),
            Box::new(to_expr(l, schema)?),
            Box::new(to_expr(r, schema)?),
        ),
        SqlExpr::Not(x) => Expr::Not(Box::new(to_expr(x, schema)?)),
        SqlExpr::Neg(x) => Expr::Neg(Box::new(to_expr(x, schema)?)),
        SqlExpr::IsNull(x, negated) => {
            let inner = Expr::IsNull(Box::new(to_expr(x, schema)?));
            if *negated {
                Expr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        SqlExpr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter()
                .map(|a| to_expr(a, schema))
                .collect::<Result<_, _>>()?,
        ),
        SqlExpr::Agg(..) => {
            return Err(SqlError::Unsupported("aggregate in scalar position".into()))
        }
    })
}

fn lower_op(op: SqlBinOp) -> BinOp {
    match op {
        SqlBinOp::Add => BinOp::Add,
        SqlBinOp::Sub => BinOp::Sub,
        SqlBinOp::Mul => BinOp::Mul,
        SqlBinOp::Div => BinOp::Div,
        SqlBinOp::Mod => BinOp::Mod,
        SqlBinOp::Eq => BinOp::Eq,
        SqlBinOp::Ne => BinOp::Ne,
        SqlBinOp::Lt => BinOp::Lt,
        SqlBinOp::Le => BinOp::Le,
        SqlBinOp::Gt => BinOp::Gt,
        SqlBinOp::Ge => BinOp::Ge,
        SqlBinOp::And => BinOp::And,
        SqlBinOp::Or => BinOp::Or,
    }
}

fn parse_type(ty: &str) -> Result<DataType, SqlError> {
    Ok(match ty.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" => DataType::Int,
        "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
        "STR" | "TEXT" | "VARCHAR" | "STRING" => DataType::Str,
        "BOOL" | "BOOLEAN" => DataType::Bool,
        "BLOB" | "BYTES" => DataType::Blob,
        "ANY" => DataType::Any,
        other => {
            return Err(SqlError::Unsupported(format!(
                "unknown column type '{other}'"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        execute(
            &mut c,
            "CREATE TABLE films (id INT, title STR, year INT)",
            "x",
        )
        .unwrap();
        execute(
            &mut c,
            "INSERT INTO films VALUES \
             (1, 'Guilty by Suspicion', 1991), \
             (2, 'Clean and Sober', 1988), \
             (3, 'Quiet Days', 1975), \
             (4, 'Night Chase', 1991)",
            "x",
        )
        .unwrap();
        execute(
            &mut c,
            "CREATE TABLE posters (film_id INT, boring BOOL)",
            "x",
        )
        .unwrap();
        execute(
            &mut c,
            "INSERT INTO posters VALUES (1, TRUE), (2, TRUE), (4, FALSE)",
            "x",
        )
        .unwrap();
        c
    }

    #[test]
    fn end_to_end_select() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title FROM films WHERE year >= 1988 ORDER BY year DESC, title ASC LIMIT 2",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
        assert_eq!(t.cell(1, "title").unwrap().as_str(), Some("Night Chase"));
    }

    #[test]
    fn join_with_qualified_on() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title, boring FROM films JOIN posters ON films.id = posters.film_id \
             WHERE boring = TRUE",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn join_on_reversed_condition() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title FROM films JOIN posters ON posters.film_id = films.id",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title, boring FROM films LEFT JOIN posters ON films.id = posters.film_id \
             ORDER BY title",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 4);
        let quiet = t
            .find("title", &Value::Str("Quiet Days".into()))
            .unwrap()
            .unwrap();
        assert!(t.cell(quiet, "boring").unwrap().is_null());
    }

    #[test]
    fn group_by_count_avg() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT year, COUNT(*) AS n FROM films GROUP BY year ORDER BY year",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell(2, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn global_aggregate() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT COUNT(*) AS n, MAX(year) AS y FROM films",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "n").unwrap(), &Value::Int(4));
        assert_eq!(t.cell(0, "y").unwrap(), &Value::Int(1991));
    }

    #[test]
    fn computed_projection_with_alias() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title, 2026 - year AS age FROM films WHERE id = 1",
            "out",
        )
        .unwrap();
        assert_eq!(t.cell(0, "age").unwrap(), &Value::Int(35));
    }

    #[test]
    fn distinct_years() {
        let mut c = catalog();
        let t = execute(&mut c, "SELECT DISTINCT year FROM films", "out").unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_returns_count_and_persists() {
        let mut c = catalog();
        let t = execute(&mut c, "INSERT INTO films VALUES (5, 'New', 2025)", "out").unwrap();
        assert_eq!(t.cell(0, "rows_inserted").unwrap(), &Value::Int(1));
        let all = execute(&mut c, "SELECT COUNT(*) AS n FROM films", "out").unwrap();
        assert_eq!(all.cell(0, "n").unwrap(), &Value::Int(5));
    }

    #[test]
    fn errors_are_reported() {
        let mut c = catalog();
        assert!(matches!(
            execute(&mut c, "SELECT * FROM missing", "out"),
            Err(SqlError::Storage(StorageError::UnknownTable(_)))
        ));
        assert!(matches!(
            execute(&mut c, "SELECT nope FROM films", "out"),
            Err(SqlError::Storage(StorageError::UnknownColumn(_)))
        ));
        assert!(matches!(
            execute(&mut c, "SELECT title, COUNT(*) FROM films", "out"),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn volcano_and_batched_modes_agree() {
        let c = catalog();
        for sql in [
            "SELECT * FROM films",
            "SELECT title, year FROM films WHERE year >= 1988 ORDER BY year DESC, title ASC",
            "SELECT title, boring FROM films LEFT JOIN posters ON films.id = posters.film_id \
             ORDER BY title",
            "SELECT year, COUNT(*) AS n FROM films GROUP BY year ORDER BY year",
            "SELECT DISTINCT year FROM films ORDER BY year LIMIT 2",
        ] {
            let volcano = execute_with(&mut c.clone(), sql, "out", ExecMode::Volcano).unwrap();
            for bs in [1usize, 2, 1024] {
                let batched =
                    execute_with(&mut c.clone(), sql, "out", ExecMode::Batched(bs)).unwrap();
                assert_eq!(batched, volcano, "{sql} (batch {bs})");
            }
        }
    }

    #[test]
    fn equality_predicate_uses_index_with_same_result() {
        let mut c = catalog();
        let unindexed =
            execute(&mut c, "SELECT title FROM films WHERE year = 1991", "out").unwrap();
        c.create_index("films", "year").unwrap();
        let indexed = execute(&mut c, "SELECT title FROM films WHERE year = 1991", "out").unwrap();
        assert_eq!(indexed, unindexed);
        assert_eq!(indexed.len(), 2);

        // Compound predicates still narrow via the equality conjunct and
        // re-apply the rest.
        let t = execute(
            &mut c,
            "SELECT title FROM films WHERE year = 1991 AND id > 1",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "title").unwrap().as_str(), Some("Night Chase"));

        // Non-equality predicates fall back to the scan.
        let t = execute(&mut c, "SELECT title FROM films WHERE year > 1988", "out").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn index_survives_insert() {
        let mut c = catalog();
        c.create_index("films", "year").unwrap();
        execute(
            &mut c,
            "INSERT INTO films VALUES (5, 'Late Entry', 1991)",
            "x",
        )
        .unwrap();
        let t = execute(
            &mut c,
            "SELECT title FROM films WHERE year = 1991 ORDER BY title",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 3, "{}", t.render());
        assert_eq!(t.cell(1, "title").unwrap().as_str(), Some("Late Entry"));
    }

    #[test]
    fn run_select_with_reports_batches() {
        let c = catalog();
        let select = crate::parser::parse_select("SELECT title FROM films").unwrap();
        let (t, batches) = run_select_with(&c, &select, "out", ExecMode::Batched(2)).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(batches, 2);
        let (_, batches) = run_select_with(&c, &select, "out", ExecMode::Volcano).unwrap();
        assert_eq!(batches, 0);
    }

    #[test]
    fn create_rejects_bad_type_and_duplicate() {
        let mut c = Catalog::new();
        assert!(execute(&mut c, "CREATE TABLE t (x WIBBLE)", "o").is_err());
        execute(&mut c, "CREATE TABLE t (x INT)", "o").unwrap();
        assert!(execute(&mut c, "CREATE TABLE t (y INT)", "o").is_err());
    }
}
