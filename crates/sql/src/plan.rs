//! Planning and execution of parsed SQL against a [`Catalog`].
//!
//! This is the interpreter behind FAO bodies of kind `Sql` (§4: "a function
//! can contain a SQL query over a table").

use crate::ast::*;
use crate::parser::{parse_statement, SqlParseError};
use kath_storage::{
    collect_batched_guarded, collect_guarded, compile_pays_off, merge_top_k,
    preferred_vector_strategy, top_k_entries, AggFunc, Aggregate, BinOp, Catalog, Column,
    CompileMode, CompiledPipeline, DataType, Distinct, ExecMode, Expr, Filter, HashAggregate,
    HashJoin, IndexScan, JoinKind, Limit, Operator, Project, QueryGuard, Schema, Sort, SortKey,
    StorageError, Table, TableScan, Value, VectorMode, VectorStrategy, VectorTopK, WalRecord,
};
use std::fmt;
use std::sync::Arc;

/// Errors from SQL execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Parsing failed.
    Parse(SqlParseError),
    /// The storage layer rejected the plan or data.
    Storage(StorageError),
    /// The query uses a feature outside the KathDB subset.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Storage(e) => write!(f, "{e}"),
            SqlError::Unsupported(m) => write!(f, "unsupported sql: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<SqlParseError> for SqlError {
    fn from(e: SqlParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Executes one SQL statement against the catalog. SELECT returns the result
/// table (named `output_name`); CREATE/INSERT mutate the catalog and return
/// an empty/affected summary table. SELECTs run batch-at-a-time with the
/// default batch size; use [`execute_with`] to pick the execution mode.
pub fn execute(catalog: &mut Catalog, sql: &str, output_name: &str) -> Result<Table, SqlError> {
    execute_with(catalog, sql, output_name, ExecMode::default())
}

/// [`execute`] with an explicit execution mode for SELECTs.
pub fn execute_with(
    catalog: &mut Catalog,
    sql: &str,
    output_name: &str,
    mode: ExecMode,
) -> Result<Table, SqlError> {
    match parse_statement(sql)? {
        Statement::Select(select) => {
            run_select_with(catalog, &select, output_name, mode).map(|(table, _batches)| table)
        }
        stmt => {
            let record = plan_mutation(catalog, &stmt)?;
            apply_mutation(catalog, &record, output_name)
        }
    }
}

/// Validates a mutating statement against the catalog and lowers it to the
/// logical redo record the durability layer logs — **without applying
/// it**. INSERT row expressions are evaluated here, so the record replays
/// deterministically; all catalog preconditions (table exists / name free,
/// rows type-check) are verified so that a record, once logged, can always
/// be applied. Returns an error for SELECT (not a mutation).
pub fn plan_mutation(catalog: &Catalog, stmt: &Statement) -> Result<WalRecord, SqlError> {
    match stmt {
        Statement::Select(_) => Err(SqlError::Unsupported(
            "SELECT is not a mutation".to_string(),
        )),
        Statement::CreateTable { name, columns } => {
            if catalog.contains(name) {
                return Err(SqlError::Storage(StorageError::TableExists(name.clone())));
            }
            let cols = columns
                .iter()
                .map(|(c, ty)| Ok(Column::new(c.clone(), parse_type(ty)?)))
                .collect::<Result<Vec<_>, SqlError>>()?;
            let schema = Schema::new(cols).map_err(SqlError::Storage)?;
            Ok(WalRecord::CreateTable(Table::new(name.clone(), schema)))
        }
        Statement::Insert { table, rows } => {
            let existing = catalog.get(table)?;
            let empty_schema = Schema::of(&[]);
            let mut values_rows = Vec::with_capacity(rows.len());
            for row in rows {
                let values: Vec<Value> = row
                    .iter()
                    .map(|e| {
                        to_expr(e, &empty_schema).and_then(|x| Ok(x.eval(&vec![], &empty_schema)?))
                    })
                    .collect::<Result<_, SqlError>>()?;
                // The same arity/type validation `Table::push` applies, so
                // a logged record can never fail to apply — without
                // cloning the table just to type-check.
                existing.schema().check_row(&values)?;
                values_rows.push(values);
            }
            Ok(WalRecord::Insert {
                table: table.clone(),
                rows: values_rows,
            })
        }
        Statement::DropTable { name } => {
            if !catalog.contains(name) {
                return Err(SqlError::Storage(StorageError::UnknownTable(name.clone())));
            }
            Ok(WalRecord::DropTable(name.clone()))
        }
    }
}

/// Applies one logical redo record to the catalog, returning the summary
/// table `execute` reports. This is the single apply path for live
/// execution *and* WAL replay, so recovered state is byte-identical to the
/// pre-crash state by construction.
pub fn apply_mutation(
    catalog: &mut Catalog,
    record: &WalRecord,
    output_name: &str,
) -> Result<Table, SqlError> {
    match record {
        WalRecord::CreateTable(t) => {
            catalog.register(t.clone())?;
            Ok(Table::new(output_name, Schema::of(&[])))
        }
        WalRecord::Insert { table, rows } => {
            let existing = catalog.get(table)?;
            let mut new_table = (*existing).clone();
            for row in rows {
                new_table.push(row.clone())?;
            }
            catalog.register_or_replace(new_table);
            let mut summary =
                Table::new(output_name, Schema::of(&[("rows_inserted", DataType::Int)]));
            summary.push(vec![Value::Int(rows.len() as i64)])?;
            Ok(summary)
        }
        WalRecord::DropTable(name) => {
            catalog.drop_table(name)?;
            Ok(Table::new(output_name, Schema::of(&[])))
        }
        WalRecord::Functions(_) => Err(SqlError::Unsupported(
            "function-registry records are applied by the facade, not the catalog".to_string(),
        )),
        WalRecord::Begin(_) | WalRecord::Commit(_) | WalRecord::Abort(_) => {
            Err(SqlError::Unsupported(
                "transaction markers frame the log; they are not applied".to_string(),
            ))
        }
    }
}

/// Runs a SELECT and materializes the result under `output_name`
/// (batch-at-a-time with the default batch size).
pub fn run_select(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
) -> Result<Table, SqlError> {
    run_select_with(catalog, select, output_name, ExecMode::default()).map(|(t, _)| t)
}

/// Runs a SELECT in the given execution mode, returning the result table
/// and the number of batches the root operator produced (0 in Volcano
/// mode). When the catalog carries a hash index matching an equality
/// conjunct of the WHERE clause on the FROM table, the leading scan reads
/// only the index's candidate positions instead of the whole table; the
/// full predicate is still applied, so results are identical to a scan.
/// The top-k vector pattern (see [`run_select_opt`]) lowers to the vector
/// scan under cost-model (`Auto`) strategy selection.
pub fn run_select_with(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
) -> Result<(Table, usize), SqlError> {
    run_select_opt(catalog, select, output_name, mode, VectorMode::Auto)
}

/// [`run_select_with`] with an explicit vector access-path mode.
///
/// When `vector` permits it and the query matches the top-k vector-search
/// pattern — `SELECT ... FROM t ORDER BY SIMILARITY(col, 'query') DESC
/// LIMIT k` with no joins, WHERE, grouping, or DISTINCT — the plan lowers
/// to a [`VectorTopK`] scan instead of scoring every row and fully sorting.
/// The physical implementation (exact Flat vs approximate IVF) follows the
/// cost model's per-query choice from catalog cardinality (§4), unless the
/// mode forces one. `VectorMode::Off` keeps the classical full-sort plan,
/// which returns identical rows (the parity contract the proptest suite
/// pins).
pub fn run_select_opt(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
    vector: VectorMode,
) -> Result<(Table, usize), SqlError> {
    run_select_opt_guarded(
        catalog,
        select,
        output_name,
        mode,
        vector,
        &QueryGuard::unlimited(),
    )
}

/// [`run_select_opt`] under a [`QueryGuard`]: the guard is attached to the
/// leading scan (periodic deadline/cancel checks as rows stream) and to the
/// root drain (row/byte budget charges on produced output), so a tripped
/// guard aborts mid-scan with a typed [`StorageError::Cancelled`] or
/// [`StorageError::Budget`] instead of running to completion.
pub fn run_select_opt_guarded(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
    vector: VectorMode,
    guard: &QueryGuard,
) -> Result<(Table, usize), SqlError> {
    if let Some((pattern, strategy)) = vector_plan_choice(catalog, select, vector) {
        return run_vector_topk(
            catalog,
            select,
            &pattern,
            strategy,
            output_name,
            mode,
            guard,
        );
    }
    let mut op: Box<dyn Operator> = leading_scan(catalog, select, mode, guard)?;

    // Joins, in order.
    for j in &select.joins {
        let right = catalog.get(&j.table)?;
        let right_schema = right.schema().clone();
        let rscan: Box<dyn Operator> = Box::new(TableScan::new(right));
        // The ON pair may be written either way round; figure out which side
        // belongs to the accumulated left pipeline.
        let (lcol, rcol) = orient_on(op.schema(), &right_schema, &j.on_left, &j.on_right)?;
        let kind = if j.left_outer {
            JoinKind::Left
        } else {
            JoinKind::Inner
        };
        op = Box::new(HashJoin::new(op, rscan, &lcol, &rcol, kind)?);
    }

    // WHERE.
    if let Some(w) = &select.where_clause {
        let pred = to_expr(w, op.schema())?;
        op = Box::new(Filter::new(op, pred));
    }

    // Aggregation vs plain projection.
    let has_agg = select_has_agg(select);

    if has_agg || !select.group_by.is_empty() {
        let sort_keys = plain_sort_keys(select).ok_or_else(|| {
            SqlError::Unsupported("expression ORDER BY keys with aggregation".into())
        })?;
        op = plan_aggregate(op, select)?;
        if !sort_keys.is_empty() {
            op = Box::new(Sort::new(op, sort_keys)?);
        }
    } else if let Some(sort_keys) = plain_sort_keys(select) {
        if let Some(outputs) = projection_outputs(select, op.schema())? {
            // ORDER BY may reference input columns the projection drops; in
            // that case sort before projecting (standard SQL behaviour).
            let sort_before = sort_before_project(&sort_keys, &outputs);
            if sort_before {
                op = Box::new(Sort::new(op, sort_keys.clone())?);
            }
            op = Box::new(Project::new(op, outputs)?);
            if !sort_before && !sort_keys.is_empty() {
                op = Box::new(Sort::new(op, sort_keys)?);
            }
        } else if !sort_keys.is_empty() {
            op = Box::new(Sort::new(op, sort_keys)?);
        }
    } else {
        // At least one ORDER BY key is a computed expression (e.g. the
        // SIMILARITY fallback plan): sort on hidden computed columns.
        op = plan_expression_sort(op, select)?;
    }

    if select.distinct {
        op = Box::new(Distinct::new(op));
    }

    if let Some(n) = select.limit {
        op = Box::new(Limit::new(op, n));
    }

    match mode {
        ExecMode::Volcano => Ok((collect_guarded(output_name, op, guard)?, 0)),
        ExecMode::Batched(_) => Ok(collect_batched_guarded(output_name, op, guard)?),
    }
}

/// Execution statistics of one (possibly parallel) SELECT.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectStats {
    /// Batches the streaming pipelines produced (0 in Volcano mode).
    pub batches: usize,
    /// Workers that ran the streaming phase (1 for serial execution).
    pub workers: usize,
    /// Wall-clock milliseconds each worker spent in its morsel loop
    /// (empty for serial execution).
    pub worker_ms: Vec<f64>,
    /// Milliseconds the deterministic merge step (partial-aggregate merge,
    /// sorted-run merge, distinct/limit finishing) took.
    pub merge_ms: f64,
    /// Whether the streaming phase ran as a fused compiled pipeline
    /// (closure-compiled kernels) instead of interpreted operators.
    pub compiled: bool,
    /// Milliseconds spent compiling the pipeline's expression kernels
    /// (0 for interpreted runs).
    pub compile_ms: f64,
}

impl SelectStats {
    /// Stats of a serial interpreted run that produced `batches` batches.
    pub fn serial(batches: usize) -> Self {
        Self {
            batches,
            workers: 1,
            worker_ms: Vec::new(),
            merge_ms: 0.0,
            compiled: false,
            compile_ms: 0.0,
        }
    }
}

/// One pre-built hash-join stage of a parallel pipeline: the shared build
/// side plus how the streaming (left) side probes it.
struct JoinStage {
    build: Arc<kath_storage::JoinBuild>,
    left_col: String,
    kind: JoinKind,
}

/// Runs a SELECT with morsel-driven intra-query parallelism over `threads`
/// workers, returning results **identical to serial execution** (same rows,
/// same order; see below).
///
/// The plan is broken at its pipeline breakers:
///
/// - Hash-join **build** sides are materialized once, serially, and shared
///   (`Arc<JoinBuild>`) across workers.
/// - The **streaming phase** — scan → join probes → filter → projection —
///   runs per worker: workers claim fixed-size morsels from an atomic
///   cursor ([`MorselSource`]) and drive an independent operator pipeline
///   over each claimed range.
/// - **Aggregation** keeps one thread-local [`PartialAggregate`] per
///   morsel; partials merge in morsel order, reproducing the serial group
///   order. **Sorts** become per-morsel sorted runs joined by a stable
///   k-way merge ([`kath_storage::merge_sorted_runs`]). DISTINCT and LIMIT
///   finish serially on the merged stream.
///
/// Because every merge step consumes per-morsel outputs in scan order, the
/// result is independent of worker count and scheduling. Falls back to
/// serial execution when there is nothing to win: one thread, Volcano
/// mode, a source smaller than two morsels — or a lazy `LIMIT` plan (no
/// aggregate/sort), where serial short-circuit evaluation is part of the
/// observable semantics.
pub fn run_select_parallel(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
    threads: usize,
) -> Result<(Table, SelectStats), SqlError> {
    run_select_parallel_opt(
        catalog,
        select,
        output_name,
        mode,
        threads,
        VectorMode::Auto,
    )
}

/// [`run_select_parallel`] with an explicit vector access-path mode. The
/// top-k vector pattern takes its own parallel drive (per-morsel top-k
/// heaps over the index entries, merged deterministically); all other
/// plans run the general morsel pipeline.
pub fn run_select_parallel_opt(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
    threads: usize,
    vector: VectorMode,
) -> Result<(Table, SelectStats), SqlError> {
    run_select_parallel_opt_guarded(
        catalog,
        select,
        output_name,
        mode,
        threads,
        vector,
        &QueryGuard::unlimited(),
    )
}

/// [`run_select_parallel_opt`] under a [`QueryGuard`]: workers re-check the
/// guard between morsels, so cancellation and deadlines stop the whole
/// sweep at morsel granularity and the earliest-morsel rule reports a
/// deterministic typed error (see [`kath_storage::run_morsels_guarded`]).
pub fn run_select_parallel_opt_guarded(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
    threads: usize,
    vector: VectorMode,
    guard: &QueryGuard,
) -> Result<(Table, SelectStats), SqlError> {
    use kath_storage::{
        merge_sorted_runs, resolve_sort_keys, run_morsels_guarded, sort_rows, JoinBuild, Morsel,
        MorselSource, PartialAggregate, Row,
    };
    use std::time::Instant;

    if let Some((pattern, strategy)) = vector_plan_choice(catalog, select, vector) {
        return run_vector_topk_parallel(
            catalog,
            select,
            &pattern,
            strategy,
            output_name,
            mode,
            threads,
            guard,
        );
    }

    let serial = |catalog: &Catalog| -> Result<(Table, SelectStats), SqlError> {
        let (t, batches) =
            run_select_opt_guarded(catalog, select, output_name, mode, vector, guard)?;
        Ok((t, SelectStats::serial(batches)))
    };

    let Some(batch) = mode.batch_size() else {
        return serial(catalog); // Volcano is the serial baseline by definition.
    };
    let has_agg = select_has_agg(select);
    let Some(sort_keys) = plain_sort_keys(select) else {
        // Computed ORDER BY keys outside the vector pattern sort on hidden
        // columns; that plan has no parallel driver — run it serially.
        return serial(catalog);
    };
    let blocking = has_agg || !select.group_by.is_empty() || !sort_keys.is_empty();
    // A lazy LIMIT plan must not evaluate rows past the limit (an erroring
    // expression beyond it stays unreached); only a blocking operator, which
    // consumes everything anyway, makes eager parallel evaluation safe.
    if threads <= 1 || (select.limit.is_some() && !blocking) {
        return serial(catalog);
    }

    // The morsel source: the FROM table's row range, or the candidate
    // positions of an index hit (same access-path rule as serial planning).
    let table = catalog.get(&select.from)?;
    let positions: Option<Arc<Vec<usize>>> = select
        .where_clause
        .as_ref()
        .and_then(|w| equality_target(w, &select.from, table.schema()))
        .and_then(|(column, value)| {
            catalog
                .index_on(&select.from, &column)
                .map(|ix| (ix, value))
        })
        .map(|(ix, value)| Arc::new(ix.lookup(&value).to_vec()));
    let total = positions.as_ref().map(|p| p.len()).unwrap_or(table.len());
    // Full scans of a paged table align morsels to page boundaries so no
    // two workers decode the same column page.
    let source = match table.paged() {
        Some(pt) if positions.is_none() => {
            MorselSource::with_batch_size_aligned(total, batch, pt.page_rows())
        }
        _ => MorselSource::with_batch_size(total, batch),
    };
    if source.morsel_count() < 2 {
        return serial(catalog); // Not enough work to split.
    }

    // Pipeline breakers first: materialize every join build side once.
    let mut left_schema = table.schema().clone();
    let mut stages: Vec<JoinStage> = Vec::new();
    for j in &select.joins {
        let right = catalog.get(&j.table)?;
        let right_schema = right.schema().clone();
        let (left_col, right_col) =
            orient_on(&left_schema, &right_schema, &j.on_left, &j.on_right)?;
        let build = Arc::new(JoinBuild::build(
            Box::new(TableScan::new(right)),
            &right_col,
        )?);
        left_schema = left_schema.join(&right_schema, "right");
        stages.push(JoinStage {
            build,
            left_col,
            kind: if j.left_outer {
                JoinKind::Left
            } else {
                JoinKind::Inner
            },
        });
    }
    let pred: Option<Expr> = select
        .where_clause
        .as_ref()
        .map(|w| to_expr(w, &left_schema))
        .transpose()?;
    // Zone-map prune hints, join-free plans only (see `prune_conjuncts`).
    let prune_hints: Vec<(String, BinOp, Value)> = match &select.where_clause {
        Some(w) if select.joins.is_empty() => prune_conjuncts(w, &select.from, table.schema()),
        _ => Vec::new(),
    };

    // The streaming pipeline one worker drives over one claimed morsel.
    let make_stream = |m: Morsel| -> Result<Box<dyn Operator>, StorageError> {
        let mut op: Box<dyn Operator> = match &positions {
            Some(pos) => Box::new(
                IndexScan::new(Arc::clone(&table), pos[m.start..m.end].to_vec())
                    .with_batch_size(batch),
            ),
            None => Box::new(
                TableScan::new(Arc::clone(&table))
                    .with_range(m.start, m.end)
                    .with_prune_hint(&prune_hints)
                    .with_batch_size(batch),
            ),
        };
        for s in &stages {
            op = Box::new(HashJoin::from_build(
                op,
                Arc::clone(&s.build),
                &s.left_col,
                s.kind,
            )?);
        }
        if let Some(p) = &pred {
            op = Box::new(Filter::new(op, p.clone()));
        }
        Ok(op)
    };
    // Workers charge budgets per produced batch so a tripped budget aborts
    // mid-scan; the uncharged variant serves legs whose serial tail charges
    // the same rows again at the root.
    let drain_uncharged = |op: &mut dyn Operator| -> Result<(Vec<Row>, usize), StorageError> {
        let mut rows = Vec::new();
        let mut batches = 0;
        while let Some(b) = op.next_batch()? {
            batches += 1;
            rows.extend(b.into_rows());
        }
        Ok((rows, batches))
    };
    let drain = |op: &mut dyn Operator| -> Result<(Vec<Row>, usize), StorageError> {
        let mut rows = Vec::new();
        let mut batches = 0;
        while let Some(b) = op.next_batch()? {
            batches += 1;
            guard.charge_batch(&b)?;
            rows.extend(b.into_rows());
        }
        Ok((rows, batches))
    };

    let (schema, mut rows, batches, run_stats) = if has_agg || !select.group_by.is_empty() {
        // Pipeline breaker: aggregation. One thread-local partial per
        // morsel, merged in morsel order.
        let spec = aggregate_spec(select)?;
        let run = run_morsels_guarded(&source, threads, guard, |m| {
            let mut op = make_stream(m)?;
            let mut partial =
                PartialAggregate::new(op.schema(), &spec.group_names, spec.aggregates.clone())?;
            let batches = partial.consume(op.as_mut())?;
            Ok((partial, batches))
        })
        .map_err(SqlError::Storage)?;
        let worker_ms = run.worker_ms.clone();
        let merge_started = Instant::now();
        let mut outputs = run.outputs.into_iter();
        let (mut acc, mut batches) = outputs.next().expect("at least two morsels");
        for (partial, b) in outputs {
            acc.merge(partial);
            batches += b;
        }
        let (schema, mut rows) = acc.finish();
        // Aggregation's root-level output is the merged group rows.
        for row in &rows {
            guard.charge_row(row)?;
        }
        if !sort_keys.is_empty() {
            let key_idx = resolve_sort_keys(&schema, &sort_keys)?;
            sort_rows(&mut rows, &key_idx);
        }
        (schema, rows, batches, (worker_ms, merge_started))
    } else if let Some(outputs) = projection_outputs(select, &left_schema)? {
        let out_schema = kath_storage::Project::output_schema(&left_schema, &outputs)?;
        if sort_before_project(&sort_keys, &outputs) {
            // ORDER BY needs columns the projection drops: sorted runs are
            // built pre-projection, merged, then projected serially in
            // sorted order (exactly the serial operator order).
            let key_idx = resolve_sort_keys(&left_schema, &sort_keys)?;
            let run = run_morsels_guarded(&source, threads, guard, |m| {
                let mut op = make_stream(m)?;
                let (mut rows, batches) = drain_uncharged(op.as_mut())?;
                sort_rows(&mut rows, &key_idx);
                Ok((rows, batches))
            })
            .map_err(SqlError::Storage)?;
            let worker_ms = run.worker_ms.clone();
            let merge_started = Instant::now();
            let mut batches = 0;
            let mut runs = Vec::with_capacity(run.outputs.len());
            for (rows, b) in run.outputs {
                batches += b;
                runs.push(rows);
            }
            let merged = merge_sorted_runs(runs, &key_idx);
            let sorted = Table::from_rows("sorted", left_schema.clone(), merged)
                .map_err(SqlError::Storage)?;
            // The projection comes AFTER the blocking sort here, so under a
            // LIMIT the serial drive evaluates it only for the first rows
            // (Limit's lazy row-wise tail). Run the identical operator tail
            // — Project → Distinct → Limit — instead of projecting
            // everything eagerly, and return directly: distinct/limit are
            // already applied.
            let mut tail: Box<dyn Operator> = Box::new(Project::new(
                Box::new(TableScan::new(Arc::new(sorted)).with_batch_size(batch)),
                outputs,
            )?);
            if select.distinct {
                tail = Box::new(Distinct::new(tail));
            }
            if let Some(n) = select.limit {
                tail = Box::new(Limit::new(tail, n));
            }
            let (out, tail_batches) =
                collect_batched_guarded(output_name, tail, guard).map_err(SqlError::Storage)?;
            let stats = SelectStats {
                batches: batches + tail_batches,
                workers: worker_ms.len(),
                worker_ms,
                merge_ms: merge_started.elapsed().as_secs_f64() * 1000.0,
                compiled: false,
                compile_ms: 0.0,
            };
            return Ok((out, stats));
        } else {
            // Projection is streaming; an ORDER BY over projected columns
            // sorts per-morsel runs merged stably.
            let key_idx = resolve_sort_keys(&out_schema, &sort_keys)?;
            let run = run_morsels_guarded(&source, threads, guard, |m| {
                let op = make_stream(m)?;
                let mut op: Box<dyn Operator> = Box::new(Project::new(op, outputs.clone())?);
                let (mut rows, batches) = drain(op.as_mut())?;
                if !key_idx.is_empty() {
                    sort_rows(&mut rows, &key_idx);
                }
                Ok((rows, batches))
            })
            .map_err(SqlError::Storage)?;
            let worker_ms = run.worker_ms.clone();
            let merge_started = Instant::now();
            let mut batches = 0;
            let mut runs = Vec::with_capacity(run.outputs.len());
            for (rows, b) in run.outputs {
                batches += b;
                runs.push(rows);
            }
            let rows = if key_idx.is_empty() {
                runs.into_iter().flatten().collect()
            } else {
                merge_sorted_runs(runs, &key_idx)
            };
            (out_schema, rows, batches, (worker_ms, merge_started))
        }
    } else {
        // Bare SELECT *: stream rows through, optionally via sorted runs.
        let key_idx = resolve_sort_keys(&left_schema, &sort_keys)?;
        let run = run_morsels_guarded(&source, threads, guard, |m| {
            let mut op = make_stream(m)?;
            let (mut rows, batches) = drain(op.as_mut())?;
            if !key_idx.is_empty() {
                sort_rows(&mut rows, &key_idx);
            }
            Ok((rows, batches))
        })
        .map_err(SqlError::Storage)?;
        let worker_ms = run.worker_ms.clone();
        let merge_started = Instant::now();
        let mut batches = 0;
        let mut runs = Vec::with_capacity(run.outputs.len());
        for (rows, b) in run.outputs {
            batches += b;
            runs.push(rows);
        }
        let rows = if key_idx.is_empty() {
            runs.into_iter().flatten().collect()
        } else {
            merge_sorted_runs(runs, &key_idx)
        };
        (left_schema, rows, batches, (worker_ms, merge_started))
    };

    let (worker_ms, merge_started) = run_stats;
    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|row| seen.insert(row.clone()));
    }
    if let Some(n) = select.limit {
        rows.truncate(n);
    }
    let out = Table::from_rows(output_name, schema, rows).map_err(SqlError::Storage)?;
    let stats = SelectStats {
        batches,
        workers: worker_ms.len(),
        worker_ms,
        merge_ms: merge_started.elapsed().as_secs_f64() * 1000.0,
        compiled: false,
        compile_ms: 0.0,
    };
    Ok((out, stats))
}

/// Runs a SELECT under the engine's full physical strategy — the
/// `(mode, dop, compiled)` triple: vector access path first, then the
/// compiled fused drive when `compile` selects it and the plan is
/// eligible, otherwise the interpreted serial or morsel-parallel drive.
///
/// [`CompileMode::Auto`] consults the shared break-even rule
/// ([`kath_storage::compile_pays_off`]) on the FROM table's cardinality,
/// so tiny tables stay interpreted — the same rule the optimizer's
/// strategy choice prices. Whatever the mode, pipelines the compiler does
/// not support (aggregation, sorting, DISTINCT/LIMIT, index access paths,
/// model-backed expressions like `SIMILARITY`) fall back per-query to the
/// interpreted operators, producing identical rows and the canonical
/// errors. `stats.compiled` reports which drive actually ran.
pub fn run_select_auto(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
    threads: usize,
    vector: VectorMode,
    compile: CompileMode,
) -> Result<(Table, SelectStats), SqlError> {
    run_select_auto_guarded(
        catalog,
        select,
        output_name,
        mode,
        threads,
        vector,
        compile,
        &QueryGuard::unlimited(),
    )
}

/// [`run_select_auto`] under a [`QueryGuard`], the facade's entry point for
/// `\timeout`, `cancel()`, and row/byte budgets. Whichever drive the
/// strategy triple selects — Volcano, batched, morsel-parallel, or the
/// compiled fused loop — checks the same guard as it streams, so a tripped
/// guard surfaces the identical typed error on every drive.
#[allow(clippy::too_many_arguments)]
pub fn run_select_auto_guarded(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    mode: ExecMode,
    threads: usize,
    vector: VectorMode,
    compile: CompileMode,
    guard: &QueryGuard,
) -> Result<(Table, SelectStats), SqlError> {
    let attempt = match compile {
        CompileMode::Off => false,
        CompileMode::On => true,
        CompileMode::Auto => catalog
            .get(&select.from)
            .map(|t| compile_pays_off(t.len()))
            .unwrap_or(false),
    };
    if let Some(batch) = mode.batch_size() {
        if attempt && vector_plan_choice(catalog, select, vector).is_none() {
            if let Some(result) =
                run_select_compiled(catalog, select, output_name, batch, threads, guard)?
            {
                return Ok(result);
            }
        }
    }
    if threads > 1 {
        run_select_parallel_opt_guarded(catalog, select, output_name, mode, threads, vector, guard)
    } else {
        let (t, batches) =
            run_select_opt_guarded(catalog, select, output_name, mode, vector, guard)?;
        Ok((t, SelectStats::serial(batches)))
    }
}

/// A SELECT lowered to the compiled fused drive: shared join build sides
/// with plan-time probe ordinals, the compiled filter→project pipeline,
/// and the scan's column/prune hints.
struct CompiledSelect {
    table: Arc<Table>,
    /// Per join stage: the shared build side, the probe key's ordinal in
    /// the accumulated left row, and the join kind.
    stages: Vec<(Arc<kath_storage::JoinBuild>, usize, JoinKind)>,
    /// Arity of the fully-joined row (scan + all build sides).
    joined_arity: usize,
    pipeline: CompiledPipeline,
    out_schema: Schema,
    /// Full-table ordinals the scan must produce, when column pruning
    /// applies (join-free plans whose projection drops columns).
    scan_columns: Option<Vec<usize>>,
    prune_hints: Vec<(String, BinOp, Value)>,
    compile_ms: f64,
}

/// Lowers an eligible SELECT to a [`CompiledSelect`], or `None` when any
/// part is outside the compilable subset. `None` is never an error: the
/// interpreted drive runs instead and reports the canonical error if the
/// query is genuinely invalid.
fn compile_select(catalog: &Catalog, select: &Select) -> Option<CompiledSelect> {
    use std::time::Instant;

    // Shape gates: only streaming scan → probe → filter → project
    // pipelines compile. Blocking operators and lazy-LIMIT semantics stay
    // on the interpreted operators.
    if select_has_agg(select)
        || !select.group_by.is_empty()
        || !select.order_by.is_empty()
        || select.distinct
        || select.limit.is_some()
    {
        return None;
    }
    let table = catalog.get(&select.from).ok()?;
    // An index hit reads candidate positions instead of scanning; that
    // access path stays interpreted (it is already sub-linear).
    if let Some(w) = &select.where_clause {
        if let Some((column, _)) = equality_target(w, &select.from, table.schema()) {
            if catalog.index_on(&select.from, &column).is_some() {
                return None;
            }
        }
    }

    // Resolve the joined schema and per-stage probe columns without yet
    // materializing any build side (compilation may still bail).
    let mut left_schema = table.schema().clone();
    let mut join_specs = Vec::with_capacity(select.joins.len());
    for j in &select.joins {
        let right = catalog.get(&j.table).ok()?;
        let right_schema = right.schema().clone();
        let (left_col, right_col) =
            orient_on(&left_schema, &right_schema, &j.on_left, &j.on_right).ok()?;
        let key_idx = left_schema.resolve(&left_col).ok()?;
        let kind = if j.left_outer {
            JoinKind::Left
        } else {
            JoinKind::Inner
        };
        left_schema = left_schema.join(&right_schema, "right");
        join_specs.push((right, right_col, key_idx, kind));
    }
    let pred: Option<Expr> = match &select.where_clause {
        Some(w) => Some(to_expr(w, &left_schema).ok()?),
        None => None,
    };
    let outputs = projection_outputs(select, &left_schema).ok()?;

    // Column pruning: on join-free plans with an explicit projection, the
    // scan only materializes the columns the predicate and outputs read —
    // on a paged table, unread columns' pages are never decoded. The
    // pipeline then compiles against the pruned schema.
    let mut scan_columns = None;
    let mut compile_schema = left_schema.clone();
    if select.joins.is_empty() {
        if let Some(outs) = &outputs {
            let mut needed: Vec<usize> = outs
                .iter()
                .flat_map(|(_, e)| e.referenced_columns())
                .chain(pred.iter().flat_map(Expr::referenced_columns))
                .filter_map(|name| left_schema.index_of(&name))
                .collect();
            needed.sort_unstable();
            needed.dedup();
            if !needed.is_empty() && needed.len() < left_schema.arity() {
                compile_schema = left_schema.project(&needed);
                scan_columns = Some(needed);
            }
        }
    }

    let compile_started = Instant::now();
    let pipeline = CompiledPipeline::compile(&compile_schema, pred.as_ref(), outputs.as_deref())?;
    let compile_ms = compile_started.elapsed().as_secs_f64() * 1000.0;

    let out_schema = match &outputs {
        Some(outs) => Project::output_schema(&compile_schema, outs).ok()?,
        None => left_schema.clone(),
    };
    // Only now pay for the build sides: the pipeline is known compilable.
    let mut stages = Vec::with_capacity(join_specs.len());
    for (right, right_col, key_idx, kind) in join_specs {
        let build = Arc::new(
            kath_storage::JoinBuild::build(Box::new(TableScan::new(right)), &right_col).ok()?,
        );
        stages.push((build, key_idx, kind));
    }
    let prune_hints = match &select.where_clause {
        Some(w) if select.joins.is_empty() => prune_conjuncts(w, &select.from, table.schema()),
        _ => Vec::new(),
    };
    Some(CompiledSelect {
        table,
        stages,
        joined_arity: left_schema.arity(),
        pipeline,
        out_schema,
        scan_columns,
        prune_hints,
        compile_ms,
    })
}

/// The compiled fused drive of an eligible SELECT: each morsel runs one
/// tight loop — zone-map-pruned page-range scan, hash-join probes against
/// shared build sides, then the fused filter→project pipeline — with no
/// per-operator `next_batch` dispatch between them. Returns `Ok(None)`
/// when the plan is not compilable (the caller falls back to interpreted
/// execution); results are otherwise identical to the interpreted drives,
/// serial and parallel (morsel outputs concatenate in scan order).
fn run_select_compiled(
    catalog: &Catalog,
    select: &Select,
    output_name: &str,
    batch: usize,
    threads: usize,
    guard: &QueryGuard,
) -> Result<Option<(Table, SelectStats)>, SqlError> {
    use kath_storage::{run_morsels_guarded, MorselSource, Row};
    use std::time::Instant;

    let Some(plan) = compile_select(catalog, select) else {
        return Ok(None);
    };
    let table = &plan.table;
    let total = table.len();

    // One worker's fused loop over one claimed row range. The guard rides
    // on the scan (checked once per fused-loop iteration, i.e. per input
    // batch) and is charged for every output batch the pipeline emits.
    let work = |start: usize, end: usize| -> Result<(Vec<Row>, usize), StorageError> {
        let mut scan = TableScan::new(Arc::clone(table))
            .with_range(start, end)
            .with_prune_hint(&plan.prune_hints)
            .with_batch_size(batch)
            .with_guard(guard.clone());
        if let Some(cols) = &plan.scan_columns {
            scan = scan.with_columns(cols);
        }
        let mut rows: Vec<Row> = Vec::new();
        let mut batches = 0usize;
        while let Some(b) = scan.next_batch()? {
            let b = if plan.stages.is_empty() {
                b
            } else {
                // Row-wise probes, forward match order — exactly the
                // interpreted HashJoin's output order and NULL handling
                // (NULL keys never match; LEFT pads the build arity).
                let mut cur: Vec<Row> = b.into_rows();
                for (build, key_idx, kind) in &plan.stages {
                    let mut next = Vec::with_capacity(cur.len());
                    for lrow in cur {
                        match build.matches(&lrow[*key_idx]) {
                            Some(rrows) => {
                                for rrow in rrows {
                                    let mut joined = lrow.clone();
                                    joined.extend(rrow.iter().cloned());
                                    next.push(joined);
                                }
                            }
                            None => {
                                if *kind == JoinKind::Left {
                                    let mut joined = lrow;
                                    joined.extend(std::iter::repeat_n(
                                        Value::Null,
                                        build.right_arity(),
                                    ));
                                    next.push(joined);
                                }
                            }
                        }
                    }
                    cur = next;
                }
                if cur.is_empty() {
                    continue;
                }
                kath_storage::RowBatch::from_rows(plan.joined_arity, cur)
            };
            if let Some(out) = plan.pipeline.process(b)? {
                guard.charge_batch(&out)?;
                batches += 1;
                rows.extend(out.into_rows());
            }
        }
        Ok((rows, batches))
    };

    // Morsel-parallel drive when there is enough work to split; morsels of
    // a paged table align to page boundaries so no two workers decode the
    // same column page.
    if threads > 1 {
        let source = match table.paged() {
            Some(pt) => MorselSource::with_batch_size_aligned(total, batch, pt.page_rows()),
            None => MorselSource::with_batch_size(total, batch),
        };
        if source.morsel_count() >= 2 {
            let run = run_morsels_guarded(&source, threads, guard, |m| work(m.start, m.end))
                .map_err(SqlError::Storage)?;
            let worker_ms = run.worker_ms.clone();
            let merge_started = Instant::now();
            let mut rows = Vec::new();
            let mut batches = 0;
            for (r, b) in run.outputs {
                batches += b;
                rows.extend(r);
            }
            let out =
                Table::from_rows(output_name, plan.out_schema, rows).map_err(SqlError::Storage)?;
            let stats = SelectStats {
                batches,
                workers: worker_ms.len(),
                worker_ms,
                merge_ms: merge_started.elapsed().as_secs_f64() * 1000.0,
                compiled: true,
                compile_ms: plan.compile_ms,
            };
            return Ok(Some((out, stats)));
        }
    }
    let (rows, batches) = work(0, total).map_err(SqlError::Storage)?;
    let out = Table::from_rows(output_name, plan.out_schema, rows).map_err(SqlError::Storage)?;
    let stats = SelectStats {
        batches,
        workers: 1,
        worker_ms: Vec::new(),
        merge_ms: 0.0,
        compiled: true,
        compile_ms: plan.compile_ms,
    };
    Ok(Some((out, stats)))
}

/// Whether any SELECT item carries an aggregate call.
fn select_has_agg(select: &Select) -> bool {
    select.items.iter().any(|i| match i {
        SelectItem::Expr(e, _) => contains_agg(e),
        SelectItem::Wildcard => false,
    })
}

/// The ORDER BY keys lowered to storage [`SortKey`]s when every key is a
/// bare column; `None` when any key is a computed expression (those plans
/// sort on hidden computed columns — see [`plan_expression_sort`] — or
/// take the vector top-k path).
fn plain_sort_keys(select: &Select) -> Option<Vec<SortKey>> {
    select
        .order_by
        .iter()
        .map(|k| {
            k.as_column().map(|c| SortKey {
                column: c.to_string(),
                desc: k.desc,
            })
        })
        .collect()
}

/// A hidden sort-column name that cannot collide with the input schema.
fn hidden_sort_name(schema: &Schema, i: usize) -> String {
    let mut name = format!("__sort_{i}");
    while schema.index_of(&name).is_some() {
        name.push('_');
    }
    name
}

/// Plans ORDER BY with computed (non-column) keys: the input schema is
/// extended with one hidden column per expression key, sorted on those,
/// then projected down to the requested outputs (dropping the hidden
/// keys). This is the general-sort fallback the vector top-k operator is
/// benchmarked against — and the semantics it must reproduce exactly.
fn plan_expression_sort(
    op: Box<dyn Operator>,
    select: &Select,
) -> Result<Box<dyn Operator>, SqlError> {
    let base = op.schema().clone();
    let outputs = match projection_outputs(select, &base)? {
        Some(outputs) => outputs,
        // SELECT *: project the base columns back out after the sort.
        None => base
            .names()
            .iter()
            .map(|n| (n.to_string(), Expr::col(*n)))
            .collect(),
    };
    let mut ext: Vec<(String, Expr)> = base
        .names()
        .iter()
        .map(|n| (n.to_string(), Expr::col(*n)))
        .collect();
    let mut sort_keys = Vec::with_capacity(select.order_by.len());
    let mut hidden = |expr: Expr, i: usize, desc: bool, sort_keys: &mut Vec<SortKey>| {
        let name = hidden_sort_name(&base, i);
        ext.push((name.clone(), expr));
        sort_keys.push(SortKey { column: name, desc });
    };
    for (i, key) in select.order_by.iter().enumerate() {
        match key.as_column() {
            // A bare column may be a SELECT-list alias — which wins, as on
            // the plain sort-after-project path (for a pass-through column
            // the aliased expression computes the identical value) — or an
            // input column the projection drops.
            Some(c) => match outputs.iter().find(|(n, _)| n == c) {
                Some((_, aliased)) => hidden(aliased.clone(), i, key.desc, &mut sort_keys),
                None => sort_keys.push(SortKey {
                    column: c.to_string(),
                    desc: key.desc,
                }),
            },
            None => hidden(to_expr(&key.expr, &base)?, i, key.desc, &mut sort_keys),
        }
    }
    let op = Box::new(Project::new(op, ext)?);
    let op = Box::new(Sort::new(op, sort_keys)?);
    Ok(Box::new(Project::new(op, outputs)?))
}

/// A detected top-k vector-search pattern: `SELECT ... FROM table ORDER BY
/// SIMILARITY(column, 'query') DESC LIMIT k` with no joins, WHERE,
/// grouping, aggregation, or DISTINCT.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorPattern {
    /// The FROM table.
    pub table: String,
    /// The embedding (BLOB) or text (STR) column being searched.
    pub column: String,
    /// The query text (embedded through the canonical shared embedder).
    pub query: String,
    /// LIMIT — the k of top-k.
    pub k: usize,
}

/// Detects the top-k vector-search pattern, if this SELECT matches it and
/// the FROM table exists with the named column. Queries outside the
/// pattern (extra sort keys, ASC order, WHERE clauses, joins, DISTINCT)
/// keep the classical plan — the similarity expression still evaluates
/// there via the scalar/batched kernels.
pub fn vector_topk_pattern(catalog: &Catalog, select: &Select) -> Option<VectorPattern> {
    if !select.joins.is_empty()
        || select.where_clause.is_some()
        || !select.group_by.is_empty()
        || select.distinct
        || select_has_agg(select)
    {
        return None;
    }
    let k = select.limit?;
    let [key] = &select.order_by[..] else {
        return None;
    };
    if !key.desc {
        return None;
    }
    let SqlExpr::Call(name, args) = &key.expr else {
        return None;
    };
    if name != "similarity" || args.len() != 2 {
        return None;
    }
    let SqlExpr::Column(qualifier, column) = &args[0] else {
        return None;
    };
    if qualifier.as_deref().is_some_and(|q| q != select.from) {
        return None;
    }
    let SqlExpr::Str(query) = &args[1] else {
        return None;
    };
    let table = catalog.get(&select.from).ok()?;
    table.schema().index_of(column)?;
    Some(VectorPattern {
        table: select.from.clone(),
        column: column.clone(),
        query: query.clone(),
        k,
    })
}

/// The physical plan the optimizer picks for this SELECT's vector
/// pattern: `None` when the pattern does not apply (or the mode forbids
/// the vector path), otherwise the detected pattern with its Flat/IVF
/// choice — forced by the mode, or made by the cost model from the
/// table's cardinality (§4's exact-vs-approximate trade for the same
/// logical operator). Exposed so the facade, EXPLAIN surfaces, and tests
/// can inspect the physical choice without executing.
pub fn vector_plan_choice(
    catalog: &Catalog,
    select: &Select,
    vector: VectorMode,
) -> Option<(VectorPattern, VectorStrategy)> {
    if vector == VectorMode::Off {
        return None;
    }
    let pattern = vector_topk_pattern(catalog, select)?;
    let strategy = match vector {
        VectorMode::Flat => VectorStrategy::Flat,
        VectorMode::Ivf => VectorStrategy::Ivf,
        VectorMode::Auto | VectorMode::Off => {
            let rows = catalog.get(&pattern.table).ok()?.len();
            preferred_vector_strategy(rows)
        }
    };
    Some((pattern, strategy))
}

/// Lowers a detected vector pattern to the physical plan
/// `VectorTopK → [Project] → Limit` and runs it.
fn run_vector_topk(
    catalog: &Catalog,
    select: &Select,
    pattern: &VectorPattern,
    strategy: VectorStrategy,
    output_name: &str,
    mode: ExecMode,
    guard: &QueryGuard,
) -> Result<(Table, usize), SqlError> {
    let table = catalog.get(&pattern.table)?;
    let index = catalog.vector_index_for(&pattern.table, &pattern.column)?;
    let query = kath_vector::embed_query(&pattern.query);
    let mut op: Box<dyn Operator> = Box::new(VectorTopK::new(
        Arc::clone(&table),
        &index,
        &query,
        pattern.k,
        strategy,
        mode.batch_size(),
    ));
    if let Some(outputs) = projection_outputs(select, op.schema())? {
        op = Box::new(Project::new(op, outputs)?);
    }
    op = Box::new(Limit::new(op, pattern.k));
    match mode {
        ExecMode::Volcano => Ok((collect_guarded(output_name, op, guard)?, 0)),
        ExecMode::Batched(_) => Ok(collect_batched_guarded(output_name, op, guard)?),
    }
}

/// The morsel-parallel drive of the vector pattern: workers claim ranges
/// of the index's scored entries, compute thread-local top-k heaps, and
/// the candidates merge deterministically (score descending, then row
/// position) — every global winner survives its own morsel's local top-k,
/// so the merged result is bit-identical to the serial scan at any worker
/// count. Falls back to serial when parallelism cannot help: Volcano mode,
/// one thread, fewer than two morsels, or the IVF strategy (already
/// sublinear — its probe set is not worth splitting).
#[allow(clippy::too_many_arguments)]
fn run_vector_topk_parallel(
    catalog: &Catalog,
    select: &Select,
    pattern: &VectorPattern,
    strategy: VectorStrategy,
    output_name: &str,
    mode: ExecMode,
    threads: usize,
    guard: &QueryGuard,
) -> Result<(Table, SelectStats), SqlError> {
    use kath_storage::{run_morsels_guarded, MorselSource};
    use std::time::Instant;

    let serial = || {
        run_vector_topk(catalog, select, pattern, strategy, output_name, mode, guard)
            .map(|(t, batches)| (t, SelectStats::serial(batches)))
    };
    let Some(batch) = mode.batch_size() else {
        return serial();
    };
    if threads <= 1 || strategy != VectorStrategy::Flat {
        return serial();
    }
    let table = catalog.get(&pattern.table)?;
    let index = catalog.vector_index_for(&pattern.table, &pattern.column)?;
    let entries = index.entries();
    let source = MorselSource::with_batch_size(entries.len(), batch);
    if source.morsel_count() < 2 {
        return serial();
    }
    let query = kath_vector::embed_query(&pattern.query);
    let run = run_morsels_guarded(&source, threads, guard, |m| {
        Ok(top_k_entries(&entries[m.start..m.end], &query, pattern.k))
    })
    .map_err(SqlError::Storage)?;
    let worker_ms = run.worker_ms.clone();
    let merge_started = Instant::now();
    let candidates: Vec<(usize, f32)> = run.outputs.into_iter().flatten().collect();
    let mut positions: Vec<usize> = merge_top_k(candidates, pattern.k)
        .into_iter()
        .map(|(pos, _)| pos)
        .collect();
    if positions.len() < pattern.k {
        // Pad with unscored rows in row order, exactly like the serial
        // search (and the full-sort fallback's NULL-score tail).
        let missing = pattern.k - positions.len();
        positions.extend(index.unscored().iter().copied().take(missing));
    }
    // The serial tail over k rows: rank-order scan → projection → limit.
    let mut op: Box<dyn Operator> =
        Box::new(IndexScan::new(Arc::clone(&table), positions).with_batch_size(batch));
    if let Some(outputs) = projection_outputs(select, op.schema())? {
        op = Box::new(Project::new(op, outputs)?);
    }
    op = Box::new(Limit::new(op, pattern.k));
    let (out, batches) =
        collect_batched_guarded(output_name, op, guard).map_err(SqlError::Storage)?;
    let stats = SelectStats {
        batches,
        workers: worker_ms.len(),
        worker_ms,
        merge_ms: merge_started.elapsed().as_secs_f64() * 1000.0,
        compiled: false,
        compile_ms: 0.0,
    };
    Ok((out, stats))
}

/// The non-aggregate projection list of a SELECT resolved against the
/// post-join schema, or `None` for a bare `SELECT *` (no projection node).
fn projection_outputs(
    select: &Select,
    schema: &Schema,
) -> Result<Option<Vec<(String, Expr)>>, SqlError> {
    if select.items.len() == 1 && select.items[0] == SelectItem::Wildcard {
        return Ok(None);
    }
    let mut outputs = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for name in schema.names() {
                    outputs.push((name.to_string(), Expr::col(name)));
                }
            }
            SelectItem::Expr(e, alias) => {
                let name = alias.clone().unwrap_or_else(|| default_name(e));
                outputs.push((name, to_expr(e, schema)?));
            }
        }
    }
    Ok(Some(outputs))
}

/// Whether the sort must run before the projection (ORDER BY references a
/// column the projection drops).
fn sort_before_project(sort_keys: &[SortKey], outputs: &[(String, Expr)]) -> bool {
    !sort_keys.is_empty()
        && sort_keys
            .iter()
            .any(|k| !outputs.iter().any(|(n, _)| *n == k.column))
}

/// The access path for the FROM table: an [`IndexScan`] when an equality
/// conjunct of the WHERE clause hits a catalog index, a [`TableScan`]
/// otherwise. The batch size of the mode is applied to the scan, which
/// pass-through operators inherit.
fn leading_scan(
    catalog: &Catalog,
    select: &Select,
    mode: ExecMode,
    guard: &QueryGuard,
) -> Result<Box<dyn Operator>, SqlError> {
    let table = catalog.get(&select.from)?;
    let batch = mode.batch_size();
    if let Some(w) = &select.where_clause {
        if let Some((column, value)) = equality_target(w, &select.from, table.schema()) {
            if let Some(ix) = catalog.index_on(&select.from, &column) {
                let positions = ix.lookup(&value).to_vec();
                let scan = IndexScan::new(table, positions).with_guard(guard.clone());
                return Ok(match batch {
                    Some(n) => Box::new(scan.with_batch_size(n)),
                    None => Box::new(scan),
                });
            }
        }
    }
    let mut scan = TableScan::new(table).with_guard(guard.clone());
    // Zone-map prune hints are safe only on join-free plans (see
    // `prune_conjuncts`).
    if select.joins.is_empty() {
        if let Some(w) = &select.where_clause {
            let schema = catalog.get(&select.from)?.schema().clone();
            scan = scan.with_prune_hint(&prune_conjuncts(w, &select.from, &schema));
        }
    }
    Ok(match batch {
        Some(n) => Box::new(scan.with_batch_size(n)),
        None => Box::new(scan),
    })
}

/// Finds a `column = literal` conjunct of `predicate` over a column of the
/// FROM table (qualifier absent or equal to `from`). The index candidate
/// set is a superset of the predicate's matches, so callers must still
/// apply the full predicate.
fn equality_target(predicate: &SqlExpr, from: &str, schema: &Schema) -> Option<(String, Value)> {
    match predicate {
        SqlExpr::Binary(SqlBinOp::And, l, r) => {
            equality_target(l, from, schema).or_else(|| equality_target(r, from, schema))
        }
        SqlExpr::Binary(SqlBinOp::Eq, l, r) => {
            let col_lit = |a: &SqlExpr, b: &SqlExpr| -> Option<(String, Value)> {
                let SqlExpr::Column(qualifier, column) = a else {
                    return None;
                };
                if qualifier.as_deref().is_some_and(|q| q != from) {
                    return None;
                }
                schema.index_of(column)?;
                literal_value(b).map(|v| (column.clone(), v))
            };
            col_lit(l, r).or_else(|| col_lit(r, l))
        }
        _ => None,
    }
}

/// Collects sargable `column <op> literal` conjuncts of the WHERE clause
/// over the FROM table, as zone-map prune hints for a paged [`TableScan`].
/// Pruning drops whole pages before the filter runs, so hints are only
/// attached to join-free plans — there the WHERE clause applies directly
/// to scan output, and a page no conjunct can match contributes no rows.
/// (After a join, column names bind ambiguously and a dropped left row
/// could still matter to a LEFT OUTER result shape.)
fn prune_conjuncts(
    predicate: &SqlExpr,
    from: &str,
    schema: &Schema,
) -> Vec<(String, BinOp, Value)> {
    fn walk(e: &SqlExpr, from: &str, schema: &Schema, out: &mut Vec<(String, BinOp, Value)>) {
        let SqlExpr::Binary(op, l, r) = e else {
            return;
        };
        if *op == SqlBinOp::And {
            walk(l, from, schema, out);
            walk(r, from, schema, out);
            return;
        }
        let bin = match op {
            SqlBinOp::Eq => BinOp::Eq,
            SqlBinOp::Ne => BinOp::Ne,
            SqlBinOp::Lt => BinOp::Lt,
            SqlBinOp::Le => BinOp::Le,
            SqlBinOp::Gt => BinOp::Gt,
            SqlBinOp::Ge => BinOp::Ge,
            _ => return,
        };
        let col_side = |a: &SqlExpr, b: &SqlExpr, op: BinOp| {
            let SqlExpr::Column(qualifier, column) = a else {
                return None;
            };
            if qualifier.as_deref().is_some_and(|q| q != from) {
                return None;
            }
            schema.index_of(column)?;
            literal_value(b).map(|v| (column.clone(), op, v))
        };
        // `lit <op> col` reads as `col <flipped-op> lit`.
        let flipped = match bin {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        if let Some(hint) = col_side(l, r, bin).or_else(|| col_side(r, l, flipped)) {
            out.push(hint);
        }
    }
    let mut out = Vec::new();
    walk(predicate, from, schema, &mut out);
    out
}

fn literal_value(e: &SqlExpr) -> Option<Value> {
    match e {
        SqlExpr::Int(i) => Some(Value::Int(*i)),
        SqlExpr::Float(f) => Some(Value::Float(*f)),
        SqlExpr::Str(s) => Some(Value::Str(s.clone())),
        SqlExpr::Bool(b) => Some(Value::Bool(*b)),
        _ => None,
    }
}

/// The validated aggregation shape of a SELECT: GROUP BY keys and
/// aggregate outputs. Shared by the serial planner (which wraps it in a
/// [`HashAggregate`]) and the parallel driver (which builds one
/// [`PartialAggregate`] per morsel from it).
struct AggSpec {
    group_names: Vec<String>,
    aggregates: Vec<Aggregate>,
}

fn aggregate_spec(select: &Select) -> Result<AggSpec, SqlError> {
    let mut aggregates = Vec::new();
    let mut group_names = select.group_by.clone();

    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                return Err(SqlError::Unsupported(
                    "SELECT * cannot be combined with aggregation".into(),
                ))
            }
            SelectItem::Expr(SqlExpr::Agg(agg, arg), alias) => {
                let column = match arg.as_deref() {
                    None => None,
                    Some(SqlExpr::Column(_, c)) => Some(c.clone()),
                    Some(other) => {
                        return Err(SqlError::Unsupported(format!(
                            "aggregate over expression '{other}' (use a plain column)"
                        )))
                    }
                };
                let output = alias.clone().unwrap_or_else(|| {
                    format!(
                        "{}_{}",
                        agg.name().to_ascii_lowercase(),
                        column.clone().unwrap_or_else(|| "all".into())
                    )
                });
                let func = match (agg, column.is_some()) {
                    (AggCall::Count, false) => AggFunc::CountStar,
                    (AggCall::Count, true) => AggFunc::Count,
                    (AggCall::Sum, _) => AggFunc::Sum,
                    (AggCall::Avg, _) => AggFunc::Avg,
                    (AggCall::Min, _) => AggFunc::Min,
                    (AggCall::Max, _) => AggFunc::Max,
                };
                aggregates.push(Aggregate {
                    func,
                    column,
                    output,
                });
            }
            SelectItem::Expr(SqlExpr::Column(_, c), _alias) => {
                if !group_names.contains(c) {
                    // Implicit grouping column (common in generated SQL).
                    if select.group_by.is_empty() {
                        return Err(SqlError::Unsupported(format!(
                            "column '{c}' must appear in GROUP BY"
                        )));
                    }
                    return Err(SqlError::Unsupported(format!(
                        "column '{c}' is not in GROUP BY"
                    )));
                }
                // The output schema is group keys then aggregates; bare
                // group columns in the SELECT list are validated only.
            }
            SelectItem::Expr(e, _) => {
                return Err(SqlError::Unsupported(format!(
                    "non-column expression '{e}' in aggregate query"
                )))
            }
        }
    }

    // GROUP BY columns not in the SELECT list are still legal keys.
    group_names.dedup();
    Ok(AggSpec {
        group_names,
        aggregates,
    })
}

fn plan_aggregate(
    input: Box<dyn Operator>,
    select: &Select,
) -> Result<Box<dyn Operator>, SqlError> {
    let spec = aggregate_spec(select)?;
    let agg = HashAggregate::new(input, spec.group_names, spec.aggregates)?;
    Ok(Box::new(agg))
}

fn orient_on(
    left: &Schema,
    right: &Schema,
    a: &(Option<String>, String),
    b: &(Option<String>, String),
) -> Result<(String, String), SqlError> {
    let in_left = |c: &(Option<String>, String)| resolve_name(left, c).ok();
    let in_right =
        |c: &(Option<String>, String)| right.index_of(&c.1).map(|i| right.column(i).name.clone());
    if let (Some(l), Some(r)) = (in_left(a), in_right(b)) {
        return Ok((l, r));
    }
    if let (Some(l), Some(r)) = (in_left(b), in_right(a)) {
        return Ok((l, r));
    }
    Err(SqlError::Unsupported(format!(
        "cannot orient join condition {}.{} = {}.{}",
        a.0.as_deref().unwrap_or(""),
        a.1,
        b.0.as_deref().unwrap_or(""),
        b.1
    )))
}

fn resolve_name(schema: &Schema, col: &(Option<String>, String)) -> Result<String, SqlError> {
    // Resolution order: exact qualified name, bare name, right-prefixed name.
    if let Some(q) = &col.0 {
        let qualified = format!("{q}.{}", col.1);
        if schema.index_of(&qualified).is_some() {
            return Ok(qualified);
        }
    }
    if schema.index_of(&col.1).is_some() {
        return Ok(col.1.clone());
    }
    let prefixed = format!("right.{}", col.1);
    if schema.index_of(&prefixed).is_some() {
        return Ok(prefixed);
    }
    Err(SqlError::Storage(StorageError::UnknownColumn(
        col.1.clone(),
    )))
}

fn contains_agg(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Agg(..) => true,
        SqlExpr::Binary(_, l, r) => contains_agg(l) || contains_agg(r),
        SqlExpr::Not(x) | SqlExpr::Neg(x) | SqlExpr::IsNull(x, _) => contains_agg(x),
        SqlExpr::Call(_, args) => args.iter().any(contains_agg),
        _ => false,
    }
}

fn default_name(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Column(_, c) => c.clone(),
        other => other.to_string(),
    }
}

/// Lowers a [`SqlExpr`] into a storage [`Expr`] resolved against `schema`.
pub fn to_expr(e: &SqlExpr, schema: &Schema) -> Result<Expr, SqlError> {
    Ok(match e {
        SqlExpr::Column(q, c) => Expr::Col(resolve_name(schema, &(q.clone(), c.clone()))?),
        SqlExpr::Int(i) => Expr::Lit(Value::Int(*i)),
        SqlExpr::Float(x) => Expr::Lit(Value::Float(*x)),
        SqlExpr::Str(s) => Expr::Lit(Value::Str(s.clone())),
        SqlExpr::Bool(b) => Expr::Lit(Value::Bool(*b)),
        SqlExpr::Null => Expr::Lit(Value::Null),
        SqlExpr::Binary(op, l, r) => Expr::Bin(
            lower_op(*op),
            Box::new(to_expr(l, schema)?),
            Box::new(to_expr(r, schema)?),
        ),
        SqlExpr::Not(x) => Expr::Not(Box::new(to_expr(x, schema)?)),
        SqlExpr::Neg(x) => Expr::Neg(Box::new(to_expr(x, schema)?)),
        SqlExpr::IsNull(x, negated) => {
            let inner = Expr::IsNull(Box::new(to_expr(x, schema)?));
            if *negated {
                Expr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        SqlExpr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter()
                .map(|a| to_expr(a, schema))
                .collect::<Result<_, _>>()?,
        ),
        SqlExpr::Agg(..) => {
            return Err(SqlError::Unsupported("aggregate in scalar position".into()))
        }
    })
}

fn lower_op(op: SqlBinOp) -> BinOp {
    match op {
        SqlBinOp::Add => BinOp::Add,
        SqlBinOp::Sub => BinOp::Sub,
        SqlBinOp::Mul => BinOp::Mul,
        SqlBinOp::Div => BinOp::Div,
        SqlBinOp::Mod => BinOp::Mod,
        SqlBinOp::Eq => BinOp::Eq,
        SqlBinOp::Ne => BinOp::Ne,
        SqlBinOp::Lt => BinOp::Lt,
        SqlBinOp::Le => BinOp::Le,
        SqlBinOp::Gt => BinOp::Gt,
        SqlBinOp::Ge => BinOp::Ge,
        SqlBinOp::And => BinOp::And,
        SqlBinOp::Or => BinOp::Or,
    }
}

fn parse_type(ty: &str) -> Result<DataType, SqlError> {
    Ok(match ty.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" => DataType::Int,
        "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
        "STR" | "TEXT" | "VARCHAR" | "STRING" => DataType::Str,
        "BOOL" | "BOOLEAN" => DataType::Bool,
        "BLOB" | "BYTES" => DataType::Blob,
        "ANY" => DataType::Any,
        other => {
            return Err(SqlError::Unsupported(format!(
                "unknown column type '{other}'"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        execute(
            &mut c,
            "CREATE TABLE films (id INT, title STR, year INT)",
            "x",
        )
        .unwrap();
        execute(
            &mut c,
            "INSERT INTO films VALUES \
             (1, 'Guilty by Suspicion', 1991), \
             (2, 'Clean and Sober', 1988), \
             (3, 'Quiet Days', 1975), \
             (4, 'Night Chase', 1991)",
            "x",
        )
        .unwrap();
        execute(
            &mut c,
            "CREATE TABLE posters (film_id INT, boring BOOL)",
            "x",
        )
        .unwrap();
        execute(
            &mut c,
            "INSERT INTO posters VALUES (1, TRUE), (2, TRUE), (4, FALSE)",
            "x",
        )
        .unwrap();
        c
    }

    #[test]
    fn drop_table_removes_and_validates() {
        let mut c = catalog();
        assert!(c.contains("posters"));
        execute(&mut c, "DROP TABLE posters", "x").unwrap();
        assert!(!c.contains("posters"));
        assert!(matches!(
            execute(&mut c, "DROP TABLE posters", "x"),
            Err(SqlError::Storage(StorageError::UnknownTable(_)))
        ));
    }

    #[test]
    fn plan_mutation_validates_without_applying() {
        let c = catalog();
        // Planning an INSERT leaves the catalog untouched.
        let stmt = parse_statement("INSERT INTO films VALUES (9, 'New', 2001)").unwrap();
        let record = plan_mutation(&c, &stmt).unwrap();
        assert_eq!(c.get("films").unwrap().len(), 4);
        assert!(matches!(
            &record,
            WalRecord::Insert { table, rows } if table == "films" && rows.len() == 1
        ));
        // Bad mutations fail at planning time, before anything is logged.
        let dup = parse_statement("CREATE TABLE films (id INT)").unwrap();
        assert!(matches!(
            plan_mutation(&c, &dup),
            Err(SqlError::Storage(StorageError::TableExists(_)))
        ));
        let missing = parse_statement("INSERT INTO nope VALUES (1)").unwrap();
        assert!(plan_mutation(&c, &missing).is_err());
        let bad_type = parse_statement("INSERT INTO films VALUES ('x', 2, 3)").unwrap();
        assert!(plan_mutation(&c, &bad_type).is_err());
        // Applying the planned record matches direct execution.
        let mut c2 = catalog();
        let summary = apply_mutation(&mut c2, &record, "out").unwrap();
        assert_eq!(summary.cell(0, "rows_inserted").unwrap().as_int(), Some(1));
        assert_eq!(c2.get("films").unwrap().len(), 5);
    }

    #[test]
    fn end_to_end_select() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title FROM films WHERE year >= 1988 ORDER BY year DESC, title ASC LIMIT 2",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
        assert_eq!(t.cell(1, "title").unwrap().as_str(), Some("Night Chase"));
    }

    #[test]
    fn join_with_qualified_on() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title, boring FROM films JOIN posters ON films.id = posters.film_id \
             WHERE boring = TRUE",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn join_on_reversed_condition() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title FROM films JOIN posters ON posters.film_id = films.id",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn left_join_pads_nulls() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title, boring FROM films LEFT JOIN posters ON films.id = posters.film_id \
             ORDER BY title",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 4);
        let quiet = t
            .find("title", &Value::Str("Quiet Days".into()))
            .unwrap()
            .unwrap();
        assert!(t.cell(quiet, "boring").unwrap().is_null());
    }

    #[test]
    fn group_by_count_avg() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT year, COUNT(*) AS n FROM films GROUP BY year ORDER BY year",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell(2, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn global_aggregate() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT COUNT(*) AS n, MAX(year) AS y FROM films",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "n").unwrap(), &Value::Int(4));
        assert_eq!(t.cell(0, "y").unwrap(), &Value::Int(1991));
    }

    #[test]
    fn computed_projection_with_alias() {
        let mut c = catalog();
        let t = execute(
            &mut c,
            "SELECT title, 2026 - year AS age FROM films WHERE id = 1",
            "out",
        )
        .unwrap();
        assert_eq!(t.cell(0, "age").unwrap(), &Value::Int(35));
    }

    #[test]
    fn distinct_years() {
        let mut c = catalog();
        let t = execute(&mut c, "SELECT DISTINCT year FROM films", "out").unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_returns_count_and_persists() {
        let mut c = catalog();
        let t = execute(&mut c, "INSERT INTO films VALUES (5, 'New', 2025)", "out").unwrap();
        assert_eq!(t.cell(0, "rows_inserted").unwrap(), &Value::Int(1));
        let all = execute(&mut c, "SELECT COUNT(*) AS n FROM films", "out").unwrap();
        assert_eq!(all.cell(0, "n").unwrap(), &Value::Int(5));
    }

    #[test]
    fn errors_are_reported() {
        let mut c = catalog();
        assert!(matches!(
            execute(&mut c, "SELECT * FROM missing", "out"),
            Err(SqlError::Storage(StorageError::UnknownTable(_)))
        ));
        assert!(matches!(
            execute(&mut c, "SELECT nope FROM films", "out"),
            Err(SqlError::Storage(StorageError::UnknownColumn(_)))
        ));
        assert!(matches!(
            execute(&mut c, "SELECT title, COUNT(*) FROM films", "out"),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn volcano_and_batched_modes_agree() {
        let c = catalog();
        for sql in [
            "SELECT * FROM films",
            "SELECT title, year FROM films WHERE year >= 1988 ORDER BY year DESC, title ASC",
            "SELECT title, boring FROM films LEFT JOIN posters ON films.id = posters.film_id \
             ORDER BY title",
            "SELECT year, COUNT(*) AS n FROM films GROUP BY year ORDER BY year",
            "SELECT DISTINCT year FROM films ORDER BY year LIMIT 2",
        ] {
            let volcano = execute_with(&mut c.clone(), sql, "out", ExecMode::Volcano).unwrap();
            for bs in [1usize, 2, 1024] {
                let batched =
                    execute_with(&mut c.clone(), sql, "out", ExecMode::Batched(bs)).unwrap();
                assert_eq!(batched, volcano, "{sql} (batch {bs})");
            }
        }
    }

    #[test]
    fn equality_predicate_uses_index_with_same_result() {
        let mut c = catalog();
        let unindexed =
            execute(&mut c, "SELECT title FROM films WHERE year = 1991", "out").unwrap();
        c.create_index("films", "year").unwrap();
        let indexed = execute(&mut c, "SELECT title FROM films WHERE year = 1991", "out").unwrap();
        assert_eq!(indexed, unindexed);
        assert_eq!(indexed.len(), 2);

        // Compound predicates still narrow via the equality conjunct and
        // re-apply the rest.
        let t = execute(
            &mut c,
            "SELECT title FROM films WHERE year = 1991 AND id > 1",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "title").unwrap().as_str(), Some("Night Chase"));

        // Non-equality predicates fall back to the scan.
        let t = execute(&mut c, "SELECT title FROM films WHERE year > 1988", "out").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn index_survives_insert() {
        let mut c = catalog();
        c.create_index("films", "year").unwrap();
        execute(
            &mut c,
            "INSERT INTO films VALUES (5, 'Late Entry', 1991)",
            "x",
        )
        .unwrap();
        let t = execute(
            &mut c,
            "SELECT title FROM films WHERE year = 1991 ORDER BY title",
            "out",
        )
        .unwrap();
        assert_eq!(t.len(), 3, "{}", t.render());
        assert_eq!(t.cell(1, "title").unwrap().as_str(), Some("Late Entry"));
    }

    #[test]
    fn run_select_with_reports_batches() {
        let c = catalog();
        let select = crate::parser::parse_select("SELECT title FROM films").unwrap();
        let (t, batches) = run_select_with(&c, &select, "out", ExecMode::Batched(2)).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(batches, 2);
        let (_, batches) = run_select_with(&c, &select, "out", ExecMode::Volcano).unwrap();
        assert_eq!(batches, 0);
    }

    /// A catalog big enough that parallel runs split into several morsels
    /// even at small batch sizes.
    fn wide_catalog() -> Catalog {
        let mut c = catalog();
        let mut inserts = String::from("INSERT INTO films VALUES ");
        for i in 5..400i64 {
            if i > 5 {
                inserts.push_str(", ");
            }
            inserts.push_str(&format!("({i}, 'film {}', {})", i % 7, 1950 + i % 60));
        }
        execute(&mut c, &inserts, "x").unwrap();
        c
    }

    #[test]
    fn parallel_select_matches_serial_for_every_plan_shape() {
        let c = wide_catalog();
        let queries = [
            "SELECT * FROM films",
            "SELECT title, year FROM films WHERE year >= 1988",
            "SELECT title, 2030 - year AS age FROM films WHERE year > 1960 ORDER BY age, title",
            // ORDER BY a column the projection drops (sort-before-project).
            "SELECT title FROM films WHERE year > 1960 ORDER BY year DESC, id ASC",
            "SELECT title, boring FROM films JOIN posters ON films.id = posters.film_id",
            "SELECT title, boring FROM films LEFT JOIN posters ON films.id = posters.film_id \
             ORDER BY title",
            "SELECT year, COUNT(*) AS n, AVG(id) AS a FROM films GROUP BY year ORDER BY year",
            "SELECT COUNT(*) AS n, MIN(title) AS t, MAX(year) AS y FROM films",
            "SELECT DISTINCT year FROM films",
            "SELECT DISTINCT year FROM films ORDER BY year DESC LIMIT 5",
            "SELECT year, COUNT(*) AS n FROM films WHERE id % 2 = 0 GROUP BY year \
             ORDER BY n DESC, year LIMIT 3",
        ];
        for sql in queries {
            let select = crate::parser::parse_select(sql).unwrap();
            for batch in [32usize, 1024] {
                let mode = ExecMode::Batched(batch);
                let (serial, _) = run_select_with(&c, &select, "out", mode).unwrap();
                for threads in [1usize, 2, 3, 8] {
                    let (parallel, stats) =
                        run_select_parallel(&c, &select, "out", mode, threads).unwrap();
                    assert_eq!(parallel, serial, "{sql} (batch {batch}, threads {threads})");
                    if threads > 1 && batch == 32 {
                        assert!(stats.workers > 1, "{sql}: expected parallel run");
                        assert_eq!(stats.worker_ms.len(), stats.workers);
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_select_uses_index_positions() {
        let mut c = wide_catalog();
        c.create_index("films", "year").unwrap();
        let select =
            crate::parser::parse_select("SELECT title FROM films WHERE year = 1991 AND id > 1")
                .unwrap();
        // The equality conjunct narrows to 8 candidate positions; batch
        // size 1 keeps the morsels small enough that even this tiny
        // candidate set still splits across workers.
        let (serial, _) = run_select_with(&c, &select, "out", ExecMode::Batched(1)).unwrap();
        let (parallel, stats) =
            run_select_parallel(&c, &select, "out", ExecMode::Batched(1), 4).unwrap();
        assert_eq!(parallel, serial);
        assert!(stats.workers > 1, "index path should still parallelize");
    }

    #[test]
    fn parallel_select_falls_back_for_lazy_limit_and_volcano() {
        let c = wide_catalog();
        // LIMIT without a blocking operator keeps lazy semantics: rows past
        // the limit are never evaluated, so this division by zero (id = 0
        // never occurs; year - 1950 = 0 does) must stay unreached.
        let select = crate::parser::parse_select(
            "SELECT 100 / (year - 1950) AS q FROM films WHERE year = 1950 LIMIT 0",
        )
        .unwrap();
        let (t, stats) = run_select_parallel(&c, &select, "out", ExecMode::Batched(16), 8).unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(stats.workers, 1, "lazy LIMIT must stay serial");

        let select = crate::parser::parse_select("SELECT * FROM films").unwrap();
        let (_, stats) = run_select_parallel(&c, &select, "out", ExecMode::Volcano, 8).unwrap();
        assert_eq!(stats.workers, 1, "Volcano mode is the serial baseline");
    }

    #[test]
    fn parallel_sort_before_project_keeps_limit_lazy() {
        // ORDER BY references a dropped column (sort-before-project) and
        // LIMIT 5 covers only safe rows: the projection divides by zero for
        // year = 1950 rows, which sort after the safe ones. Serial
        // execution never evaluates them (Limit's lazy tail behind the
        // blocking sort) — parallel execution must not either.
        let c = wide_catalog();
        let select = crate::parser::parse_select(
            "SELECT 100 / (year - 1950) AS q FROM films ORDER BY year DESC LIMIT 5",
        )
        .unwrap();
        let mode = ExecMode::Batched(32);
        let (serial, _) = run_select_with(&c, &select, "out", mode).unwrap();
        for threads in [2usize, 4] {
            let (parallel, _) = run_select_parallel(&c, &select, "out", mode, threads).unwrap();
            assert_eq!(parallel, serial, "threads {threads}");
        }
        // And with DISTINCT stacked on top (still the serial operator tail).
        let select = crate::parser::parse_select(
            "SELECT DISTINCT 100 / (year - 1950) AS q FROM films ORDER BY year DESC LIMIT 3",
        )
        .unwrap();
        let (serial, _) = run_select_with(&c, &select, "out", mode).unwrap();
        let (parallel, _) = run_select_parallel(&c, &select, "out", mode, 4).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_select_errors_match_serial() {
        let c = wide_catalog();
        let select =
            crate::parser::parse_select("SELECT MAX(id) AS m FROM films ORDER BY m").unwrap();
        let serial_ok = run_select_with(&c, &select, "out", ExecMode::Batched(16)).is_ok();
        let parallel_ok = run_select_parallel(&c, &select, "out", ExecMode::Batched(16), 4).is_ok();
        assert_eq!(serial_ok, parallel_ok);

        let bad = crate::parser::parse_select(
            "SELECT title FROM films WHERE 1 / (year - 1950) > 0 ORDER BY title",
        )
        .unwrap();
        let serial = run_select_with(&c, &bad, "out", ExecMode::Batched(16));
        let parallel = run_select_parallel(&c, &bad, "out", ExecMode::Batched(16), 4);
        assert!(serial.is_err());
        assert!(parallel.is_err(), "parallel must fail when serial fails");
    }

    /// A catalog with an embedded-documents table: `body` is raw text,
    /// `emb` its canonical embedding blob.
    fn vector_catalog(n: usize) -> Catalog {
        use kath_storage::encode_embedding;
        let mut c = Catalog::new();
        execute(
            &mut c,
            "CREATE TABLE docs (id INT, body STR, emb BLOB)",
            "x",
        )
        .unwrap();
        let phrases = [
            "gun fight at the warehouse",
            "a calm walk in the garden",
            "murder on the night train",
            "tea and quiet routine",
            "explosion during the chase",
            "a peaceful ordinary day",
        ];
        let mut table = (*c.get("docs").unwrap()).clone();
        for i in 0..n {
            let body = phrases[i % phrases.len()];
            table
                .push(vec![
                    Value::Int(i as i64),
                    Value::Str(body.to_string()),
                    Value::Blob(encode_embedding(&kath_vector::embed_query(body))),
                ])
                .unwrap();
        }
        c.register_or_replace(table);
        c
    }

    const VECTOR_SQL: &str =
        "SELECT id, body FROM docs ORDER BY SIMILARITY(emb, 'shootout weapon') DESC LIMIT 4";

    #[test]
    fn vector_pattern_detection_and_gates() {
        let c = vector_catalog(12);
        let matches = |sql: &str| {
            vector_topk_pattern(&c, &crate::parser::parse_select(sql).unwrap()).is_some()
        };
        assert!(matches(VECTOR_SQL));
        assert!(matches(
            "SELECT * FROM docs ORDER BY similarity(body, 'gun') DESC LIMIT 1"
        ));
        assert!(matches(
            "SELECT * FROM docs ORDER BY SIMILARITY(docs.emb, 'gun') DESC LIMIT 2"
        ));
        // Shapes outside the pattern keep the classical plan.
        for sql in [
            "SELECT * FROM docs ORDER BY SIMILARITY(emb, 'gun') DESC", // no LIMIT
            "SELECT * FROM docs ORDER BY SIMILARITY(emb, 'gun') ASC LIMIT 2", // ascending
            "SELECT * FROM docs ORDER BY SIMILARITY(emb, 'gun') DESC, id LIMIT 2", // extra key
            "SELECT * FROM docs WHERE id > 1 ORDER BY SIMILARITY(emb, 'gun') DESC LIMIT 2",
            "SELECT DISTINCT body FROM docs ORDER BY SIMILARITY(emb, 'gun') DESC LIMIT 2",
            "SELECT * FROM docs ORDER BY SIMILARITY(emb, body) DESC LIMIT 2", // non-literal query
            "SELECT * FROM docs ORDER BY SIMILARITY(nope, 'gun') DESC LIMIT 2", // unknown column
        ] {
            assert!(!matches(sql), "must not take the vector path: {sql}");
        }
    }

    #[test]
    fn vector_choice_follows_cardinality_and_mode() {
        let choice = |c: &Catalog, vector| {
            let select = crate::parser::parse_select(VECTOR_SQL).unwrap();
            vector_plan_choice(c, &select, vector).map(|(pattern, strategy)| {
                assert_eq!(pattern.table, "docs");
                assert_eq!(pattern.column, "emb");
                assert_eq!(pattern.k, 4);
                strategy
            })
        };
        let small = vector_catalog(12);
        assert_eq!(choice(&small, VectorMode::Auto), Some(VectorStrategy::Flat));
        assert_eq!(choice(&small, VectorMode::Ivf), Some(VectorStrategy::Ivf));
        assert_eq!(choice(&small, VectorMode::Off), None);
        let large = vector_catalog(5000);
        assert_eq!(
            choice(&large, VectorMode::Auto),
            Some(VectorStrategy::Ivf),
            "the cost model must pick IVF above the crossover"
        );
    }

    #[test]
    fn vector_topk_matches_full_sort_fallback() {
        let c = vector_catalog(60);
        let select = crate::parser::parse_select(VECTOR_SQL).unwrap();
        for mode in [
            ExecMode::Volcano,
            ExecMode::Batched(7),
            ExecMode::Batched(1024),
        ] {
            let (fallback, _) = run_select_opt(&c, &select, "out", mode, VectorMode::Off).unwrap();
            assert_eq!(fallback.len(), 4);
            for vector in [VectorMode::Auto, VectorMode::Flat] {
                let (fast, _) = run_select_opt(&c, &select, "out", mode, vector).unwrap();
                assert_eq!(fast, fallback, "{mode:?} {vector:?}");
            }
        }
        // The winners are actually the violent documents.
        let (t, _) = run_select_with(&c, &select, "out", ExecMode::default()).unwrap();
        for row in t.rows() {
            let body = row[1].as_str().unwrap();
            assert!(
                !body.contains("calm") && !body.contains("peaceful") && !body.contains("tea"),
                "calm doc ranked in the violent top-k: {body}"
            );
        }
    }

    #[test]
    fn vector_topk_pads_unscored_rows_like_the_fallback() {
        let mut c = vector_catalog(3);
        // A NULL and a corrupt embedding: no-matches that still appear
        // (ranked last, in row order) when k exceeds the scored rows.
        execute(
            &mut c,
            "INSERT INTO docs VALUES (100, 'null emb', NULL)",
            "x",
        )
        .unwrap();
        let select = crate::parser::parse_select(
            "SELECT id FROM docs ORDER BY SIMILARITY(emb, 'gun') DESC LIMIT 10",
        )
        .unwrap();
        let mode = ExecMode::default();
        let (fallback, _) = run_select_opt(&c, &select, "out", mode, VectorMode::Off).unwrap();
        let (fast, _) = run_select_opt(&c, &select, "out", mode, VectorMode::Flat).unwrap();
        assert_eq!(fast, fallback);
        assert_eq!(fast.len(), 4);
        assert_eq!(fast.cell(3, "id").unwrap(), &Value::Int(100));
    }

    #[test]
    fn vector_topk_parallel_matches_serial() {
        let c = vector_catalog(300);
        let select = crate::parser::parse_select(VECTOR_SQL).unwrap();
        let mode = ExecMode::Batched(32);
        let (serial, _) = run_select_opt(&c, &select, "out", mode, VectorMode::Flat).unwrap();
        for threads in [2usize, 4, 8] {
            let (parallel, stats) =
                run_select_parallel_opt(&c, &select, "out", mode, threads, VectorMode::Flat)
                    .unwrap();
            assert_eq!(parallel, serial, "threads {threads}");
            assert!(stats.workers > 1, "expected a parallel run");
            assert_eq!(stats.worker_ms.len(), stats.workers);
        }
        // IVF and Volcano fall back to the serial driver.
        let (_, stats) =
            run_select_parallel_opt(&c, &select, "out", mode, 4, VectorMode::Ivf).unwrap();
        assert_eq!(stats.workers, 1);
        let (_, stats) =
            run_select_parallel_opt(&c, &select, "out", ExecMode::Volcano, 4, VectorMode::Flat)
                .unwrap();
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn expression_order_by_outside_the_pattern_still_works() {
        let c = vector_catalog(10);
        // WHERE breaks the pattern; the hidden-sort-column fallback must
        // still rank by similarity under the filter.
        let select = crate::parser::parse_select(
            "SELECT id FROM docs WHERE id < 4 ORDER BY SIMILARITY(emb, 'gun fight') DESC LIMIT 2",
        )
        .unwrap();
        let (t, _) = run_select_with(&c, &select, "out", ExecMode::default()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, "id").unwrap(), &Value::Int(0)); // the gun-fight doc
        assert!(!t.schema().names().iter().any(|n| n.starts_with("__sort")));
        // Arithmetic expression keys work too.
        let select =
            crate::parser::parse_select("SELECT id FROM docs ORDER BY 0 - id ASC LIMIT 3").unwrap();
        let (t, _) = run_select_with(&c, &select, "out", ExecMode::default()).unwrap();
        assert_eq!(t.cell(0, "id").unwrap(), &Value::Int(9));
        // A SELECT-list alias mixed with an expression key resolves to the
        // aliased expression (as it would on the plain sort path alone).
        let select = crate::parser::parse_select(
            "SELECT id + 1 AS d FROM docs ORDER BY d ASC, 0 - id DESC LIMIT 3",
        )
        .unwrap();
        let (t, _) = run_select_with(&c, &select, "out", ExecMode::default()).unwrap();
        assert_eq!(t.cell(0, "d").unwrap(), &Value::Int(1));
        assert_eq!(t.schema().names(), vec!["d"]);
        // And aggregation rejects expression keys loudly.
        let select = crate::parser::parse_select(
            "SELECT COUNT(*) AS n FROM docs GROUP BY body ORDER BY SIMILARITY(body, 'x') DESC",
        )
        .unwrap();
        assert!(matches!(
            run_select_with(&c, &select, "out", ExecMode::default()),
            Err(SqlError::Unsupported(_))
        ));
    }

    #[test]
    fn create_rejects_bad_type_and_duplicate() {
        let mut c = Catalog::new();
        assert!(execute(&mut c, "CREATE TABLE t (x WIBBLE)", "o").is_err());
        execute(&mut c, "CREATE TABLE t (x INT)", "o").unwrap();
        assert!(execute(&mut c, "CREATE TABLE t (y INT)", "o").is_err());
    }
}
