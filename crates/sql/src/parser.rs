//! Recursive-descent SQL parser for the KathDB subset.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlParseError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sql parse error: {}", self.message)
    }
}

impl std::error::Error for SqlParseError {}

impl From<LexError> for SqlParseError {
    fn from(e: LexError) -> Self {
        SqlParseError {
            message: e.to_string(),
        }
    }
}

/// Parses one statement (optionally `;`-terminated).
pub fn parse_statement(sql: &str) -> Result<Statement, SqlParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.peek_kw("") {
        // unreachable; keeps clippy calm about unused helper patterns
    }
    p.eat_if(&Token::Semi);
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parses a standalone scalar expression (used by FAO `MapExpr`/`FilterExpr`
/// bodies, which persist expressions as SQL text).
pub fn parse_expr(text: &str) -> Result<SqlExpr, SqlParseError> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

/// Parses a SELECT query.
pub fn parse_select(sql: &str) -> Result<Select, SqlParseError> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(SqlParseError {
            message: format!("expected SELECT, got {other}"),
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> SqlParseError {
        let near = self
            .tokens
            .get(self.pos)
            .map(|t| format!(" near '{t}'"))
            .unwrap_or_else(|| " at end of input".to_string());
        SqlParseError {
            message: format!("{}{}", msg.into(), near),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, SqlParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlParseError> {
        if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("CREATE") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            if !self.eat_if(&Token::LParen) {
                return Err(self.err("expected '('"));
            }
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = self.ident()?;
                columns.push((col, ty));
                if self.eat_if(&Token::Comma) {
                    continue;
                }
                if self.eat_if(&Token::RParen) {
                    break;
                }
                return Err(self.err("expected ',' or ')'"));
            }
            Ok(Statement::CreateTable { name, columns })
        } else if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                if !self.eat_if(&Token::LParen) {
                    return Err(self.err("expected '('"));
                }
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if self.eat_if(&Token::Comma) {
                        continue;
                    }
                    if self.eat_if(&Token::RParen) {
                        break;
                    }
                    return Err(self.err("expected ',' or ')'"));
                }
                rows.push(row);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            Ok(Statement::Insert { table, rows })
        } else if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            Ok(Statement::DropTable { name })
        } else {
            Err(self.err("expected SELECT, CREATE, INSERT or DROP"))
        }
    }

    fn select(&mut self) -> Result<Select, SqlParseError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let e = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr(e, alias));
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.ident()?;
        let mut joins = Vec::new();
        loop {
            let left_outer = if self.peek_kw("LEFT") {
                self.pos += 1;
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                true
            } else if self.peek_kw("JOIN") || self.peek_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                false
            } else {
                break;
            };
            let table = self.ident()?;
            self.expect_kw("ON")?;
            let on_left = self.qualified_column()?;
            if !self.eat_if(&Token::Eq) {
                return Err(self.err("expected '=' in JOIN ON"));
            }
            let on_right = self.qualified_column()?;
            joins.push(JoinClause {
                table,
                left_outer,
                on_left,
                on_right,
            });
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                // Full expressions are legal sort keys (most importantly
                // `SIMILARITY(col, 'query') DESC`, the vector-search shape).
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn qualified_column(&mut self) -> Result<(Option<String>, String), SqlParseError> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            let second = self.ident()?;
            Ok((Some(first), second))
        } else {
            Ok((None, first))
        }
    }

    // Precedence climbing: OR < AND < NOT < cmp < add < mul < unary.
    fn expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Binary(SqlBinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::Binary(SqlBinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        if self.eat_kw("NOT") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(SqlBinOp::Eq),
            Some(Token::Ne) => Some(SqlBinOp::Ne),
            Some(Token::Lt) => Some(SqlBinOp::Lt),
            Some(Token::Le) => Some(SqlBinOp::Le),
            Some(Token::Gt) => Some(SqlBinOp::Gt),
            Some(Token::Ge) => Some(SqlBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull(Box::new(lhs), negated));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => SqlBinOp::Add,
                Some(Token::Minus) => SqlBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => SqlBinOp::Mul,
                Some(Token::Slash) => SqlBinOp::Div,
                Some(Token::Percent) => SqlBinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = SqlExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        if self.eat_if(&Token::Minus) {
            return Ok(SqlExpr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr, SqlParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(SqlExpr::Int(i)),
            Some(Token::Float(x)) => Ok(SqlExpr::Float(x)),
            Some(Token::Str(s)) => Ok(SqlExpr::Str(s)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                if !self.eat_if(&Token::RParen) {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(SqlExpr::Null),
                    "TRUE" => return Ok(SqlExpr::Bool(true)),
                    "FALSE" => return Ok(SqlExpr::Bool(false)),
                    _ => {}
                }
                // Aggregate or scalar function call.
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let agg = match upper.as_str() {
                        "COUNT" => Some(AggCall::Count),
                        "SUM" => Some(AggCall::Sum),
                        "AVG" => Some(AggCall::Avg),
                        "MIN" => Some(AggCall::Min),
                        "MAX" => Some(AggCall::Max),
                        _ => None,
                    };
                    if let Some(agg) = agg {
                        if self.eat_if(&Token::Star) {
                            if agg != AggCall::Count {
                                return Err(self.err("only COUNT accepts *"));
                            }
                            if !self.eat_if(&Token::RParen) {
                                return Err(self.err("expected ')'"));
                            }
                            return Ok(SqlExpr::Agg(AggCall::Count, None));
                        }
                        let arg = self.expr()?;
                        if !self.eat_if(&Token::RParen) {
                            return Err(self.err("expected ')'"));
                        }
                        return Ok(SqlExpr::Agg(agg, Some(Box::new(arg))));
                    }
                    let mut args = Vec::new();
                    if !self.eat_if(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_if(&Token::Comma) {
                                continue;
                            }
                            if self.eat_if(&Token::RParen) {
                                break;
                            }
                            return Err(self.err("expected ',' or ')'"));
                        }
                    }
                    return Ok(SqlExpr::Call(name.to_ascii_lowercase(), args));
                }
                // Possibly qualified column.
                if self.eat_if(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(SqlExpr::Column(Some(name), col))
                } else {
                    Ok(SqlExpr::Column(None, name))
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected expression"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_flagship_shape() {
        let s = parse_select(
            "SELECT title, year, final_score FROM films \
             JOIN posters ON films.id = posters.film_id \
             WHERE boring = TRUE ORDER BY final_score DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.from, "films");
        assert_eq!(s.joins.len(), 1);
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_group_by_aggregates() {
        let s =
            parse_select("SELECT year, COUNT(*) AS n, AVG(score) AS mean FROM films GROUP BY year")
                .unwrap();
        assert_eq!(s.group_by, vec!["year".to_string()]);
        assert!(matches!(
            s.items[1],
            SelectItem::Expr(SqlExpr::Agg(AggCall::Count, None), Some(_))
        ));
    }

    #[test]
    fn operator_precedence() {
        let s = parse_select("SELECT a + b * c FROM t").unwrap();
        let SelectItem::Expr(e, _) = &s.items[0] else {
            panic!()
        };
        // a + (b * c)
        assert_eq!(e.to_string(), "(a + (b * c))");
        let s = parse_select("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "((a = 1) OR ((b = 2) AND (c = 3)))"
        );
    }

    #[test]
    fn parses_create_and_insert() {
        let c = parse_statement("CREATE TABLE t (id INT, name STR)").unwrap();
        assert!(matches!(c, Statement::CreateTable { .. }));
        let i = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        match i {
            Statement::Insert { rows, .. } => assert_eq!(rows.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_drop_table_and_round_trips() {
        let d = parse_statement("drop table films").unwrap();
        assert!(matches!(&d, Statement::DropTable { name } if name == "films"));
        assert_eq!(parse_statement(&d.to_string()).unwrap(), d);
        assert!(parse_statement("DROP films").is_err());
        assert!(parse_statement("DROP TABLE").is_err());
    }

    #[test]
    fn is_null_forms() {
        let s = parse_select("SELECT 1 FROM t WHERE x IS NULL AND y IS NOT NULL").unwrap();
        assert_eq!(
            s.where_clause.unwrap().to_string(),
            "((x IS NULL) AND (y IS NOT NULL))"
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_select("select * from t where x = 1 order by x limit 1").is_ok());
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT x",
            "SELECT SUM(*) FROM t",
            "SELECT * FROM t JOIN u ON a",
            "INSERT INTO t VALUES 1",
            "SELECT * FROM t extra",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }
}
