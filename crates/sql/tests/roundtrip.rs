//! Property test: printing a parsed statement and re-parsing it yields the
//! same AST (the printer is what KathDB persists and shows users, §5).

use kath_sql::*;
use proptest::prelude::*;

fn arb_expr() -> impl Strategy<Value = SqlExpr> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|c| SqlExpr::Column(None, c)),
        ("[a-z]{1,4}", "[a-z]{1,4}").prop_map(|(t, c)| SqlExpr::Column(Some(t), c)),
        (0i64..1_000_000).prop_map(SqlExpr::Int),
        (0.0f64..1000.0).prop_map(SqlExpr::Float),
        "[a-z ']{0,8}".prop_map(SqlExpr::Str),
        Just(SqlExpr::Null),
        any::<bool>().prop_map(SqlExpr::Bool),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(SqlBinOp::Add),
                    Just(SqlBinOp::Sub),
                    Just(SqlBinOp::Mul),
                    Just(SqlBinOp::Eq),
                    Just(SqlBinOp::Lt),
                    Just(SqlBinOp::And),
                    Just(SqlBinOp::Or),
                    Just(SqlBinOp::Ge),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| SqlExpr::Binary(op, Box::new(l), Box::new(r))),
            inner.clone().prop_map(|e| SqlExpr::Not(Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| SqlExpr::IsNull(Box::new(e), n)),
            (
                "(lower|upper|abs|coalesce)",
                prop::collection::vec(inner, 1..3)
            )
                .prop_map(|(f, args)| SqlExpr::Call(f, args)),
        ]
    })
}

fn arb_select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        prop::collection::vec((arb_expr(), prop::option::of("[a-z][a-z0-9_]{0,5}")), 1..4),
        "[a-z][a-z0-9_]{0,6}",
        prop::option::of(arb_expr()),
        prop::collection::vec(("[a-z][a-z0-9_]{0,5}", any::<bool>()), 0..3),
        prop::option::of(0usize..1000),
    )
        .prop_map(
            |(distinct, items, from, where_clause, order, limit)| Select {
                distinct,
                items: items
                    .into_iter()
                    .map(|(e, a)| SelectItem::Expr(e, a))
                    .collect(),
                from,
                joins: vec![],
                where_clause,
                group_by: vec![],
                order_by: order
                    .into_iter()
                    .map(|(column, desc)| OrderKey::column(column, desc))
                    .collect(),
                limit,
            },
        )
}

proptest! {
    #[test]
    fn print_parse_fixpoint(s in arb_select()) {
        let text = s.to_string();
        let reparsed = parse_select(&text);
        // Keywords used as identifiers (e.g. a column named `not`) are the
        // only legal source of failure; anything else must round-trip.
        if let Ok(back) = reparsed {
            prop_assert_eq!(back, s, "text was: {}", text);
        }
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,80}") {
        let _ = parse_statement(&s);
    }
}
