//! Query-guard acceptance tests: deadline, cancellation, and budgets
//! abort every physical drive — Volcano, batched, morsel-parallel, and
//! compiled — with the same typed error, and leave the catalog ready for
//! the next query.

use kath_sql::{parse_select, run_select_auto_guarded, SqlError};
use kath_storage::{
    CancelToken, Catalog, CompileMode, DataType, ExecMode, QueryGuard, Schema, StorageError, Table,
    Value, VectorMode,
};
use std::time::Duration;

fn catalog(rows: usize) -> Catalog {
    let schema = Schema::of(&[("id", DataType::Int), ("v", DataType::Int)]);
    let mut t = Table::new("t", schema);
    for i in 0..rows {
        t.push(vec![Value::Int(i as i64), Value::Int((i % 97) as i64)])
            .unwrap();
    }
    let mut c = Catalog::new();
    c.register(t).unwrap();
    c
}

/// The four drives as (label, mode, threads, compile) strategy triples.
/// `CompileMode::On` forces the fused drive for the compilable query below.
const DRIVES: &[(&str, ExecMode, usize, CompileMode)] = &[
    ("volcano", ExecMode::Volcano, 1, CompileMode::Off),
    ("batched", ExecMode::Batched(128), 1, CompileMode::Off),
    ("parallel", ExecMode::Batched(128), 4, CompileMode::Off),
    ("compiled", ExecMode::Batched(128), 1, CompileMode::On),
    (
        "compiled-parallel",
        ExecMode::Batched(128),
        4,
        CompileMode::On,
    ),
];

fn run(
    c: &Catalog,
    query: &str,
    drive: &(&str, ExecMode, usize, CompileMode),
    guard: &QueryGuard,
) -> Result<Table, SqlError> {
    let select = parse_select(query).unwrap();
    run_select_auto_guarded(
        c,
        &select,
        "out",
        drive.1,
        drive.2,
        VectorMode::Auto,
        drive.3,
        guard,
    )
    .map(|(t, _)| t)
}

#[test]
fn zero_deadline_cancels_every_drive_and_the_catalog_survives() {
    let c = catalog(4000);
    let query = "SELECT id, v FROM t WHERE v >= 0";
    for drive in DRIVES {
        let guard = QueryGuard::unlimited().with_timeout(Duration::ZERO);
        let err = run(&c, query, drive, &guard).unwrap_err();
        assert!(
            matches!(&err, SqlError::Storage(StorageError::Cancelled(_))),
            "{}: expected Cancelled, got {err:?}",
            drive.0
        );
        // The same catalog immediately serves the next (unguarded) query.
        let ok = run(&c, query, drive, &QueryGuard::unlimited()).unwrap();
        assert_eq!(ok.len(), 4000, "{}: catalog damaged after cancel", drive.0);
    }
}

#[test]
fn fired_cancel_token_aborts_every_drive() {
    let c = catalog(4000);
    let query = "SELECT id FROM t";
    for drive in DRIVES {
        let token = CancelToken::new();
        token.cancel();
        let guard = QueryGuard::unlimited().with_cancel(token.clone());
        let err = run(&c, query, drive, &guard).unwrap_err();
        assert!(
            matches!(&err, SqlError::Storage(StorageError::Cancelled(_))),
            "{}: expected Cancelled, got {err:?}",
            drive.0
        );
        // Clearing the token (what the facade does after a cancelled
        // statement) re-arms the same guard spec for the next query.
        token.clear();
        let guard = QueryGuard::unlimited().with_cancel(token);
        assert_eq!(run(&c, query, drive, &guard).unwrap().len(), 4000);
    }
}

#[test]
fn row_budget_trips_with_a_typed_error_on_every_drive() {
    let c = catalog(4000);
    let query = "SELECT id, v FROM t WHERE v >= 0";
    for drive in DRIVES {
        let guard = QueryGuard::unlimited().with_row_budget(100);
        let err = run(&c, query, drive, &guard).unwrap_err();
        assert!(
            matches!(&err, SqlError::Storage(StorageError::Budget(_))),
            "{}: expected Budget, got {err:?}",
            drive.0
        );
        // A budget large enough for the whole result never trips.
        let guard = QueryGuard::unlimited().with_row_budget(4000);
        assert_eq!(run(&c, query, drive, &guard).unwrap().len(), 4000);
    }
}

#[test]
fn byte_budget_meters_produced_payload() {
    let c = catalog(1000);
    let query = "SELECT id, v FROM t";
    // Two Int columns ≈ 16 bytes/row; 1000 rows ≈ 16000 bytes.
    let tight = QueryGuard::unlimited().with_byte_budget(1000);
    let err = run(&c, query, &DRIVES[1], &tight).unwrap_err();
    assert!(matches!(&err, SqlError::Storage(StorageError::Budget(_))));
    let roomy = QueryGuard::unlimited().with_byte_budget(1_000_000);
    assert_eq!(run(&c, query, &DRIVES[1], &roomy).unwrap().len(), 1000);
}

#[test]
fn guarded_results_match_unguarded_results_on_every_drive() {
    let c = catalog(2000);
    let query = "SELECT id, v FROM t WHERE v < 50";
    let baseline = run(&c, query, &DRIVES[0], &QueryGuard::unlimited()).unwrap();
    for drive in DRIVES {
        // A generous guard must not perturb results on any drive.
        let guard = QueryGuard::unlimited()
            .with_timeout(Duration::from_secs(3600))
            .with_row_budget(1 << 40)
            .with_byte_budget(1 << 50);
        let out = run(&c, query, drive, &guard).unwrap();
        assert_eq!(out.rows(), baseline.rows(), "{}: rows diverged", drive.0);
    }
}
