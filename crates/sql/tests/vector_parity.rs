//! Property tests for the top-k vector operator.
//!
//! Three contracts, per the paper's physical-choice story (§4): the vector
//! operator must be a drop-in physical implementation of `ORDER BY
//! SIMILARITY(...) DESC LIMIT k` —
//!
//! 1. **Fallback parity**: byte-identical to the full-sort plan
//!    (`VectorMode::Off`) on arbitrary corpora, including NULL, corrupt,
//!    and text cells, at any batch size and in Volcano mode.
//! 2. **Parallel parity**: the per-morsel top-k drive is byte-identical to
//!    the serial scan at any worker count.
//! 3. **Recall**: the approximate IVF implementation keeps recall@10 ≥ 0.9
//!    against the exact Flat scan on seeded clustered corpora.

use kath_sql::{execute, parse_select, run_select_opt, run_select_parallel_opt};
use kath_storage::{encode_embedding, Catalog, ExecMode, Value, VectorMode, VectorStrategy};
use kath_vector::{embed_query, normalize, seeded_unit_vector};
use proptest::prelude::*;

/// One generated row: a cell-kind roll and a seed payload.
type RowSeed = (u8, u64);

fn corpus_catalog(rows: &[RowSeed]) -> Catalog {
    let mut c = Catalog::new();
    execute(
        &mut c,
        "CREATE TABLE docs (id INT, body STR, emb BLOB)",
        "x",
    )
    .unwrap();
    let phrases = [
        "gun fight",
        "calm tea",
        "murder",
        "quiet garden",
        "explosion",
        "wedding kiss",
    ];
    let mut table = (*c.get("docs").unwrap()).clone();
    for (i, (kind, seed)) in rows.iter().enumerate() {
        let body = Value::Str(phrases[(*seed % phrases.len() as u64) as usize].to_string());
        let emb = match kind % 7 {
            // Mostly genuine embeddings; small seed domain forces ties.
            0..=2 => Value::Blob(encode_embedding(&seeded_unit_vector(seed % 7))),
            3 => Value::Null,
            4 => Value::Blob(vec![1, 2, 3, 4, 5]), // corrupt: not a multiple of 4
            // Finite components, overflowing norm: NaN score on every path.
            5 => Value::Blob(encode_embedding(&[2.0e19; 8])),
            // Wrong dimensionality: a no-match, never a truncated-dot score.
            _ => Value::Blob(encode_embedding(&[1.0])),
        };
        table.push(vec![Value::Int(i as i64), body, emb]).unwrap();
    }
    c.register_or_replace(table);
    c
}

proptest! {
    /// SQL-level fallback parity: with and without the vector operator,
    /// the query returns the same table — ranked rows, NULL-score tail,
    /// ties, everything.
    #[test]
    fn vector_operator_matches_full_sort(
        rows in prop::collection::vec((any::<u8>(), any::<u64>()), 0..80),
        k in 0usize..20,
        qseed in 0u64..5,
        on_text in any::<bool>(),
    ) {
        let c = corpus_catalog(&rows);
        let queries = ["gun", "weapon murder", "tea", "plain day", "love"];
        let column = if on_text { "body" } else { "emb" };
        let sql = format!(
            "SELECT id, body FROM docs \
             ORDER BY SIMILARITY({column}, '{}') DESC LIMIT {k}",
            queries[qseed as usize]
        );
        let select = parse_select(&sql).unwrap();
        let (fallback, _) =
            run_select_opt(&c, &select, "out", ExecMode::Batched(16), VectorMode::Off).unwrap();
        for mode in [ExecMode::Volcano, ExecMode::Batched(3), ExecMode::Batched(1024)] {
            for vector in [VectorMode::Auto, VectorMode::Flat, VectorMode::Ivf] {
                let (fast, _) = run_select_opt(&c, &select, "out", mode, vector).unwrap();
                // IVF is approximate: it may pick different rows, but must
                // still return a validly-ranked result of the same size; the
                // exact modes must match bit for bit.
                if vector == VectorMode::Ivf {
                    prop_assert_eq!(fast.len(), fallback.len(), "{} ({:?})", &sql, mode);
                } else {
                    prop_assert_eq!(&fast, &fallback, "{} ({:?} {:?})", &sql, mode, vector);
                }
            }
        }
    }

    /// Serial vs parallel top-k: byte-identical at every worker count.
    #[test]
    fn parallel_topk_is_byte_identical(
        rows in prop::collection::vec((any::<u8>(), any::<u64>()), 0..120),
        k in 0usize..12,
        threads in 2usize..9,
    ) {
        let c = corpus_catalog(&rows);
        let sql = format!(
            "SELECT id FROM docs ORDER BY SIMILARITY(emb, 'gun murder') DESC LIMIT {k}"
        );
        let select = parse_select(&sql).unwrap();
        // Batch 8 splits even small corpora into several morsels.
        let mode = ExecMode::Batched(8);
        let (serial, _) = run_select_opt(&c, &select, "out", mode, VectorMode::Flat).unwrap();
        let (parallel, _) =
            run_select_parallel_opt(&c, &select, "out", mode, threads, VectorMode::Flat).unwrap();
        prop_assert_eq!(parallel, serial, "threads {}", threads);
    }
}

/// A clustered corpus: `n` vectors around `clusters` separated centers.
fn clustered_entries(n: usize, clusters: u64, seed: u64) -> Vec<Vec<f32>> {
    (0..n as u64)
        .map(|i| {
            let base = seeded_unit_vector(i % clusters + 1000 * seed + 17);
            let noise = seeded_unit_vector(i + 31 * seed + 99);
            let mut v: Vec<f32> = base
                .iter()
                .zip(&noise)
                .map(|(b, x)| 0.9 * b + 0.1 * x)
                .collect();
            normalize(&mut v);
            v
        })
        .collect()
}

/// Flat vs IVF recall ≥ 0.9 @ k=10 on seeded corpora — the quality side of
/// the exact-vs-approximate trade the cost model makes.
#[test]
fn ivf_recall_at_10_is_at_least_0_9() {
    for seed in 1..4u64 {
        let vectors = clustered_entries(2000, 8, seed);
        let mut c = Catalog::new();
        execute(&mut c, "CREATE TABLE vecs (id INT, emb BLOB)", "x").unwrap();
        let mut table = (*c.get("vecs").unwrap()).clone();
        for (i, v) in vectors.iter().enumerate() {
            table
                .push(vec![Value::Int(i as i64), Value::Blob(encode_embedding(v))])
                .unwrap();
        }
        c.register_or_replace(table);
        let index = c.vector_index_for("vecs", "emb").unwrap();
        let mut total_overlap = 0usize;
        let n_queries = 20u64;
        for q in 0..n_queries {
            let query = embed_and_perturb(q % 8 + 1000 * seed + 17, q + seed);
            let exact = index.search(&query, 10, VectorStrategy::Flat);
            let approx = index.search(&query, 10, VectorStrategy::Ivf);
            total_overlap += exact.iter().filter(|p| approx.contains(p)).count();
        }
        let recall = total_overlap as f64 / (10 * n_queries as usize) as f64;
        assert!(
            recall >= 0.9,
            "seed {seed}: IVF recall@10 = {recall:.3} < 0.9"
        );
    }
}

/// A query vector near a cluster center, slightly perturbed.
fn embed_and_perturb(center_seed: u64, noise_seed: u64) -> Vec<f32> {
    let base = seeded_unit_vector(center_seed);
    let noise = seeded_unit_vector(noise_seed + 555);
    let mut v: Vec<f32> = base
        .iter()
        .zip(&noise)
        .map(|(b, x)| 0.95 * b + 0.05 * x)
        .collect();
    normalize(&mut v);
    v
}

/// The canonical text embedder drives SQL end to end: EMBED in INSERT,
/// SIMILARITY over both the blob and the raw text column, identical
/// ranking from either representation.
#[test]
fn blob_and_text_columns_rank_identically() {
    let mut c = Catalog::new();
    execute(&mut c, "CREATE TABLE n (id INT, body STR, emb BLOB)", "x").unwrap();
    execute(
        &mut c,
        "INSERT INTO n VALUES \
         (1, 'gun fight', EMBED('gun fight')), \
         (2, 'calm garden', EMBED('calm garden')), \
         (3, 'murder threat', EMBED('murder threat')), \
         (4, 'tea time', EMBED('tea time'))",
        "x",
    )
    .unwrap();
    let _ = embed_query("warm the embedder");
    let by_blob = execute(
        &mut c,
        "SELECT id FROM n ORDER BY SIMILARITY(emb, 'weapon') DESC LIMIT 4",
        "out",
    )
    .unwrap();
    let by_text = execute(
        &mut c,
        "SELECT id FROM n ORDER BY SIMILARITY(body, 'weapon') DESC LIMIT 4",
        "out",
    )
    .unwrap();
    assert_eq!(by_blob, by_text);
    let top = by_blob.cell(0, "id").unwrap().as_int().unwrap();
    assert!(top == 1 || top == 3, "violent doc must win, got {top}");
}
