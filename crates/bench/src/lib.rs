//! Shared harness for the KathDB benchmark suite and the `paper_figures`
//! binary that regenerates every table and figure of the paper (see
//! DESIGN.md §4 for the experiment index).

#![warn(missing_docs)]

use kath_data::{mmqa_small, MmqaCorpus};
use kath_model::ScriptedChannel;
use kathdb::{KathDB, QueryResult};
use std::sync::Arc;

/// The paper's flagship NL query (§1, §6).
pub const FLAGSHIP_QUERY: &str = "Sort the given films in the table by how exciting \
                                  they are, but the poster should be 'boring'";

/// The simulated user replies of §6: clarification, reactive correction,
/// approval.
pub fn flagship_channel() -> Arc<ScriptedChannel> {
    ScriptedChannel::new([
        "The movie plot contains scenes that are uncommon in real life",
        "Oh I prefer a more recent movie as well when scoring",
        "OK",
    ])
}

/// Runs the flagship query over a corpus; returns the database (for lineage
/// and registry inspection), the result, and the interaction transcript.
pub fn run_flagship(corpus: &MmqaCorpus) -> (KathDB, QueryResult, Arc<ScriptedChannel>) {
    let mut db = KathDB::new(42);
    db.load_corpus(corpus).expect("corpus loads");
    let channel = flagship_channel();
    let result = db
        .query(FLAGSHIP_QUERY, channel.as_ref())
        .expect("flagship query runs");
    (db, result, channel)
}

/// Runs the flagship query over the paper's small corpus.
pub fn run_flagship_small() -> (KathDB, QueryResult, Arc<ScriptedChannel>) {
    run_flagship(&mmqa_small())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reproduces_fig6() {
        let (_db, result, _) = run_flagship_small();
        let t = result.display_table();
        assert_eq!(
            t.cell(0, "title").unwrap().as_str(),
            Some("Guilty by Suspicion")
        );
    }
}
