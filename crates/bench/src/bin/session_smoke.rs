//! `session_smoke` — concurrent-session correctness, end to end.
//!
//! N writer sessions commit framed transactions (several INSERTs each)
//! against one durable [`KathDB`] while M reader sessions take MVCC
//! snapshots, under seeded interleavings. The run asserts, continuously
//! and at the end:
//!
//! 1. **No torn reads** — every snapshot a reader takes shows, per
//!    writer, a *prefix* of that writer's committed transactions, and
//!    every visible transaction is complete (all of its rows or none).
//! 2. **Recovery equals acked commits** — after a simulated crash (drop
//!    without close, plus a hand-written `Begin..` frame with no `Commit`
//!    on the WAL tail), reopening recovers exactly the acknowledged
//!    transactions: the torn tail is discarded, nothing acked is lost.
//!
//! With `KATHDB_FAULTS=<spec>` set (e.g. `seed=7,p=0.05`) the workload
//! runs under fault injection on the I/O seam — the chaos leg. Writers
//! stop at the first typed error; the invariant weakens to: every acked
//! transaction survives recovery, every recovered transaction is
//! complete, and per writer at most one unacknowledged transaction may
//! additionally appear (its fsync raced the failure).
//!
//! CI runs this as `make session-smoke` (part of `make verify`), once
//! plain and once under `KATHDB_FAULTS`.

use kath_storage::{FaultPlan, StorageError, Value, WalRecord};
use kathdb::{KathDB, KathError, Session};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

const WRITERS: usize = 8;
const READERS: usize = 8;
const COMMITS_PER_WRITER: usize = 6;
const ROWS_PER_TXN: usize = 3;
const SEEDS: &[u64] = &[1, 2, 3];

fn smoke_dir(seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "kathdb_session_smoke_{}_{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn typed(err: &KathError) -> bool {
    matches!(
        err,
        KathError::Storage(StorageError::Io(_) | StorageError::Corrupt(_))
            | KathError::Sql(kath_sql::SqlError::Storage(
                StorageError::Io(_) | StorageError::Corrupt(_)
            ))
    )
}

/// Deterministic per-thread jitter: a seeded xorshift drives how often a
/// thread yields, so each seed exercises a different interleaving.
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn maybe_yield(&mut self) {
        if self.next().is_multiple_of(3) {
            std::thread::yield_now();
        }
    }
}

/// Per-writer view of a snapshot: seq → row count. A consistent snapshot
/// has, for every writer, seqs forming exactly 0..k with ROWS_PER_TXN
/// rows each — a committed prefix of complete transactions.
fn check_snapshot(rows: &[Vec<Value>], context: &str) {
    let mut per_writer: BTreeMap<i64, BTreeMap<i64, usize>> = BTreeMap::new();
    for row in rows {
        let (w, seq) = (row[0].as_int().unwrap(), row[1].as_int().unwrap());
        *per_writer.entry(w).or_default().entry(seq).or_insert(0) += 1;
    }
    for (w, seqs) in &per_writer {
        for (i, (seq, count)) in seqs.iter().enumerate() {
            assert_eq!(
                *seq, i as i64,
                "{context}: writer {w} shows seq {seq} without its predecessors \
                 (committed prefix violated)"
            );
            assert_eq!(
                *count, ROWS_PER_TXN,
                "{context}: writer {w} txn {seq} is torn: {count} of {ROWS_PER_TXN} rows visible"
            );
        }
    }
}

/// One writer: commit framed transactions until done or a typed fault.
/// Returns nothing; acked counts land in `acked[w]`.
fn run_writer(mut session: Session, w: usize, seed: u64, acked: &AtomicUsize) {
    let mut jitter = Jitter(seed.wrapping_mul(0x9e3779b9).wrapping_add(w as u64 + 1));
    for seq in 0..COMMITS_PER_WRITER {
        jitter.maybe_yield();
        if let Err(e) = session.begin() {
            panic!("writer {w}: begin failed: {e}");
        }
        let mut failed = false;
        for i in 0..ROWS_PER_TXN {
            jitter.maybe_yield();
            match session.sql(&format!("INSERT INTO log VALUES ({w}, {seq}, {i})")) {
                Ok(_) => {}
                Err(e) if typed(&e) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("writer {w}: untyped failure: {e}"),
            }
        }
        if failed {
            let _ = session.rollback();
            return;
        }
        match session.commit() {
            Ok(n) => {
                assert_eq!(n, ROWS_PER_TXN, "writer {w}: wrong commit size");
                acked.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) if typed(&e) => return,
            Err(e) => panic!("writer {w}: untyped commit failure: {e}"),
        }
    }
}

/// One reader: repeatedly snapshot the log and assert prefix-consistency.
fn run_reader(mut session: Session, r: usize, seed: u64, faulty: bool) {
    let mut jitter = Jitter(seed.wrapping_mul(0xdeadbeef).wrapping_add(r as u64 + 1));
    for pass in 0..12 {
        jitter.maybe_yield();
        match session.sql("SELECT w, seq, i FROM log") {
            Ok(t) => check_snapshot(t.rows(), &format!("reader {r} pass {pass}")),
            Err(e) if faulty && typed(&e) => {}
            Err(e) => panic!("reader {r}: unexpected failure: {e}"),
        }
    }
}

/// Appends a `Begin` + payload with no `Commit` to the active WAL segment
/// — the torn tail a crash mid-transaction leaves behind.
fn tear_wal_tail(dir: &std::path::Path) {
    let mut segs: Vec<_> = std::fs::read_dir(dir.join("wal"))
        .expect("wal dir exists")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segs.sort();
    let seg = segs.pop().expect("active segment");
    let (mut wal, _) = kath_storage::Wal::open(&seg).expect("segment reopens");
    wal.append(&WalRecord::Begin(u64::MAX / 2)).unwrap();
    wal.append(&WalRecord::Insert {
        table: "log".into(),
        rows: vec![vec![Value::Int(999), Value::Int(999), Value::Int(0)]],
    })
    .unwrap();
    // No Commit: recovery must discard this transaction entirely.
}

/// One seeded run. Returns (acked commits, recovered commits).
fn run_seed(seed: u64, fault_spec: Option<&str>) -> (usize, usize) {
    let dir = smoke_dir(seed);
    let acked: Vec<AtomicUsize> = (0..WRITERS).map(|_| AtomicUsize::new(0)).collect();
    {
        let mut db = KathDB::open(&dir).expect("durable dir opens");
        db.sql("CREATE TABLE log (w INT, seq INT, i INT)").unwrap();
        if let Some(spec) = fault_spec {
            let spec = format!("seed={seed},{spec}");
            db.install_faults(FaultPlan::parse(&spec).expect("fault spec parses"));
        }
        std::thread::scope(|scope| {
            for (w, slot) in acked.iter().enumerate() {
                let session = db.session();
                scope.spawn(move || run_writer(session, w, seed, slot));
            }
            for r in 0..READERS {
                let session = db.session();
                let faulty = fault_spec.is_some();
                scope.spawn(move || run_reader(session, r, seed, faulty));
            }
        });
        db.clear_faults();
        assert_eq!(db.sessions(), 0, "all session handles dropped");
        // Crash: drop without close. Nothing beyond the WAL survives.
    }
    tear_wal_tail(&dir);

    let mut db = KathDB::open(&dir).expect("recovery succeeds");
    let t = db.sql("SELECT w, seq, i FROM log").unwrap();
    check_snapshot(t.rows(), &format!("seed {seed} post-recovery"));
    // Per-writer: everything acked survived; under faults at most one
    // unacknowledged transaction may additionally appear.
    let mut recovered_txns = 0usize;
    for (w, acked_slot) in acked.iter().enumerate() {
        let acked_w = acked_slot.load(Ordering::SeqCst);
        let recovered_w = t
            .rows()
            .iter()
            .filter(|r| r[0].as_int() == Some(w as i64))
            .count()
            / ROWS_PER_TXN;
        recovered_txns += recovered_w;
        if fault_spec.is_some() {
            assert!(
                recovered_w >= acked_w && recovered_w <= acked_w + 1,
                "seed {seed}: writer {w} acked {acked_w}, recovered {recovered_w}"
            );
        } else {
            assert_eq!(
                recovered_w, acked_w,
                "seed {seed}: writer {w} acked {acked_w} but recovered {recovered_w}"
            );
        }
    }
    // The torn tail was discarded, not replayed.
    assert!(
        t.rows().iter().all(|r| r[0].as_int() != Some(999)),
        "seed {seed}: uncommitted torn-tail transaction leaked into recovery"
    );
    let total_acked: usize = acked.iter().map(|a| a.load(Ordering::SeqCst)).sum();
    let _ = std::fs::remove_dir_all(dir);
    (total_acked, recovered_txns)
}

fn main() {
    let fault_spec = std::env::var("KATHDB_FAULTS").ok();
    // The storage Io seam honours KATHDB_FAULTS on its own, which would
    // make even the post-crash recovery open faulty. This harness scopes
    // the faults to the concurrent workload window instead (that is the
    // invariant under test), so it takes ownership of the spec.
    std::env::remove_var("KATHDB_FAULTS");
    let fault_spec = fault_spec.as_deref().filter(|s| !s.is_empty());
    let leg = match fault_spec {
        Some(spec) => format!("chaos leg (KATHDB_FAULTS={spec})"),
        None => "clean leg".to_string(),
    };
    for &seed in SEEDS {
        let (acked, recovered) = run_seed(seed, fault_spec);
        eprintln!(
            "seed {seed}: {WRITERS} writers x {COMMITS_PER_WRITER} txns, {READERS} readers — \
             {acked} acked, {recovered} recovered, no torn reads"
        );
    }
    eprintln!(
        "session smoke [{leg}]: {} seeds ok — snapshot prefix-consistency and \
         crash recovery hold",
        SEEDS.len()
    );
}
