//! `chaos_smoke` — a fast, deterministic fault-injection end-to-end check.
//!
//! The CI-sized cousin of the chaos property suite
//! (`crates/storage/tests/chaos.rs`): a handful of fixed seeds, each driving
//! a durable SQL workload through a probabilistic fault schedule on the I/O
//! seam, then reopening fault-free and asserting the chaos invariant —
//! every acknowledged write survives, recovered state is a prefix of
//! committed state (at most one in-flight unacknowledged write beyond the
//! acks), and every failure along the way was a clean typed error. A guard
//! leg asserts a 0ms deadline cancels a query and leaves the session
//! usable. CI runs this as `make chaos-smoke` (part of `make verify`).

use kath_storage::{FaultPlan, StorageError};
use kathdb::{KathDB, KathError};
use std::time::Duration;

const INSERTS: usize = 16;
const CHECKPOINT_AT: usize = 8;

/// (seed, fault probability, fault spec extras) — fixed so failures are
/// reproducible with `\faults seed=<n>,p=<f>` in the REPL.
const SCHEDULES: &[(u64, &str)] = &[
    (1, "p=0.05"),
    (2, "p=0.1"),
    (3, "p=0.25"),
    (4, "p=0.1,kinds=transient"),
    (5, "p=0.2,kinds=enospc|shortwrite"),
    (6, "p=0.15,ops=write|fsync"),
];

fn smoke_dir(seed: u64) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("kathdb_chaos_smoke_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn typed(err: &KathError) -> bool {
    matches!(
        err,
        KathError::Storage(StorageError::Io(_) | StorageError::Corrupt(_))
            | KathError::Sql(kath_sql::SqlError::Storage(
                StorageError::Io(_) | StorageError::Corrupt(_)
            ))
    )
}

/// One seeded schedule: workload under faults, reopen fault-free, check
/// the prefix invariant. Returns how many inserts were acknowledged.
fn run_schedule(seed: u64, spec: &str) -> usize {
    let dir = smoke_dir(seed);
    let spec = format!("seed={seed},{spec}");
    let plan = FaultPlan::parse(&spec).expect("schedule spec parses");

    let mut acked = 0usize;
    {
        let mut db = KathDB::open(&dir).expect("durable dir opens");
        // The baseline commit is fault-free; faults start with the data.
        db.sql("CREATE TABLE kv (k INT, v STR)").unwrap();
        db.install_faults(plan);
        for i in 0..INSERTS {
            if i == CHECKPOINT_AT {
                // Mid-stream checkpoint: allowed to fail (nothing changes
                // or the handle poisons — both keep the invariant).
                let _ = db.checkpoint();
            }
            match db.sql(&format!("INSERT INTO kv VALUES ({i}, 'row-{i}')")) {
                Ok(_) => acked += 1,
                Err(e) if typed(&e) => break,
                Err(e) => panic!("schedule '{spec}': untyped failure: {e}"),
            }
        }
        db.clear_faults();
        // Drop without close: recovery starts from the WAL + snapshot.
    }

    let mut db = KathDB::open(&dir).expect("recovery after faults clear");
    let rows = db.sql("SELECT k FROM kv ORDER BY k").unwrap();
    assert!(
        rows.len() >= acked && rows.len() <= acked + 1,
        "schedule '{spec}': recovered {} rows, acknowledged {acked}",
        rows.len()
    );
    for (i, row) in rows.rows().iter().enumerate() {
        assert_eq!(
            row[0],
            kath_storage::Value::Int(i as i64),
            "schedule '{spec}': recovered state is not the committed prefix"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
    acked
}

/// The guard leg: a 0ms deadline cancels a query with a typed error and
/// the very next query on the same catalog succeeds.
fn run_guard_leg() {
    let mut db = KathDB::new(42);
    db.sql("CREATE TABLE t (x INT)").unwrap();
    db.sql("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.set_query_timeout(Some(Duration::ZERO));
    match db.sql("SELECT * FROM t") {
        Err(KathError::Sql(kath_sql::SqlError::Storage(StorageError::Cancelled(_)))) => {}
        other => panic!("0ms deadline: expected Cancelled, got {other:?}"),
    }
    db.set_query_timeout(None);
    assert_eq!(db.sql("SELECT * FROM t").unwrap().len(), 3);
}

fn main() {
    let mut total_acked = 0usize;
    for (seed, spec) in SCHEDULES {
        let acked = run_schedule(*seed, spec);
        eprintln!(
            "schedule seed={seed},{spec}: {acked}/{INSERTS} inserts acknowledged, invariant holds"
        );
        total_acked += acked;
    }
    run_guard_leg();
    eprintln!(
        "chaos smoke: {} schedules, {total_acked} total acks, guard leg ok",
        SCHEDULES.len()
    );
}
