//! `parallel_bench` — the machine-readable perf trajectory of morsel-driven
//! parallel execution.
//!
//! Runs the scan → filter → aggregate pipeline over the scale corpus at
//! every (threads × batch size) point, and writes `BENCH_parallel.json` at
//! the repo root so future PRs can diff performance instead of guessing:
//!
//! ```sh
//! cargo run --release -p kath_bench --bin parallel_bench            # full: 100k rows
//! cargo run --release -p kath_bench --bin parallel_bench -- --quick # smoke: 10k rows
//! cargo run --release -p kath_bench --bin parallel_bench -- --out custom.json
//! ```
//!
//! `--quick` is the `make bench-smoke` setting: small corpus, few reps —
//! enough to prove the parallel path runs and the JSON schema is stable,
//! fast enough for CI. Speedups are relative to the 1-thread run at the
//! same batch size. The report leads with `host_parallelism`, and on a
//! single-core host speedup figures are suppressed entirely (`null` in the
//! JSON, `speedups_meaningful: false`): threads time-slicing one core
//! cannot support a parallel-speedup claim.

use kath_data::{generate_corpus, CorpusSpec};
use kath_json::{to_string_pretty, Json, JsonMap};
use kath_sql::{parse_select, run_select_parallel, run_select_with};
use kath_storage::{host_parallelism, Catalog, ExecMode};
use std::time::Instant;

const QUERY: &str = "SELECT year, COUNT(*) AS n, AVG(id) AS avg_id FROM movie_table \
                     WHERE year >= 1990 GROUP BY year ORDER BY year";

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];
const BATCH_POINTS: [usize; 2] = [1, 1024];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let (rows, reps) = if quick { (10_000, 3) } else { (100_000, 5) };

    // State the host's parallelism up front: every speedup below is only
    // meaningful relative to it, and on a single-core host there is no
    // parallel win to claim at all.
    let hp = host_parallelism();
    eprintln!("host parallelism: {hp} core(s)");
    if hp == 1 {
        eprintln!("single-core host: speedup figures suppressed (threads time-slice one core)");
    }
    eprintln!("generating the {rows}-row scale corpus…");
    let corpus = generate_corpus(&CorpusSpec {
        movies: rows,
        ..Default::default()
    });
    let mut catalog = Catalog::new();
    catalog.register(corpus.movies).expect("corpus registers");
    let select = parse_select(QUERY).expect("bench query parses");

    let mut series = Vec::new();
    let mut baselines: Vec<(usize, f64)> = Vec::new(); // batch -> 1-thread median
    for batch in BATCH_POINTS {
        for threads in THREAD_POINTS {
            let mode = ExecMode::Batched(batch);
            let mut samples = Vec::with_capacity(reps);
            let mut check_rows = 0usize;
            for _ in 0..reps {
                let started = Instant::now();
                let table = if threads == 1 {
                    run_select_with(&catalog, &select, "out", mode)
                        .expect("serial bench query runs")
                        .0
                } else {
                    run_select_parallel(&catalog, &select, "out", mode, threads)
                        .expect("parallel bench query runs")
                        .0
                };
                samples.push(started.elapsed().as_secs_f64() * 1000.0);
                check_rows = table.len();
            }
            let median_ms = median(samples);
            if threads == 1 {
                baselines.push((batch, median_ms));
            }
            let baseline = baselines
                .iter()
                .find(|(b, _)| *b == batch)
                .map(|(_, ms)| *ms)
                .unwrap_or(median_ms);
            // A speedup is only a claim when the host can actually run
            // workers concurrently; with one core the ratio is noise.
            let speedup = if hp > 1 && median_ms > 0.0 {
                Some(baseline / median_ms)
            } else {
                None
            };
            match speedup {
                Some(s) => eprintln!(
                    "threads {threads} × batch {batch:>4}: median {median_ms:8.2} ms \
                     (speedup {s:4.2}x, {check_rows} result rows)"
                ),
                None => eprintln!(
                    "threads {threads} × batch {batch:>4}: median {median_ms:8.2} ms \
                     ({check_rows} result rows)"
                ),
            }
            let mut point = JsonMap::new();
            point.insert("threads", Json::Num(threads as f64));
            point.insert("batch", Json::Num(batch as f64));
            point.insert("median_ms", Json::Num(median_ms));
            point.insert("speedup", speedup.map(Json::Num).unwrap_or(Json::Null));
            series.push(Json::Object(point));
        }
    }

    let mut report = JsonMap::new();
    report.insert("bench", Json::Str("parallel_scan_filter_aggregate".into()));
    report.insert("query", Json::Str(QUERY.into()));
    report.insert("corpus_rows", Json::Num(rows as f64));
    report.insert("reps", Json::Num(reps as f64));
    report.insert("quick", Json::Bool(quick));
    report.insert("host_parallelism", Json::Num(hp as f64));
    report.insert("speedups_meaningful", Json::Bool(hp > 1));
    report.insert("series", Json::Array(series));
    let rendered = to_string_pretty(&Json::Object(report));
    std::fs::write(&out_path, rendered + "\n").expect("report writes");
    eprintln!("wrote {out_path}");
}
