//! `txn_bench` — what group commit buys, in numbers.
//!
//! Two questions, answered machine-readably in `BENCH_txn.json`:
//!
//! 1. **Durable write throughput** — inserts/sec at 1/4/16/64 concurrent
//!    writer sessions, group commit (concurrent commits share fsyncs:
//!    leader syncs, followers wait on the durable LSN) vs per-statement
//!    fsync (every commit pays its own sync). fsync latency dominates a
//!    small durable insert, so group commit should win whenever writers
//!    overlap — the acceptance target is a win at ≥ 4 writers.
//! 2. **Snapshot read scalability** — SELECT QPS at 1/8/64 reader
//!    sessions over one shared catalog: snapshots are O(1) Arc clones
//!    behind an RwLock, so aggregate QPS should not collapse as sessions
//!    multiply.
//!
//! ```sh
//! cargo run --release -p kath_bench --bin txn_bench            # full sweep
//! cargo run --release -p kath_bench --bin txn_bench -- --quick # CI smoke
//! cargo run --release -p kath_bench --bin txn_bench -- --out custom.json
//! ```
//!
//! Every leg asserts row-count parity (all acked inserts are readable)
//! before its timing is trusted. Timings land in the JSON for trend
//! diffs — thresholds are targets, not assertions (CI machines jitter).

use kath_json::{to_string_pretty, Json, JsonMap};
use kathdb::KathDB;
use std::time::Instant;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kathdb_txn_bench_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `writers` sessions each autocommit `per_writer` durable single-row
/// INSERTs; returns aggregate inserts/sec.
fn durable_insert_throughput(writers: usize, per_writer: usize, group: bool) -> f64 {
    let tag = format!("w{writers}_{}", if group { "group" } else { "fsync" });
    let dir = bench_dir(&tag);
    let mut db = KathDB::open(&dir).expect("durable dir opens");
    db.sql("CREATE TABLE t (w INT, i INT)").unwrap();
    db.set_group_commit(group);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let mut session = db.session();
            scope.spawn(move || {
                for i in 0..per_writer {
                    session
                        .sql(&format!("INSERT INTO t VALUES ({w}, {i})"))
                        .expect("durable insert");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = writers * per_writer;
    let n = db.sql("SELECT * FROM t").unwrap().len();
    assert_eq!(n, total, "acked inserts must all be readable");
    db.set_group_commit(true);
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    total as f64 / elapsed
}

/// `sessions` readers each run `per_session` snapshot SELECTs over a
/// shared in-memory catalog; returns aggregate queries/sec.
fn snapshot_qps(sessions: usize, per_session: usize, rows: usize) -> f64 {
    let mut db = KathDB::new(42);
    db.sql("CREATE TABLE t (x INT, grp INT)").unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(500) {
        let values: Vec<String> = chunk.iter().map(|i| format!("({i}, {})", i % 7)).collect();
        db.sql(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
    }
    let expect = db
        .sql("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp")
        .unwrap()
        .len();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            let mut session = db.session();
            scope.spawn(move || {
                for _ in 0..per_session {
                    let t = session
                        .sql("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp")
                        .expect("snapshot read");
                    assert_eq!(t.len(), expect, "snapshot diverged");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (sessions * per_session) as f64 / elapsed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_txn.json".to_string());
    let writer_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16, 64] };
    let session_counts: &[usize] = if quick { &[1, 8] } else { &[1, 8, 64] };
    let (inserts_per_writer, reads_per_session, read_rows) = if quick {
        (24, 20, 2_000)
    } else {
        (64, 50, 10_000)
    };

    let mut write_legs = Vec::new();
    eprintln!("durable inserts/sec ({inserts_per_writer} per writer):");
    for &writers in writer_counts {
        let group = durable_insert_throughput(writers, inserts_per_writer, true);
        let fsync = durable_insert_throughput(writers, inserts_per_writer, false);
        let speedup = group / fsync;
        eprintln!(
            "  {writers:>2} writer(s): group {group:>9.0}/s, per-stmt fsync {fsync:>9.0}/s \
             ({speedup:.2}x)"
        );
        let mut leg = JsonMap::new();
        leg.insert("writers", Json::Num(writers as f64));
        leg.insert("inserts_per_writer", Json::Num(inserts_per_writer as f64));
        leg.insert("group_commit_per_sec", Json::Num(group));
        leg.insert("per_statement_fsync_per_sec", Json::Num(fsync));
        leg.insert("group_speedup", Json::Num(speedup));
        write_legs.push(Json::Object(leg));
    }

    let mut read_legs = Vec::new();
    eprintln!("snapshot SELECT QPS ({read_rows}-row table, {reads_per_session} per session):");
    for &sessions in session_counts {
        let qps = snapshot_qps(sessions, reads_per_session, read_rows);
        eprintln!("  {sessions:>2} session(s): {qps:>9.0} queries/s");
        let mut leg = JsonMap::new();
        leg.insert("sessions", Json::Num(sessions as f64));
        leg.insert("reads_per_session", Json::Num(reads_per_session as f64));
        leg.insert("qps", Json::Num(qps));
        read_legs.push(Json::Object(leg));
    }

    let mut report = JsonMap::new();
    report.insert("bench", Json::Str("transactions_and_sessions".into()));
    report.insert("quick", Json::Bool(quick));
    report.insert("durable_inserts", Json::Array(write_legs));
    report.insert("snapshot_reads", Json::Array(read_legs));
    let rendered = to_string_pretty(&Json::Object(report));
    std::fs::write(&out_path, rendered + "\n").expect("report writes");
    eprintln!("wrote {out_path}");
}
