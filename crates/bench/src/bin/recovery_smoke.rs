//! `recovery_smoke` — a real process-kill crash-recovery check.
//!
//! The parent process spawns *itself* in `--crash` mode: the child opens a
//! durable directory, creates a table, inserts rows (each one write-ahead
//! logged + fsynced), checkpoints part-way, inserts more, then dies via
//! `abort()` — no destructors, no close, no checkpoint, exactly like a
//! `kill -9`. The parent then reopens the directory and asserts every
//! committed row survived. CI runs this as the recovery smoke leg
//! (`make recovery-smoke`).

use kathdb::KathDB;
use std::process::Command;

const ROWS_BEFORE_CHECKPOINT: usize = 3;
const ROWS_AFTER_CHECKPOINT: usize = 4;

fn crash_child(dir: &str) -> ! {
    let mut db = KathDB::open(dir).expect("child opens durable dir");
    db.sql("CREATE TABLE survivors (k INT, v STR)").unwrap();
    for i in 0..ROWS_BEFORE_CHECKPOINT {
        db.sql(&format!("INSERT INTO survivors VALUES ({i}, 'pre-{i}')"))
            .unwrap();
    }
    db.checkpoint().unwrap();
    for i in 0..ROWS_AFTER_CHECKPOINT {
        db.sql(&format!(
            "INSERT INTO survivors VALUES ({}, 'post-{i}')",
            ROWS_BEFORE_CHECKPOINT + i
        ))
        .unwrap();
    }
    eprintln!(
        "child: {} rows logged, aborting without shutdown",
        db.context().catalog.get("survivors").unwrap().len()
    );
    std::process::abort();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--crash") {
        crash_child(args.get(i + 1).expect("--crash <dir>"));
    }

    let dir = std::env::temp_dir().join(format!("kathdb_recovery_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exe = std::env::current_exe().expect("own path");
    let status = Command::new(&exe)
        .arg("--crash")
        .arg(&dir)
        .status()
        .expect("child spawns");
    assert!(
        !status.success(),
        "child was supposed to die by abort(), got {status}"
    );

    let mut db = KathDB::open(&dir).expect("recovery after process kill");
    let total = ROWS_BEFORE_CHECKPOINT + ROWS_AFTER_CHECKPOINT;
    let table = db
        .sql("SELECT * FROM survivors ORDER BY k")
        .expect("recovered table queries");
    assert_eq!(
        table.len(),
        total,
        "committed rows lost:\n{}",
        table.render()
    );
    for i in 0..total {
        assert_eq!(table.cell(i, "k").unwrap().as_int(), Some(i as i64));
    }
    let status = db.durability_status().expect("durable after reopen");
    println!(
        "recovery smoke OK: {total} committed rows survived a process kill \
         (snapshot epoch {}, {} wal record(s) replayed on top)",
        status.snapshot_epoch, status.wal_records
    );
    let _ = std::fs::remove_dir_all(&dir);
}
