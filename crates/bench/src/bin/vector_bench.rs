//! `vector_bench` — the machine-readable perf trajectory of SQL vector
//! similarity search.
//!
//! Runs `SELECT id FROM docs ORDER BY SIMILARITY(emb, '<query>') DESC
//! LIMIT 10` over embedded-document corpora at two scales, comparing the
//! three physical implementations of the same logical operator (§4):
//!
//! - **baseline** — the classical plan (`VectorMode::Off`): score every
//!   row through the expression kernels and fully sort,
//! - **flat** — the exact top-k vector scan (linear, no sort),
//! - **ivf** — the approximate scan (probe the nearest clusters only),
//!   with its recall@10 against the exact scan reported alongside.
//!
//! Writes `BENCH_vector.json` at the repo root so future PRs can diff
//! performance instead of guessing:
//!
//! ```sh
//! cargo run --release -p kath_bench --bin vector_bench            # full: 2k + 20k docs
//! cargo run --release -p kath_bench --bin vector_bench -- --quick # smoke: 500 + 4k docs
//! cargo run --release -p kath_bench --bin vector_bench -- --out custom.json
//! ```

use kath_json::{to_string_pretty, Json, JsonMap};
use kath_sql::{execute, parse_select, run_select_opt};
use kath_storage::{encode_embedding, Catalog, ExecMode, Value, VectorMode, VectorStrategy};
use kath_vector::{default_lexicon, embed_query, DIM};
use std::time::Instant;

const K: usize = 10;
const QUERIES: [&str; 3] = [
    "gun murder shootout",
    "calm quiet tea garden",
    "love wedding kiss",
];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// splitmix64 — deterministic phrase sampling.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic document corpus: phrases biased toward the lexicon's
/// concept clusters (so the embedding space is genuinely clustered, the
/// regime IVF is built for) plus hash-only filler words.
fn corpus_catalog(rows: usize) -> Catalog {
    let lexicon = default_lexicon();
    let concepts: Vec<&str> = lexicon.concepts().collect();
    let mut c = Catalog::new();
    execute(
        &mut c,
        "CREATE TABLE docs (id INT, body STR, emb BLOB)",
        "x",
    )
    .expect("create");
    let mut table = (*c.get("docs").unwrap()).clone();
    for i in 0..rows as u64 {
        let concept = concepts[(i % concepts.len() as u64) as usize];
        let terms = lexicon.terms_of(concept).expect("known concept");
        let mut words = Vec::with_capacity(4);
        for w in 0..3u64 {
            let t = &terms[(mix(i * 31 + w) % terms.len() as u64) as usize];
            words.push(t.clone());
        }
        words.push(format!("zorp{}", mix(i) % 997)); // unclustered filler
        let body = words.join(" ");
        let emb = encode_embedding(&embed_query(&body));
        table
            .push(vec![
                Value::Int(i as i64),
                Value::Str(body),
                Value::Blob(emb),
            ])
            .expect("row");
    }
    c.register_or_replace(table);
    c
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_vector.json".to_string());
    let (sizes, reps) = if quick {
        (vec![500usize, 4000], 5)
    } else {
        (vec![2000usize, 20_000], 15)
    };

    let mut series = Vec::new();
    for rows in &sizes {
        let rows = *rows;
        eprintln!("embedding the {rows}-document corpus…");
        let catalog = corpus_catalog(rows);
        let auto = kath_storage::preferred_vector_strategy(rows);

        // Derive the index once, timed: this is the one-off cost the first
        // similarity query pays (and re-pays lazily after bulk inserts).
        let build_started = Instant::now();
        let index = catalog.vector_index_for("docs", "emb").expect("index");
        let index_build_ms = build_started.elapsed().as_secs_f64() * 1000.0;

        // Recall@10 of the approximate path against the exact one.
        let mut overlap = 0usize;
        for q in QUERIES {
            let qv = embed_query(q);
            let exact = index.search(&qv, K, VectorStrategy::Flat);
            let approx = index.search(&qv, K, VectorStrategy::Ivf);
            overlap += exact.iter().filter(|p| approx.contains(p)).count();
        }
        let recall = overlap as f64 / (K * QUERIES.len()) as f64;

        let mut point = JsonMap::new();
        point.insert("rows", Json::Num(rows as f64));
        point.insert("index_build_ms", Json::Num(index_build_ms));
        point.insert("recall_at_10", Json::Num(recall));
        point.insert(
            "auto_strategy",
            Json::Str(format!("{auto:?}").to_lowercase()),
        );

        let mut baseline_ms = 0.0;
        for (label, mode) in [
            ("baseline_ms", VectorMode::Off),
            ("flat_ms", VectorMode::Flat),
            ("ivf_ms", VectorMode::Ivf),
        ] {
            let mut samples = Vec::with_capacity(reps * QUERIES.len());
            for q in QUERIES {
                let sql =
                    format!("SELECT id FROM docs ORDER BY SIMILARITY(emb, '{q}') DESC LIMIT {K}");
                let select = parse_select(&sql).expect("bench query parses");
                // Warm up (builds IVF lists on first approximate query).
                run_select_opt(&catalog, &select, "out", ExecMode::default(), mode)
                    .expect("bench query runs");
                for _ in 0..reps {
                    let started = Instant::now();
                    let (t, _) =
                        run_select_opt(&catalog, &select, "out", ExecMode::default(), mode)
                            .expect("bench query runs");
                    samples.push(started.elapsed().as_secs_f64() * 1000.0);
                    assert_eq!(t.len(), K.min(rows));
                }
            }
            let ms = median(samples);
            if label == "baseline_ms" {
                baseline_ms = ms;
            }
            let speedup = if ms > 0.0 { baseline_ms / ms } else { 1.0 };
            eprintln!("rows {rows:>6} {label:<12} median {ms:9.3} ms (speedup {speedup:5.2}x)");
            point.insert(label, Json::Num(ms));
            if label != "baseline_ms" {
                point.insert(
                    format!("{}_speedup", label.trim_end_matches("_ms")),
                    Json::Num(speedup),
                );
            }
        }
        eprintln!(
            "rows {rows:>6} recall@10 {recall:.3}, auto strategy {auto:?}, \
             index build {index_build_ms:.1} ms"
        );
        series.push(Json::Object(point));
    }

    let mut report = JsonMap::new();
    report.insert("bench", Json::Str("vector_topk_similarity".into()));
    report.insert(
        "query_shape",
        Json::Str(format!(
            "SELECT id FROM docs ORDER BY SIMILARITY(emb, '<q>') DESC LIMIT {K}"
        )),
    );
    report.insert("dim", Json::Num(DIM as f64));
    report.insert("k", Json::Num(K as f64));
    report.insert("reps", Json::Num(reps as f64));
    report.insert("quick", Json::Bool(quick));
    report.insert(
        "queries",
        Json::Array(QUERIES.iter().map(|q| Json::Str((*q).into())).collect()),
    );
    report.insert("series", Json::Array(series));
    let rendered = to_string_pretty(&Json::Object(report));
    std::fs::write(&out_path, rendered + "\n").expect("report writes");
    eprintln!("wrote {out_path}");
}
