//! `recovery_bench` — the machine-readable perf trajectory of durability.
//!
//! Two questions, answered in `BENCH_recovery.json` at the repo root:
//!
//! 1. **Log-append overhead per INSERT**: the same INSERT workload through
//!    an in-memory `KathDB` vs a durable one (every statement write-ahead
//!    logged + fsynced). Reported as µs/INSERT for both, plus the ratio —
//!    the price of durability on the write path.
//! 2. **Replay time vs snapshot age**: reopen cost as a function of how
//!    many WAL records accumulated since the last checkpoint. The curve is
//!    the argument for checkpointing: replay is linear in the tail length,
//!    a snapshot resets it.
//!
//! ```sh
//! cargo run --release -p kath_bench --bin recovery_bench            # full
//! cargo run --release -p kath_bench --bin recovery_bench -- --quick # smoke
//! cargo run --release -p kath_bench --bin recovery_bench -- --out custom.json
//! ```
//!
//! `--quick` is the `make bench-smoke` setting: enough to prove the
//! durable path runs end to end and keep the JSON schema stable, fast
//! enough for CI (fsync dominates, so even quick runs measure real I/O).

use kath_json::{to_string_pretty, Json, JsonMap};
use kathdb::KathDB;
use std::path::PathBuf;
use std::time::Instant;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kathdb_recovery_bench_{}", std::process::id()));
    dir.join(name)
}

fn insert_stmt(i: usize) -> String {
    format!("INSERT INTO kv VALUES ({i}, 'value-{i}')")
}

/// Median of already-collected samples, in the unit they were taken.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let (inserts, age_points): (usize, Vec<usize>) = if quick {
        (64, vec![0, 32, 128])
    } else {
        (512, vec![0, 256, 1024, 4096])
    };

    // --- 1. log-append overhead per INSERT ------------------------------
    eprintln!("measuring {inserts} INSERTs, in-memory vs write-ahead logged…");
    let mut mem_db = KathDB::new(42);
    mem_db.sql("CREATE TABLE kv (k INT, v STR)").unwrap();
    let started = Instant::now();
    for i in 0..inserts {
        mem_db.sql(&insert_stmt(i)).unwrap();
    }
    let mem_us = started.elapsed().as_secs_f64() * 1e6 / inserts as f64;

    let dir = tmp_dir("append");
    let _ = std::fs::remove_dir_all(&dir);
    let mut wal_db = KathDB::open(&dir).expect("durable dir opens");
    wal_db.sql("CREATE TABLE kv (k INT, v STR)").unwrap();
    let started = Instant::now();
    for i in 0..inserts {
        wal_db.sql(&insert_stmt(i)).unwrap();
    }
    let wal_us = started.elapsed().as_secs_f64() * 1e6 / inserts as f64;
    drop(wal_db);
    let overhead = if mem_us > 0.0 { wal_us / mem_us } else { 1.0 };
    eprintln!(
        "  in-memory {mem_us:8.1} µs/INSERT   durable {wal_us:8.1} µs/INSERT   \
         overhead {overhead:5.1}x (fsync per statement)"
    );

    // --- 2. replay time vs snapshot age ---------------------------------
    let mut series = Vec::new();
    for &age in &age_points {
        let dir = tmp_dir(&format!("replay_{age}"));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut db = KathDB::open(&dir).expect("durable dir opens");
            db.sql("CREATE TABLE kv (k INT, v STR)").unwrap();
            db.checkpoint().unwrap();
            for i in 0..age {
                db.sql(&insert_stmt(i)).unwrap();
            }
            // Crash: drop without close, leaving `age` records in the WAL.
        }
        let reps = if quick { 3 } else { 5 };
        let mut samples = Vec::with_capacity(reps);
        let mut recovered_rows = 0usize;
        for _ in 0..reps {
            let started = Instant::now();
            let db = KathDB::open(&dir).expect("recovery succeeds");
            samples.push(started.elapsed().as_secs_f64() * 1000.0);
            recovered_rows = db.context().catalog.get("kv").unwrap().len();
        }
        assert_eq!(recovered_rows, age, "recovery lost rows");
        let median_ms = median(samples);
        eprintln!("  wal age {age:>5} records: reopen median {median_ms:8.2} ms");
        let mut point = JsonMap::new();
        point.insert("wal_records", Json::Num(age as f64));
        point.insert("reopen_median_ms", Json::Num(median_ms));
        series.push(Json::Object(point));
    }

    let mut report = JsonMap::new();
    report.insert("bench", Json::Str("durability_recovery".into()));
    report.insert("quick", Json::Bool(quick));
    report.insert("inserts", Json::Num(inserts as f64));
    report.insert("memory_us_per_insert", Json::Num(mem_us));
    report.insert("durable_us_per_insert", Json::Num(wal_us));
    report.insert("append_overhead_x", Json::Num(overhead));
    report.insert("replay_series", Json::Array(series));
    let rendered = to_string_pretty(&Json::Object(report));
    std::fs::write(&out_path, rendered + "\n").expect("report writes");
    let _ = std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("kathdb_recovery_bench_{}", std::process::id())),
    );
    eprintln!("wrote {out_path}");
}
