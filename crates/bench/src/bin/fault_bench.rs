//! `fault_bench` — the machine-readable cost of robustness.
//!
//! Two questions, answered with numbers in `BENCH_faults.json`:
//!
//! 1. **Guard overhead** — what does threading a live [`QueryGuard`]
//!    (deadline + cancel + budgets) through the compiled drive cost on a
//!    large scan? Target: under 2% on the 1M-row compiled
//!    scan-filter-project (the guard checks once per fused-loop iteration
//!    and charges per produced batch, so the steady-state cost is a few
//!    atomic loads per 1024 rows).
//! 2. **Recovery under faults** — how much slower is building + recovering
//!    a durable directory when 10% of I/O operations fail transiently
//!    (every one retried by the bounded-backoff policy)?
//!
//! ```sh
//! cargo run --release -p kath_bench --bin fault_bench            # full: 1M rows
//! cargo run --release -p kath_bench --bin fault_bench -- --quick # smoke: 100k rows
//! cargo run --release -p kath_bench --bin fault_bench -- --out custom.json
//! ```
//!
//! Every guarded sample asserts result parity with the unguarded run
//! before its timing is trusted; the recovery leg asserts every
//! acknowledged row survives. Timings land in the JSON for trend diffs —
//! thresholds are targets, not assertions (CI machines jitter).

use kath_json::{to_string_pretty, Json, JsonMap};
use kath_sql::{parse_select, run_select_auto, run_select_auto_guarded};
use kath_storage::{
    BufferPool, Catalog, CompileMode, DataType, Durability, ExecMode, FaultKind, FaultPlan, Io,
    QueryGuard, Schema, Table, Value, VectorMode, WalRecord,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn bench_table(rows: usize) -> Table {
    let schema = Schema::of(&[
        ("id", DataType::Int),
        ("year", DataType::Int),
        ("score", DataType::Int),
    ]);
    let mut t = Table::new("movie_table", schema);
    for i in 0..rows {
        let id = i as i64 + 1;
        t.push(vec![
            Value::Int(id),
            Value::Int(1960 + id % 65),
            Value::Int(id % 100),
        ])
        .expect("typed row");
    }
    t
}

/// The compiled scan-filter-project, unguarded vs under a fully armed (but
/// generous) guard. Returns (unguarded_ms, guarded_ms, result_rows).
fn guard_overhead(rows: usize, reps: usize) -> (f64, f64, usize) {
    let mut catalog = Catalog::new();
    catalog.register(bench_table(rows)).expect("fresh catalog");
    let k = (rows as f64 * 0.5) as i64;
    let query = format!("SELECT id, year FROM movie_table WHERE id <= {k}");
    let select = parse_select(&query).expect("bench query parses");
    // Armed on every axis — deadline, cancel token, row and byte budgets —
    // but generous enough to never trip: this measures pure bookkeeping.
    let guard = QueryGuard::unlimited()
        .with_timeout(Duration::from_secs(3600))
        .with_row_budget(u64::MAX / 2)
        .with_byte_budget(u64::MAX / 2);
    let run = |guard: Option<&QueryGuard>| {
        let started = Instant::now();
        let (table, stats) = match guard {
            Some(g) => run_select_auto_guarded(
                &catalog,
                &select,
                "out",
                ExecMode::Batched(1024),
                1,
                VectorMode::Auto,
                CompileMode::On,
                g,
            )
            .expect("guarded run succeeds"),
            None => run_select_auto(
                &catalog,
                &select,
                "out",
                ExecMode::Batched(1024),
                1,
                VectorMode::Auto,
                CompileMode::On,
            )
            .expect("unguarded run succeeds"),
        };
        assert!(stats.compiled, "bench query must take the compiled drive");
        (table, started.elapsed().as_secs_f64() * 1000.0)
    };

    let mut plain = Vec::with_capacity(reps);
    let mut guarded = Vec::with_capacity(reps);
    let mut result_rows = 0usize;
    for _ in 0..reps {
        let (want, pms) = run(None);
        let (got, gms) = run(Some(&guard));
        assert_eq!(want, got, "guarded result diverged from unguarded");
        result_rows = want.len();
        plain.push(pms);
        guarded.push(gms);
    }
    (median(plain), median(guarded), result_rows)
}

/// Builds a durable directory of `records` WAL-logged inserts (checkpoint
/// at the midpoint), optionally under a transient-fault schedule every
/// append retries through, then times the fault-free reopen. Returns
/// (build_ms, recover_ms, recovered_rows).
fn durable_round_trip(records: usize, faults: Option<FaultPlan>) -> (f64, f64, usize) {
    let tag = if faults.is_some() { "faulty" } else { "clean" };
    let dir = std::env::temp_dir().join(format!(
        "kathdb_fault_bench_{}_{tag}_{records}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]);

    let io = Io::real();
    let pool = Arc::new(BufferPool::with_budget_io(64, io.clone()));
    let build_started = Instant::now();
    {
        let (mut d, _) = Durability::open(&dir, &pool).expect("durable dir opens");
        d.log(&WalRecord::CreateTable(Table::new("kv", schema.clone())))
            .unwrap();
        if let Some(plan) = &faults {
            io.install_faults(plan.clone());
        }
        for i in 0..records {
            if i == records / 2 {
                // The checkpoint runs fault-free (a failed rotation would
                // poison the handle by design); the cost under measurement
                // is the retried WAL appends around it.
                io.clear_faults();
                let mut table = Table::new("kv", schema.clone());
                for j in 0..i {
                    table
                        .push(vec![Value::Int(j as i64), Value::Str(format!("row-{j}"))])
                        .unwrap();
                }
                d.checkpoint(&[Arc::new(table)], &pool, None)
                    .expect("fault-free checkpoint succeeds");
                if let Some(plan) = &faults {
                    io.install_faults(plan.clone());
                }
            }
            // Appends rewrite at a fixed offset, so the client-level retry
            // (on top of the built-in bounded backoff) never duplicates a
            // record; a 10% schedule occasionally outlasts one bounded run.
            let record = WalRecord::Insert {
                table: "kv".to_string(),
                rows: vec![vec![Value::Int(i as i64), Value::Str(format!("row-{i}"))]],
            };
            let mut attempts = 0;
            while let Err(e) = d.log(&record) {
                attempts += 1;
                assert!(attempts < 100, "append never succeeded: {e}");
            }
        }
        io.clear_faults();
    }
    let build_ms = build_started.elapsed().as_secs_f64() * 1000.0;

    let pool2 = Arc::new(BufferPool::with_budget(64));
    let recover_started = Instant::now();
    let (_, rec) = Durability::open(&dir, &pool2).expect("recovery succeeds");
    let recover_ms = recover_started.elapsed().as_secs_f64() * 1000.0;
    let mut rows = 0usize;
    for t in &rec.tables {
        if t.name() == "kv" {
            rows += t.len();
        }
    }
    for r in &rec.wal_records {
        if let WalRecord::Insert { rows: new, .. } = r {
            rows += new.len();
        }
    }
    assert_eq!(rows, records, "{tag}: acknowledged rows lost in recovery");
    let _ = std::fs::remove_dir_all(dir);
    (build_ms, recover_ms, rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_faults.json".to_string());
    let (scan_rows, wal_records, reps) = if quick {
        (100_000, 200, 3)
    } else {
        (1_000_000, 1_000, 5)
    };

    eprintln!("guard overhead: {scan_rows}-row compiled scan, {reps} reps…");
    let (plain_ms, guarded_ms, result_rows) = guard_overhead(scan_rows, reps);
    let overhead_pct = if plain_ms > 0.0 {
        (guarded_ms - plain_ms) / plain_ms * 100.0
    } else {
        0.0
    };
    eprintln!(
        "  unguarded {plain_ms:8.2} ms, guarded {guarded_ms:8.2} ms \
         ({overhead_pct:+5.2}% vs <2% target, {result_rows} result rows)"
    );

    eprintln!("recovery: {wal_records} WAL records, clean vs 10% transient faults…");
    let (clean_build_ms, clean_recover_ms, _) = durable_round_trip(wal_records, None);
    let plan = FaultPlan::probabilistic(7, 0.10).with_kinds(&[FaultKind::Transient]);
    let (faulty_build_ms, faulty_recover_ms, _) = durable_round_trip(wal_records, Some(plan));
    eprintln!(
        "  clean : build {clean_build_ms:8.2} ms, recover {clean_recover_ms:8.2} ms\n  \
         faulty: build {faulty_build_ms:8.2} ms, recover {faulty_recover_ms:8.2} ms"
    );

    let mut guard_leg = JsonMap::new();
    guard_leg.insert("scan_rows", Json::Num(scan_rows as f64));
    guard_leg.insert("result_rows", Json::Num(result_rows as f64));
    guard_leg.insert("unguarded_ms", Json::Num(plain_ms));
    guard_leg.insert("guarded_ms", Json::Num(guarded_ms));
    guard_leg.insert("overhead_pct", Json::Num(overhead_pct));
    guard_leg.insert("target_pct", Json::Num(2.0));

    let mut recovery_leg = JsonMap::new();
    recovery_leg.insert("wal_records", Json::Num(wal_records as f64));
    recovery_leg.insert("fault_probability", Json::Num(0.10));
    recovery_leg.insert("clean_build_ms", Json::Num(clean_build_ms));
    recovery_leg.insert("clean_recover_ms", Json::Num(clean_recover_ms));
    recovery_leg.insert("faulty_build_ms", Json::Num(faulty_build_ms));
    recovery_leg.insert("faulty_recover_ms", Json::Num(faulty_recover_ms));

    let mut report = JsonMap::new();
    report.insert("bench", Json::Str("fault_injection_and_guard".into()));
    report.insert("reps", Json::Num(reps as f64));
    report.insert("quick", Json::Bool(quick));
    report.insert("guard_overhead", Json::Object(guard_leg));
    report.insert("recovery_under_faults", Json::Object(recovery_leg));
    let rendered = to_string_pretty(&Json::Object(report));
    std::fs::write(&out_path, rendered + "\n").expect("report writes");
    eprintln!("wrote {out_path}");
}
