//! `storage_bench` — the machine-readable perf trajectory of out-of-core
//! paged columnar storage.
//!
//! Three questions, answered in `BENCH_storage.json` at the repo root:
//!
//! 1. **Scan cost** — the scan → filter → aggregate pipeline over the scale
//!    corpus, resident vs paged behind buffer pools of several budgets
//!    (results are asserted identical; only wall-clock and pool counters
//!    differ).
//! 2. **Checkpoint incrementality** — bytes written by a first (full)
//!    checkpoint vs a second one after appending a single row: the second
//!    must rewrite only each column's tail page.
//! 3. **Compression** — per column: the encoding the codec picked, encoded
//!    bytes vs the approximate in-memory footprint.
//!
//! ```sh
//! cargo run --release -p kath_bench --bin storage_bench            # full: 100k rows
//! cargo run --release -p kath_bench --bin storage_bench -- --quick # smoke: 10k rows
//! cargo run --release -p kath_bench --bin storage_bench -- --out custom.json
//! ```

use kath_data::{generate_corpus, CorpusSpec};
use kath_json::{to_string_pretty, Json, JsonMap};
use kath_sql::{parse_select, run_select_with};
use kath_storage::{
    encode_page, page_encoding_name, BufferPool, Catalog, Durability, ExecMode, Table, Value,
};
use std::sync::Arc;
use std::time::Instant;

const QUERY: &str = "SELECT year, COUNT(*) AS n, AVG(id) AS avg_id FROM movie_table \
                     WHERE year >= 1990 GROUP BY year ORDER BY year";

/// Rows per page for the bench: small enough that even `--quick` spans
/// dozens of pages per column, so tiny pool budgets actually evict.
const BENCH_PAGE_ROWS: usize = 1024;

/// Pool budgets to sweep, in pages: starved, modest, effectively unbounded.
const POOL_POINTS: [usize; 3] = [2, 16, 1_000_000];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Approximate in-memory bytes of one value — the honest denominator for a
/// compression ratio (the encoded page is the numerator).
fn approx_value_bytes(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Bool(_) => 1,
        Value::Str(s) => 8 + s.len(),
        Value::Blob(b) => 8 + b.len(),
    }
}

/// Runs the bench query `reps` times; returns (median ms, result table).
fn time_query(catalog: &Catalog, reps: usize) -> (f64, Table) {
    let select = parse_select(QUERY).expect("bench query parses");
    let mut samples = Vec::with_capacity(reps);
    let mut result = None;
    for _ in 0..reps {
        let started = Instant::now();
        let table = run_select_with(catalog, &select, "out", ExecMode::Batched(1024))
            .expect("bench query runs")
            .0;
        samples.push(started.elapsed().as_secs_f64() * 1000.0);
        result = Some(table);
    }
    (median(samples), result.expect("at least one rep"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_storage.json".to_string());
    let (rows, reps) = if quick { (10_000, 3) } else { (100_000, 5) };

    eprintln!("generating the {rows}-row scale corpus…");
    let corpus = generate_corpus(&CorpusSpec {
        movies: rows,
        ..Default::default()
    });
    let movies = corpus.movies;

    // 1. Scan: resident baseline, then paged behind each pool budget.
    let mut catalog = Catalog::new();
    catalog.register(movies.clone()).expect("corpus registers");
    let (resident_ms, resident_result) = time_query(&catalog, reps);
    eprintln!("scan resident:              median {resident_ms:8.2} ms");
    let mut scan_series = Vec::new();
    let mut point = JsonMap::new();
    point.insert("config", Json::Str("resident".into()));
    point.insert("median_ms", Json::Num(resident_ms));
    scan_series.push(Json::Object(point));
    for budget in POOL_POINTS {
        let mut catalog = Catalog::new();
        catalog.register(movies.clone()).expect("corpus registers");
        catalog.set_pool_budget(budget);
        catalog
            .page_table("movie_table", BENCH_PAGE_ROWS)
            .expect("table pages");
        let (ms, result) = time_query(&catalog, reps);
        assert_eq!(
            result.rows(),
            resident_result.rows(),
            "paged scan diverged from resident at a {budget}-page pool"
        );
        let p = catalog.pool().status();
        eprintln!(
            "scan paged (pool {budget:>7}): median {ms:8.2} ms \
             ({} hits, {} misses, {} evictions, {} zone skips)",
            p.hits, p.misses, p.evictions, p.zone_skips
        );
        let mut point = JsonMap::new();
        point.insert("config", Json::Str(format!("paged_pool_{budget}")));
        point.insert("pool_pages", Json::Num(budget as f64));
        point.insert("median_ms", Json::Num(ms));
        point.insert("hits", Json::Num(p.hits as f64));
        point.insert("misses", Json::Num(p.misses as f64));
        point.insert("evictions", Json::Num(p.evictions as f64));
        point.insert("zone_skips", Json::Num(p.zone_skips as f64));
        scan_series.push(Json::Object(point));
    }

    // 2. Checkpoint incrementality: full snapshot, append one row, snapshot
    // again — the second writes only each column's tail page.
    let dir = std::env::temp_dir().join(format!("kathdb_storage_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pool = Arc::new(BufferPool::with_budget(1_000_000));
    let (mut durable, _) = Durability::open(&dir, &pool).expect("bench dir opens");
    let (_, paged) = durable
        .checkpoint(&[Arc::new(movies.clone())], &pool, None)
        .expect("first checkpoint");
    let first = durable.status().last_checkpoint.expect("stats recorded");
    let mut appended = (*paged[0]).clone();
    let one_more: Vec<Value> = movies.rows()[0]
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if i == 0 {
                Value::Int(rows as i64)
            } else {
                v.clone()
            }
        })
        .collect();
    appended.push(one_more).expect("append fits schema");
    durable
        .checkpoint(&[Arc::new(appended)], &pool, None)
        .expect("second checkpoint");
    let second = durable.status().last_checkpoint.expect("stats recorded");
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        second.bytes_written < first.bytes_written,
        "second checkpoint was not incremental: {second:?} vs {first:?}"
    );
    eprintln!(
        "checkpoint: first wrote {} bytes ({} pages), second wrote {} bytes \
         ({} pages, {} reused)",
        first.bytes_written,
        first.pages_written,
        second.bytes_written,
        second.pages_written,
        second.pages_reused
    );
    let mut checkpoint = JsonMap::new();
    checkpoint.insert("first_bytes", Json::Num(first.bytes_written as f64));
    checkpoint.insert("first_pages", Json::Num(first.pages_written as f64));
    checkpoint.insert("second_bytes", Json::Num(second.bytes_written as f64));
    checkpoint.insert("second_pages", Json::Num(second.pages_written as f64));
    checkpoint.insert("second_reused", Json::Num(second.pages_reused as f64));

    // 3. Compression: encode each column page by page, report the winning
    // encoding and encoded-vs-in-memory ratio.
    let mut encodings = Vec::new();
    for column in movies.schema().names() {
        let values: Vec<Value> = movies
            .column_values(column)
            .expect("listed column")
            .into_iter()
            .cloned()
            .collect();
        let mut encoded_bytes = 0usize;
        let raw_bytes: usize = values.iter().map(approx_value_bytes).sum();
        let mut names: Vec<&'static str> = Vec::new();
        for chunk in values.chunks(BENCH_PAGE_ROWS) {
            let (bytes, _) = encode_page(chunk).expect("column encodes");
            encoded_bytes += bytes.len();
            let name = page_encoding_name(&bytes).expect("own page parses");
            if !names.contains(&name) {
                names.push(name);
            }
        }
        let ratio = if raw_bytes > 0 {
            encoded_bytes as f64 / raw_bytes as f64
        } else {
            1.0
        };
        eprintln!(
            "column {column:>6}: {names:?} — {encoded_bytes} of ~{raw_bytes} bytes \
             (ratio {ratio:.3})"
        );
        let mut entry = JsonMap::new();
        entry.insert("column", Json::Str(column.to_string()));
        entry.insert(
            "encodings",
            Json::Array(names.into_iter().map(|n| Json::Str(n.into())).collect()),
        );
        entry.insert("encoded_bytes", Json::Num(encoded_bytes as f64));
        entry.insert("approx_raw_bytes", Json::Num(raw_bytes as f64));
        entry.insert("ratio", Json::Num(ratio));
        encodings.push(Json::Object(entry));
    }

    let mut report = JsonMap::new();
    report.insert("bench", Json::Str("paged_columnar_storage".into()));
    report.insert("query", Json::Str(QUERY.into()));
    report.insert("corpus_rows", Json::Num(rows as f64));
    report.insert("page_rows", Json::Num(BENCH_PAGE_ROWS as f64));
    report.insert("reps", Json::Num(reps as f64));
    report.insert("quick", Json::Bool(quick));
    report.insert("scan", Json::Array(scan_series));
    report.insert("checkpoint", Json::Object(checkpoint));
    report.insert("encodings", Json::Array(encodings));
    let rendered = to_string_pretty(&Json::Object(report));
    std::fs::write(&out_path, rendered + "\n").expect("report writes");
    eprintln!("wrote {out_path}");
}
