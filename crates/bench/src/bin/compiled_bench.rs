//! `compiled_bench` — the machine-readable perf trajectory of compiled
//! query pipelines.
//!
//! Runs the selective scan → filter → project query at every (rows ×
//! selectivity × backing) point, once through the interpreted batched
//! operators and once through the fused compiled pipeline, and writes
//! `BENCH_compiled.json` at the repo root so future PRs can diff
//! performance instead of guessing:
//!
//! ```sh
//! cargo run --release -p kath_bench --bin compiled_bench            # full: 100k + 1M rows
//! cargo run --release -p kath_bench --bin compiled_bench -- --quick # smoke: 10k + 50k rows
//! cargo run --release -p kath_bench --bin compiled_bench -- --out custom.json
//! ```
//!
//! `--quick` is the `make bench-smoke` setting: small tables, few reps —
//! enough to prove the compiled path runs and the JSON schema is stable,
//! fast enough for CI. Each sample asserts result parity (compiled rows ==
//! interpreted rows) before timing is trusted. The `paged` backing runs
//! the same queries over page-encoded columns where zone maps prune
//! non-matching page ranges for both drives; `resident` runs without
//! pruning. Both drives run serially so the ratio isolates compilation —
//! the `speedup` field is interpreted-median over compiled-median.

use kath_json::{to_string_pretty, Json, JsonMap};
use kath_sql::{parse_select, run_select_auto};
use kath_storage::{
    host_parallelism, Catalog, CompileMode, DataType, ExecMode, Schema, Table, Value, VectorMode,
    DEFAULT_PAGE_ROWS,
};
use std::time::Instant;

const SELECTIVITIES: [f64; 3] = [0.01, 0.5, 0.99];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// The movie-shaped bench table, synthesized directly (the full corpus
/// generator also builds 2 media objects per row — dead weight at 1M rows).
fn bench_table(rows: usize) -> Table {
    let schema = Schema::of(&[
        ("id", DataType::Int),
        ("title", DataType::Str),
        ("year", DataType::Int),
        ("did", DataType::Int),
        ("vid", DataType::Int),
    ]);
    let mut t = Table::new("movie_table", schema);
    for i in 0..rows {
        let id = i as i64 + 1;
        t.push(vec![
            Value::Int(id),
            Value::Str(format!("Movie {id}")),
            Value::Int(1960 + id % 65),
            Value::Int(id),
            Value::Int(id),
        ])
        .expect("typed row");
    }
    t
}

fn run_once(
    catalog: &Catalog,
    select: &kath_sql::Select,
    compile: CompileMode,
) -> (Table, bool, f64) {
    let started = Instant::now();
    let (table, stats) = run_select_auto(
        catalog,
        select,
        "out",
        ExecMode::Batched(1024),
        1,
        VectorMode::Off,
        compile,
    )
    .expect("bench query runs");
    let ms = started.elapsed().as_secs_f64() * 1000.0;
    (table, stats.compiled, ms)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_compiled.json".to_string());
    let (row_points, reps): (&[usize], usize) = if quick {
        (&[10_000, 50_000], 3)
    } else {
        (&[100_000, 1_000_000], 5)
    };

    let hp = host_parallelism();
    eprintln!("host parallelism: {hp} core(s)");

    let mut series = Vec::new();
    for &rows in row_points {
        eprintln!("synthesizing the {rows}-row table…");
        let table = bench_table(rows);
        let mut resident = Catalog::new();
        resident.register(table.clone()).expect("fresh catalog");
        let mut paged_catalog = Catalog::new();
        let pool = std::sync::Arc::clone(paged_catalog.pool());
        paged_catalog
            .register(
                table
                    .to_paged(&pool, DEFAULT_PAGE_ROWS)
                    .expect("pages encode"),
            )
            .expect("fresh catalog");

        for sel in SELECTIVITIES {
            let k = ((rows as f64) * sel).round() as i64;
            let query =
                format!("SELECT id, year, id + year AS score FROM movie_table WHERE id <= {k}");
            let select = parse_select(&query).expect("bench query parses");
            for (backing, catalog, pruning) in [
                ("resident", &resident, false),
                ("paged", &paged_catalog, true),
            ] {
                let mut interp_samples = Vec::with_capacity(reps);
                let mut compiled_samples = Vec::with_capacity(reps);
                let mut result_rows = 0usize;
                for _ in 0..reps {
                    let (want, was_compiled_off, ims) =
                        run_once(catalog, &select, CompileMode::Off);
                    let (got, was_compiled_on, cms) = run_once(catalog, &select, CompileMode::On);
                    // Parity gates every sample: a fast wrong answer is not
                    // a benchmark result.
                    assert!(!was_compiled_off, "Off must stay interpreted");
                    assert!(was_compiled_on, "On must engage the compiled drive");
                    assert_eq!(
                        want, got,
                        "compiled != interpreted at {rows} rows, sel {sel}"
                    );
                    result_rows = want.len();
                    interp_samples.push(ims);
                    compiled_samples.push(cms);
                }
                let interp_ms = median(interp_samples);
                let compiled_ms = median(compiled_samples);
                let speedup = if compiled_ms > 0.0 {
                    interp_ms / compiled_ms
                } else {
                    0.0
                };
                eprintln!(
                    "rows {rows:>7} × sel {sel:4.2} × {backing:<8}: interpreted {interp_ms:8.2} ms, \
                     compiled {compiled_ms:8.2} ms ({speedup:4.2}x, {result_rows} result rows)"
                );
                let mut point = JsonMap::new();
                point.insert("rows", Json::Num(rows as f64));
                point.insert("selectivity", Json::Num(sel));
                point.insert("backing", Json::Str(backing.into()));
                point.insert("pruning", Json::Bool(pruning));
                point.insert("interpreted_ms", Json::Num(interp_ms));
                point.insert("compiled_ms", Json::Num(compiled_ms));
                point.insert("speedup", Json::Num(speedup));
                point.insert("result_rows", Json::Num(result_rows as f64));
                series.push(Json::Object(point));
            }
        }
    }

    let mut report = JsonMap::new();
    report.insert("bench", Json::Str("compiled_scan_filter_project".into()));
    report.insert(
        "query",
        Json::Str("SELECT id, year, id + year AS score FROM movie_table WHERE id <= <k>".into()),
    );
    report.insert("reps", Json::Num(reps as f64));
    report.insert("quick", Json::Bool(quick));
    report.insert("host_parallelism", Json::Num(hp as f64));
    report.insert("series", Json::Array(series));
    let rendered = to_string_pretty(&Json::Object(report));
    std::fs::write(&out_path, rendered + "\n").expect("report writes");
    eprintln!("wrote {out_path}");
}
