//! Criterion benches for the research questions the paper raises (the
//! quantitative half of DESIGN.md §4). Each group prints the series a
//! figure/table would plot; absolute numbers are machine-local, the *shape*
//! (who wins, by what factor) is the claim under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kath_data::{generate_corpus, CorpusSpec};
use kath_exec::{execute_body, visual_interest, ExecContext};
use kath_fao::{FunctionBody, VisionImpl};
use kath_lineage::{LineagePolicy, LineageStore};
use kath_model::{ScriptedChannel, SimLlm, TokenMeter};
use kath_optimizer::{predicate_pushdown, rewrite_plan};
use kath_parser::{extract_intent, generate_logical_plan, generate_sketch};
use kath_storage::{
    col_cmp, collect, collect_batched, BinOp, DataType, Expr, Filter, Operator, Project, Schema,
    Table, TableScan, DEFAULT_BATCH_SIZE,
};
use kath_vector::{seeded_unit_vector, FlatIndex, IvfIndex};
use kathdb::KathDB;
use std::sync::Arc;

fn ctx_with_films(n: usize, policy: LineagePolicy) -> ExecContext {
    let mut ctx = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
    ctx.lineage = LineageStore::with_policy(policy);
    let mut films = Table::new(
        "films",
        Schema::of(&[("id", DataType::Int), ("year", DataType::Int)]),
    );
    for i in 0..n as i64 {
        films.push(vec![i.into(), (1960 + i % 60).into()]).unwrap();
    }
    ctx.ingest_table(films, "bench://films").unwrap();
    ctx
}

/// RQ (§3): how much does lineage tracking cost? Off vs table-level vs
/// sampled vs full row-level, on a MapExpr over n rows.
fn bench_lineage_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("lineage_overhead");
    g.sample_size(10);
    let body = FunctionBody::MapExpr {
        input: "films".into(),
        expr: "clamp01((year - 1960) / 60.0)".into(),
        output_column: "score".into(),
    };
    for (name, policy) in [
        ("off", LineagePolicy::Off),
        ("table_only", LineagePolicy::TableOnly),
        ("sampled_10", LineagePolicy::Sampled(10)),
        ("full_row", LineagePolicy::Full),
    ] {
        g.bench_function(BenchmarkId::new("policy", name), |b| {
            b.iter_batched(
                || ctx_with_films(2000, policy),
                |mut ctx| execute_body(&mut ctx, "score", 1, &body, "scored").unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// RQ (§4): FAO granularity — one fused map vs a chain of three maps
/// (speed vs explanation depth; the fused plan records 1/3 the lineage).
fn bench_fao_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fao_granularity");
    g.sample_size(10);
    g.bench_function("three_small_functions", |b| {
        b.iter_batched(
            || ctx_with_films(1000, LineagePolicy::Full),
            |mut ctx| {
                for (i, (expr, col)) in [
                    ("clamp01((year - 1960) / 60.0)", "a"),
                    ("a * 0.7", "b"),
                    ("b + 0.3", "c"),
                ]
                .iter()
                .enumerate()
                {
                    let body = FunctionBody::MapExpr {
                        input: if i == 0 {
                            "films".into()
                        } else {
                            format!("t{}", i - 1)
                        },
                        expr: expr.to_string(),
                        output_column: col.to_string(),
                    };
                    execute_body(&mut ctx, "f", 1, &body, &format!("t{i}")).unwrap();
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("one_fused_function", |b| {
        b.iter_batched(
            || ctx_with_films(1000, LineagePolicy::Full),
            |mut ctx| {
                let body = FunctionBody::MapExpr {
                    input: "films".into(),
                    expr: "clamp01((year - 1960) / 60.0) * 0.7 + 0.3".into(),
                    output_column: "c".into(),
                };
                execute_body(&mut ctx, "f", 1, &body, "t").unwrap();
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// RQ (§4): cost/accuracy of physical vision implementations. Reports token
/// cost per implementation; accuracy shape is asserted in tests.
fn bench_cascade(c: &mut Criterion) {
    let mut g = c.benchmark_group("vision_implementations");
    g.sample_size(10);
    let corpus = generate_corpus(&CorpusSpec {
        movies: 60,
        ..Default::default()
    });
    for implementation in [
        VisionImpl::VlmAccurate,
        VisionImpl::VlmCheap,
        VisionImpl::Cascade,
        VisionImpl::Ocr,
    ] {
        g.bench_function(
            BenchmarkId::new("impl", format!("{:?}", implementation)),
            |b| {
                let llm = SimLlm::new(42, TokenMeter::new());
                b.iter(|| {
                    let mut acc = 0.0;
                    for img in &corpus.images {
                        if img.format.is_supported() {
                            acc += visual_interest(img, implementation, &llm).unwrap();
                        }
                    }
                    acc
                })
            },
        );
    }
    // Print the token-cost series once (the table the paper would show).
    let corpus_small: Vec<_> = corpus
        .images
        .iter()
        .filter(|i| i.format.is_supported())
        .collect();
    println!(
        "\nvision implementation token costs over {} posters:",
        corpus_small.len()
    );
    for implementation in [
        VisionImpl::VlmAccurate,
        VisionImpl::VlmCheap,
        VisionImpl::Cascade,
        VisionImpl::Ocr,
    ] {
        let meter = TokenMeter::new();
        let llm = SimLlm::new(42, meter.clone());
        for img in &corpus_small {
            let _ = visual_interest(img, implementation, &llm);
        }
        println!("  {:?}: {} tokens", implementation, meter.usage().total());
    }
    g.finish();
}

/// RQ (execution spine): batch-at-a-time columnar execution vs
/// tuple-at-a-time Volcano on a `TableScan → Filter → Project` pipeline
/// over the 100k-row scale corpus, sweeping batch size. The claim under
/// test: at batch size 1024 the batched drive beats the row drive (per-row
/// virtual dispatch and per-row name resolution amortize over batches),
/// while batch size 1 pays the batch overhead per row and loses.
fn bench_batch_vs_volcano(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_vs_volcano");
    g.sample_size(10);
    let corpus = generate_corpus(&CorpusSpec {
        movies: 100_000,
        ..Default::default()
    });
    let table = Arc::new(corpus.movies);
    let pipeline = |batch: usize| -> Box<dyn Operator> {
        let scan = Box::new(TableScan::new(Arc::clone(&table)).with_batch_size(batch));
        let filt = Box::new(Filter::new(scan, col_cmp("year", BinOp::Ge, 1990i64)));
        Box::new(
            Project::new(
                filt,
                vec![
                    ("title".into(), Expr::col("title")),
                    (
                        "age".into(),
                        Expr::lit(2026i64).bin(BinOp::Sub, Expr::col("year")),
                    ),
                ],
            )
            .expect("projection over scan schema"),
        )
    };
    g.bench_function("volcano_row_at_a_time", |b| {
        b.iter(|| collect("out", pipeline(DEFAULT_BATCH_SIZE)).unwrap())
    });
    for batch in [1usize, 64, 1024] {
        g.bench_function(BenchmarkId::new("batched", batch), |b| {
            b.iter(|| collect_batched("out", pipeline(batch)).unwrap())
        });
    }
    g.finish();
}

/// RQ (execution spine): morsel-driven parallelism vs the single-threaded
/// batched path on the scan → filter → aggregate pipeline over the
/// 100k-row scale corpus, sweeping worker count at batch size 1024. The
/// claim under test: with cores available, K workers approach a K× win
/// once per-worker startup amortizes over the morsel stream (results are
/// byte-identical to serial at every point — the parity suites prove it).
fn bench_parallel_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_pipeline");
    g.sample_size(10);
    let corpus = generate_corpus(&CorpusSpec {
        movies: 100_000,
        ..Default::default()
    });
    let mut catalog = kath_storage::Catalog::new();
    catalog.register(corpus.movies).expect("corpus registers");
    let select = kath_sql::parse_select(
        "SELECT year, COUNT(*) AS n, AVG(id) AS avg_id FROM movie_table \
         WHERE year >= 1990 GROUP BY year ORDER BY year",
    )
    .expect("bench query parses");
    let mode = kath_storage::ExecMode::Batched(DEFAULT_BATCH_SIZE);
    g.bench_function("serial_batched", |b| {
        b.iter(|| kath_sql::run_select_with(&catalog, &select, "out", mode).unwrap())
    });
    for threads in [2usize, 4, 8] {
        g.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                kath_sql::run_select_parallel(&catalog, &select, "out", mode, threads).unwrap()
            })
        });
    }
    g.finish();
}

/// RQ (§4): do logical rewrites pay? Pushdown + dead-node elimination vs
/// none, measured as plan-node work on the flagship logical plan.
fn bench_rewrites(c: &mut Criterion) {
    let mut g = c.benchmark_group("logical_rewrites");
    g.sample_size(20);
    let llm = SimLlm::new(42, TokenMeter::new());
    let mut intent = extract_intent(
        "Sort the given films in the table by how exciting they are, \
         but the poster should be 'boring'",
        &llm,
    );
    intent.concepts[0].clarification = Some("uncommon scenes".into());
    intent.extra_factors.push(kath_parser::ExtraFactor::Recency);
    let sketch = generate_sketch(&intent, &llm, 2);
    let plan = generate_logical_plan(&sketch, "movie_table");
    g.bench_function("pushdown", |b| b.iter(|| predicate_pushdown(plan.clone())));
    g.bench_function("full_rewrite", |b| {
        b.iter(|| rewrite_plan(plan.clone(), true, true))
    });
    g.finish();
}

/// Substrate: flat vs IVF vector search at growing corpus sizes.
fn bench_vector_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_index");
    g.sample_size(20);
    for n in [1_000usize, 10_000] {
        let entries: Vec<(u64, Vec<f32>)> =
            (0..n as u64).map(|i| (i, seeded_unit_vector(i))).collect();
        let mut flat = FlatIndex::new();
        for (id, v) in &entries {
            flat.insert(*id, v.clone());
        }
        let ivf = IvfIndex::build(entries, 32, 4, 7);
        let query = seeded_unit_vector(99);
        g.bench_function(BenchmarkId::new("flat", n), |b| {
            b.iter(|| flat.search(&query, 10))
        });
        g.bench_function(BenchmarkId::new("ivf", n), |b| {
            b.iter(|| ivf.search(&query, 10))
        });
    }
    g.finish();
}

/// RQ (§3): view population expense per modality.
fn bench_view_population(c: &mut Criterion) {
    let mut g = c.benchmark_group("view_population");
    g.sample_size(10);
    let corpus = generate_corpus(&CorpusSpec {
        movies: 50,
        ..Default::default()
    });
    for modality in ["text", "scene"] {
        g.bench_function(BenchmarkId::new("modality", modality), |b| {
            b.iter_batched(
                || {
                    let mut ctx = ExecContext::new(SimLlm::new(42, TokenMeter::new()));
                    for d in &corpus.documents {
                        ctx.media.add_document(d.clone());
                    }
                    for i in &corpus.images {
                        ctx.media.add_image(i.clone());
                    }
                    ctx
                },
                |mut ctx| {
                    execute_body(
                        &mut ctx,
                        "populate",
                        1,
                        &FunctionBody::ViewPopulate {
                            modality: modality.into(),
                            implementation: VisionImpl::VlmAccurate,
                            convert_unsupported: false,
                        },
                        "views",
                    )
                    .unwrap()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// RQ (§5): repair throughput — end-to-end flagship query with 0% vs 10%
/// HEIC posters (the failing rows trigger the monitor's repair loop).
fn bench_repair_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("repair_throughput");
    g.sample_size(10);
    for (name, heic) in [("no_faults", 0.0), ("heic_10pct", 0.10)] {
        let corpus = generate_corpus(&CorpusSpec {
            movies: 25,
            heic_fraction: heic,
            ..Default::default()
        });
        g.bench_function(BenchmarkId::new("faults", name), |b| {
            b.iter_batched(
                || {
                    let mut db = KathDB::new(42);
                    db.load_corpus(&corpus).unwrap();
                    db
                },
                |mut db| {
                    let channel = ScriptedChannel::new(["uncommon scenes", "OK"]);
                    db.query(kath_bench::FLAGSHIP_QUERY, channel.as_ref())
                        .unwrap()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// RQ (§5): explanation latency vs lineage volume (full vs sampled lineage).
fn bench_explain(c: &mut Criterion) {
    let mut g = c.benchmark_group("explain_latency");
    g.sample_size(10);
    for n in [20usize, 100] {
        let corpus = generate_corpus(&CorpusSpec {
            movies: n,
            ..Default::default()
        });
        let (db, result, _) = kath_bench::run_flagship(&corpus);
        let lid = result.top_lid().unwrap();
        g.bench_function(BenchmarkId::new("explain_tuple", n), |b| {
            b.iter(|| db.explain(&format!("explain tuple {lid}")).unwrap())
        });
        g.bench_function(BenchmarkId::new("explain_pipeline", n), |b| {
            b.iter(|| db.explain("explain the pipeline").unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lineage_overhead,
    bench_fao_granularity,
    bench_cascade,
    bench_batch_vs_volcano,
    bench_parallel_pipeline,
    bench_rewrites,
    bench_vector_index,
    bench_view_population,
    bench_repair_throughput,
    bench_explain,
);
criterion_main!(benches);
