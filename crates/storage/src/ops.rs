//! Volcano-style relational operators.
//!
//! KathDB's FAO bodies compile down to pipelines of these operators; the
//! classical iterator model gives the system the "clear query semantics and
//! high efficiency" of a traditional DBMS (§1) underneath the model-driven
//! layer.

use crate::{BinOp, Expr, Row, Schema, StorageError, Table, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// A pull-based relational operator.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Produces the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>, StorageError>;
}

/// Drains an operator into a materialized [`Table`].
pub fn collect(name: &str, mut op: Box<dyn Operator>) -> Result<Table, StorageError> {
    let mut out = Table::new(name, op.schema().clone());
    while let Some(row) = op.next()? {
        out.push(row)?;
    }
    Ok(out)
}

/// Full scan over a shared table.
pub struct TableScan {
    table: Arc<Table>,
    cursor: usize,
}

impl TableScan {
    /// Scans `table` from the first row.
    pub fn new(table: Arc<Table>) -> Self {
        Self { table, cursor: 0 }
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        let row = self.table.row(self.cursor).cloned();
        if row.is_some() {
            self.cursor += 1;
        }
        Ok(row)
    }
}

/// Filters rows by a predicate expression (NULL predicate drops the row,
/// SQL `WHERE` semantics).
pub struct Filter {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl Filter {
    /// Wraps `input`, keeping rows where `predicate` is truthy.
    pub fn new(input: Box<dyn Operator>, predicate: Expr) -> Self {
        Self { input, predicate }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        while let Some(row) = self.input.next()? {
            let keep = self.predicate.eval(&row, self.input.schema())?;
            if keep.is_truthy() {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Projects (and computes) output columns from expressions.
pub struct Project {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl Project {
    /// Builds a projection of `(output name, expression)` pairs. Output
    /// types are inferred as `Any` unless the expression is a plain column
    /// reference, in which case the input type is preserved.
    pub fn new(
        input: Box<dyn Operator>,
        outputs: Vec<(String, Expr)>,
    ) -> Result<Self, StorageError> {
        use crate::{Column, DataType};
        let mut cols = Vec::with_capacity(outputs.len());
        for (name, expr) in &outputs {
            let dtype = match expr {
                Expr::Col(c) => {
                    let idx = input.schema().resolve(c)?;
                    input.schema().column(idx).dtype
                }
                Expr::Lit(v) if !v.is_null() => v.data_type(),
                _ => DataType::Any,
            };
            cols.push(Column::new(name.clone(), dtype));
        }
        let schema = Schema::new(cols)?;
        Ok(Self {
            input,
            exprs: outputs.into_iter().map(|(_, e)| e).collect(),
            schema,
        })
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let out: Row = self
                    .exprs
                    .iter()
                    .map(|e| e.eval(&row, self.input.schema()))
                    .collect::<Result<_, _>>()?;
                Ok(Some(out))
            }
        }
    }
}

/// Join kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    Left,
}

/// Hash join on column equality. Builds on the right input, probes the left.
pub struct HashJoin {
    left: Box<dyn Operator>,
    schema: Schema,
    left_key: usize,
    built: HashMap<Value, Vec<Row>>,
    right_arity: usize,
    kind: JoinKind,
    pending: Vec<Row>,
}

impl HashJoin {
    /// Joins `left.left_col == right.right_col`. The right side is fully
    /// materialized into the hash table up front.
    pub fn new(
        left: Box<dyn Operator>,
        mut right: Box<dyn Operator>,
        left_col: &str,
        right_col: &str,
        kind: JoinKind,
    ) -> Result<Self, StorageError> {
        let left_key = left.schema().resolve(left_col)?;
        let right_key = right.schema().resolve(right_col)?;
        let schema = left.schema().join(right.schema(), "right");
        let right_arity = right.schema().arity();
        let mut built: HashMap<Value, Vec<Row>> = HashMap::new();
        while let Some(row) = right.next()? {
            let key = row[right_key].clone();
            if key.is_null() {
                continue; // NULL keys never match in SQL equi-joins.
            }
            built.entry(key).or_default().push(row);
        }
        Ok(Self {
            left,
            schema,
            left_key,
            built,
            right_arity,
            kind,
            pending: Vec::new(),
        })
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(lrow) = self.left.next()? else {
                return Ok(None);
            };
            let key = &lrow[self.left_key];
            let matches = if key.is_null() {
                None
            } else {
                self.built.get(key)
            };
            match matches {
                Some(rrows) => {
                    for rrow in rrows.iter().rev() {
                        let mut out = lrow.clone();
                        out.extend(rrow.iter().cloned());
                        self.pending.push(out);
                    }
                }
                None if self.kind == JoinKind::Left => {
                    let mut out = lrow.clone();
                    out.extend(std::iter::repeat_n(Value::Null, self.right_arity));
                    self.pending.push(out);
                }
                None => continue,
            }
        }
    }
}

/// Nested-loop join with an arbitrary predicate over the concatenated row.
pub struct NestedLoopJoin {
    left: Box<dyn Operator>,
    right_rows: Vec<Row>,
    predicate: Expr,
    schema: Schema,
    current_left: Option<Row>,
    right_cursor: usize,
}

impl NestedLoopJoin {
    /// Joins on any predicate; the right side is materialized.
    pub fn new(
        left: Box<dyn Operator>,
        mut right: Box<dyn Operator>,
        predicate: Expr,
    ) -> Result<Self, StorageError> {
        let schema = left.schema().join(right.schema(), "right");
        let mut right_rows = Vec::new();
        while let Some(row) = right.next()? {
            right_rows.push(row);
        }
        Ok(Self {
            left,
            right_rows,
            predicate,
            schema,
            current_left: None,
            right_cursor: 0,
        })
    }
}

impl Operator for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next()?;
                self.right_cursor = 0;
                if self.current_left.is_none() {
                    return Ok(None);
                }
            }
            let lrow = self.current_left.as_ref().expect("set above").clone();
            while self.right_cursor < self.right_rows.len() {
                let rrow = &self.right_rows[self.right_cursor];
                self.right_cursor += 1;
                let mut joined = lrow.clone();
                joined.extend(rrow.iter().cloned());
                if self.predicate.eval(&joined, &self.schema)?.is_truthy() {
                    return Ok(Some(joined));
                }
            }
            self.current_left = None;
        }
    }
}

/// Aggregate functions supported by [`HashAggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` (counts rows; NULLs included).
    CountStar,
    /// `COUNT(col)` (non-NULL values).
    Count,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

/// One aggregate output: function + input column + output name.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (ignored for `CountStar`).
    pub column: Option<String>,
    /// Output column name.
    pub output: String,
}

/// Hash aggregation with optional GROUP BY keys.
pub struct HashAggregate {
    schema: Schema,
    results: std::vec::IntoIter<Row>,
}

#[derive(Clone)]
struct AggState {
    count: i64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(f) = v.as_f64() {
            self.sum += f;
        }
        let better_min = self
            .min
            .as_ref()
            .is_none_or(|m| v.total_cmp(m) == Ordering::Less);
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .is_none_or(|m| v.total_cmp(m) == Ordering::Greater);
        if better_max {
            self.max = Some(v.clone());
        }
    }

    fn finish(&self, func: AggFunc, rows_in_group: i64) -> Value {
        match func {
            AggFunc::CountStar => Value::Int(rows_in_group),
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

impl HashAggregate {
    /// Aggregates `input` grouped by `group_by` columns. Output schema is
    /// group keys followed by aggregate outputs. With no group keys, emits a
    /// single global row (even for empty input, as SQL does).
    pub fn new(
        mut input: Box<dyn Operator>,
        group_by: Vec<String>,
        aggregates: Vec<Aggregate>,
    ) -> Result<Self, StorageError> {
        use crate::{Column, DataType};
        let in_schema = input.schema().clone();
        let key_idx: Vec<usize> = group_by
            .iter()
            .map(|g| in_schema.resolve(g))
            .collect::<Result<_, _>>()?;
        let agg_idx: Vec<Option<usize>> = aggregates
            .iter()
            .map(|a| match (&a.column, a.func) {
                (_, AggFunc::CountStar) => Ok(None),
                (Some(c), _) => in_schema.resolve(c).map(Some),
                (None, _) => Err(StorageError::Eval(format!(
                    "aggregate {} requires a column",
                    a.output
                ))),
            })
            .collect::<Result<_, _>>()?;

        let mut cols: Vec<Column> = key_idx
            .iter()
            .map(|&i| in_schema.column(i).clone())
            .collect();
        for a in &aggregates {
            let dtype = match a.func {
                AggFunc::CountStar | AggFunc::Count => DataType::Int,
                AggFunc::Sum | AggFunc::Avg => DataType::Float,
                AggFunc::Min | AggFunc::Max => DataType::Any,
            };
            cols.push(Column::new(a.output.clone(), dtype));
        }
        let schema = Schema::new(cols)?;

        // Group states, keyed by the group-key tuple. Insertion order of
        // groups is preserved for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, (i64, Vec<AggState>)> = HashMap::new();
        while let Some(row) = input.next()? {
            let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (0, vec![AggState::new(); aggregates.len()])
            });
            entry.0 += 1;
            for (state, idx) in entry.1.iter_mut().zip(&agg_idx) {
                if let Some(i) = idx {
                    state.update(&row[*i]);
                }
            }
        }
        if group_by.is_empty() && groups.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), (0, vec![AggState::new(); aggregates.len()]));
        }

        let mut results = Vec::with_capacity(order.len());
        for key in order {
            let (n, states) = &groups[&key];
            let mut row = key.clone();
            for (state, agg) in states.iter().zip(&aggregates) {
                row.push(state.finish(agg.func, *n));
            }
            results.push(row);
        }
        Ok(Self {
            schema,
            results: results.into_iter(),
        })
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        Ok(self.results.next())
    }
}

/// Sort direction for one key.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Column to sort on.
    pub column: String,
    /// Descending if true.
    pub desc: bool,
}

/// Full sort (materializing).
pub struct Sort {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl Sort {
    /// Sorts `input` by `keys` using the total value order (stable).
    pub fn new(mut input: Box<dyn Operator>, keys: Vec<SortKey>) -> Result<Self, StorageError> {
        let schema = input.schema().clone();
        let key_idx: Vec<(usize, bool)> = keys
            .iter()
            .map(|k| schema.resolve(&k.column).map(|i| (i, k.desc)))
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        while let Some(row) = input.next()? {
            rows.push(row);
        }
        rows.sort_by(|a, b| {
            for &(i, desc) in &key_idx {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        Ok(Self {
            schema,
            rows: rows.into_iter(),
        })
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        Ok(self.rows.next())
    }
}

/// LIMIT n.
pub struct Limit {
    input: Box<dyn Operator>,
    remaining: usize,
}

impl Limit {
    /// Yields at most `n` rows from `input`.
    pub fn new(input: Box<dyn Operator>, n: usize) -> Self {
        Self {
            input,
            remaining: n,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }
}

/// DISTINCT over whole rows.
pub struct Distinct {
    input: Box<dyn Operator>,
    seen: std::collections::HashSet<Row>,
}

impl Distinct {
    /// De-duplicates rows of `input`.
    pub fn new(input: Box<dyn Operator>) -> Self {
        Self {
            input,
            seen: std::collections::HashSet::new(),
        }
    }
}

impl Operator for Distinct {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        while let Some(row) = self.input.next()? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// UNION ALL of two schema-compatible inputs.
pub struct UnionAll {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_done: bool,
}

impl UnionAll {
    /// Concatenates two inputs; arities must match.
    pub fn new(left: Box<dyn Operator>, right: Box<dyn Operator>) -> Result<Self, StorageError> {
        if left.schema().arity() != right.schema().arity() {
            return Err(StorageError::ArityMismatch {
                expected: left.schema().arity(),
                got: right.schema().arity(),
            });
        }
        Ok(Self {
            left,
            right,
            left_done: false,
        })
    }
}

impl Operator for UnionAll {
    fn schema(&self) -> &Schema {
        self.left.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        if !self.left_done {
            if let Some(row) = self.left.next()? {
                return Ok(Some(row));
            }
            self.left_done = true;
        }
        self.right.next()
    }
}

/// Convenience: builds a comparison predicate `col op lit`.
pub fn col_cmp(col: &str, op: BinOp, v: impl Into<Value>) -> Expr {
    Expr::col(col).bin(op, Expr::lit(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn films() -> Arc<Table> {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
        ]);
        Arc::new(
            Table::from_rows(
                "films",
                schema,
                vec![
                    vec![1i64.into(), "Guilty by Suspicion".into(), 1991i64.into()],
                    vec![2i64.into(), "Clean and Sober".into(), 1988i64.into()],
                    vec![3i64.into(), "Quiet Days".into(), 1975i64.into()],
                    vec![4i64.into(), "Night Chase".into(), 1991i64.into()],
                ],
            )
            .unwrap(),
        )
    }

    fn posters() -> Arc<Table> {
        let schema = Schema::of(&[("film_id", DataType::Int), ("boring", DataType::Bool)]);
        Arc::new(
            Table::from_rows(
                "posters",
                schema,
                vec![
                    vec![1i64.into(), true.into()],
                    vec![2i64.into(), true.into()],
                    vec![4i64.into(), false.into()],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn scan_filter_project() {
        let scan = Box::new(TableScan::new(films()));
        let filt = Box::new(Filter::new(scan, col_cmp("year", BinOp::Ge, 1988i64)));
        let proj = Project::new(filt, vec![("title".into(), Expr::col("title"))]).unwrap();
        let t = collect("recent", Box::new(proj)).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().names(), vec!["title"]);
    }

    #[test]
    fn filter_is_subset_of_scan() {
        let scan = Box::new(TableScan::new(films()));
        let filt = Filter::new(scan, col_cmp("year", BinOp::Eq, 1991i64));
        let t = collect("f", Box::new(filt)).unwrap();
        assert_eq!(t.len(), 2);
        for r in t.rows() {
            assert_eq!(r[2], Value::Int(1991));
        }
    }

    #[test]
    fn hash_join_inner_and_left() {
        let j = HashJoin::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
            "id",
            "film_id",
            JoinKind::Inner,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 3); // film 3 has no poster

        let j = HashJoin::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
            "id",
            "film_id",
            JoinKind::Left,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 4);
        let unmatched = t.rows().iter().find(|r| r[0] == Value::Int(3)).unwrap();
        assert!(unmatched[3].is_null());
    }

    #[test]
    fn hash_join_skips_null_keys() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let left = Arc::new(
            Table::from_rows("l", schema.clone(), vec![vec![Value::Null], vec![1i64.into()]])
                .unwrap(),
        );
        let right = Arc::new(
            Table::from_rows("r", schema, vec![vec![Value::Null], vec![1i64.into()]]).unwrap(),
        );
        let j = HashJoin::new(
            Box::new(TableScan::new(left)),
            Box::new(TableScan::new(right)),
            "k",
            "k",
            JoinKind::Inner,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 1); // NULL never equals NULL
    }

    #[test]
    fn nested_loop_join_with_predicate() {
        let pred = Expr::col("id").eq(Expr::col("film_id"));
        let j = NestedLoopJoin::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
            pred,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn aggregate_group_by() {
        let agg = HashAggregate::new(
            Box::new(TableScan::new(films())),
            vec!["year".into()],
            vec![
                Aggregate {
                    func: AggFunc::CountStar,
                    column: None,
                    output: "n".into(),
                },
                Aggregate {
                    func: AggFunc::Min,
                    column: Some("title".into()),
                    output: "first_title".into(),
                },
            ],
        )
        .unwrap();
        let t = collect("g", Box::new(agg)).unwrap();
        assert_eq!(t.len(), 3);
        let idx = t.find("year", &Value::Int(1991)).unwrap().unwrap();
        assert_eq!(t.cell(idx, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn aggregate_global_on_empty_input_emits_one_row() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let empty = Arc::new(Table::new("e", schema));
        let agg = HashAggregate::new(
            Box::new(TableScan::new(empty)),
            vec![],
            vec![
                Aggregate {
                    func: AggFunc::CountStar,
                    column: None,
                    output: "n".into(),
                },
                Aggregate {
                    func: AggFunc::Sum,
                    column: Some("x".into()),
                    output: "s".into(),
                },
            ],
        )
        .unwrap();
        let t = collect("g", Box::new(agg)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "n").unwrap(), &Value::Int(0));
        assert!(t.cell(0, "s").unwrap().is_null());
    }

    #[test]
    fn aggregate_avg_ignores_nulls() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let tbl = Arc::new(
            Table::from_rows(
                "t",
                schema,
                vec![vec![2i64.into()], vec![Value::Null], vec![4i64.into()]],
            )
            .unwrap(),
        );
        let agg = HashAggregate::new(
            Box::new(TableScan::new(tbl)),
            vec![],
            vec![Aggregate {
                func: AggFunc::Avg,
                column: Some("x".into()),
                output: "a".into(),
            }],
        )
        .unwrap();
        let t = collect("g", Box::new(agg)).unwrap();
        assert_eq!(t.cell(0, "a").unwrap(), &Value::Float(3.0));
    }

    #[test]
    fn sort_desc_then_limit() {
        let sort = Sort::new(
            Box::new(TableScan::new(films())),
            vec![SortKey {
                column: "year".into(),
                desc: true,
            }],
        )
        .unwrap();
        let lim = Limit::new(Box::new(sort), 2);
        let t = collect("top", Box::new(lim)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, "year").unwrap(), &Value::Int(1991));
        assert_eq!(t.cell(1, "year").unwrap(), &Value::Int(1991));
    }

    #[test]
    fn sort_is_stable() {
        let sort = Sort::new(
            Box::new(TableScan::new(films())),
            vec![SortKey {
                column: "year".into(),
                desc: true,
            }],
        )
        .unwrap();
        let t = collect("s", Box::new(sort)).unwrap();
        // ids 1 and 4 both have year 1991; input order 1 then 4 preserved.
        assert_eq!(t.cell(0, "id").unwrap(), &Value::Int(1));
        assert_eq!(t.cell(1, "id").unwrap(), &Value::Int(4));
    }

    #[test]
    fn distinct_and_union() {
        let u = UnionAll::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(films())),
        )
        .unwrap();
        let d = Distinct::new(Box::new(u));
        let t = collect("d", Box::new(d)).unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn union_rejects_arity_mismatch() {
        let r = UnionAll::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
        );
        assert!(r.is_err());
    }
}
