//! Volcano-style relational operators.
//!
//! KathDB's FAO bodies compile down to pipelines of these operators; the
//! classical iterator model gives the system the "clear query semantics and
//! high efficiency" of a traditional DBMS (§1) underneath the model-driven
//! layer.

use crate::batch::{ColumnVector, RowBatch, DEFAULT_BATCH_SIZE};
use crate::guard::QueryGuard;
use crate::{BinOp, Expr, Row, Schema, StorageError, Table, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// A pull-based relational operator.
///
/// Operators can be driven tuple-at-a-time via [`Operator::next`] (the
/// classical Volcano protocol) or batch-at-a-time via
/// [`Operator::next_batch`]. The default `next_batch` adapts `next()`, so
/// every operator supports both; the hot operators ([`TableScan`],
/// [`Filter`], [`Project`], [`HashJoin`], [`Limit`], [`Distinct`])
/// override it with native columnar implementations. Both protocols
/// advance the same stream — switching mid-stream (as [`Limit`] does for
/// its row-wise tail) continues where the other left off.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Produces the next row, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Row>, StorageError>;

    /// Produces the next batch of up to [`Operator::batch_capacity`] rows,
    /// or `None` when exhausted. Returned batches are never empty.
    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        let cap = self.batch_capacity();
        let mut rows = Vec::with_capacity(cap);
        while rows.len() < cap {
            match self.next()? {
                Some(row) => rows.push(row),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch::from_rows(self.schema().arity(), rows)))
        }
    }

    /// Target rows per batch. Source operators own the setting; pass-through
    /// operators delegate to their input so one knob drives the pipeline.
    fn batch_capacity(&self) -> usize {
        DEFAULT_BATCH_SIZE
    }
}

/// Drains an operator into a materialized [`Table`].
pub fn collect(name: &str, op: Box<dyn Operator>) -> Result<Table, StorageError> {
    collect_guarded(name, op, &QueryGuard::unlimited())
}

/// [`collect`] under a [`QueryGuard`]: the guard is checked before every
/// `next()` (so a 0ms deadline aborts before the first row) and charged
/// for every produced row.
pub fn collect_guarded(
    name: &str,
    mut op: Box<dyn Operator>,
    guard: &QueryGuard,
) -> Result<Table, StorageError> {
    let mut out = Table::new(name, op.schema().clone());
    guard.check()?;
    while let Some(row) = op.next()? {
        guard.charge_row(&row)?;
        out.push(row)?;
        guard.check_periodic(out.len())?;
    }
    Ok(out)
}

/// Drains an operator batch-at-a-time into a materialized [`Table`],
/// returning the table and the number of batches produced.
pub fn collect_batched(name: &str, op: Box<dyn Operator>) -> Result<(Table, usize), StorageError> {
    collect_batched_guarded(name, op, &QueryGuard::unlimited())
}

/// [`collect_batched`] under a [`QueryGuard`]: checked before every
/// `next_batch()`, charged per produced batch.
pub fn collect_batched_guarded(
    name: &str,
    mut op: Box<dyn Operator>,
    guard: &QueryGuard,
) -> Result<(Table, usize), StorageError> {
    let mut out = Table::new(name, op.schema().clone());
    let mut batches = 0;
    loop {
        guard.check()?;
        let Some(batch) = op.next_batch()? else {
            break;
        };
        guard.charge_batch(&batch)?;
        batches += 1;
        for row in batch.into_rows() {
            out.push(row)?;
        }
    }
    Ok((out, batches))
}

/// Full scan over a shared table (optionally restricted to a row range, the
/// unit a [`crate::MorselSource`] hands to parallel workers).
///
/// On a paged table the scan walks page by page through the buffer pool,
/// and prune hints (sargable `column <op> literal` conjuncts from the WHERE
/// clause above) let it skip whole pages whose zone map proves no row can
/// match — before the page is ever decoded.
pub struct TableScan {
    table: Arc<Table>,
    cursor: usize,
    end: usize,
    batch_size: usize,
    // (column ordinal, op, literal) conjuncts for zone-map pruning.
    // Ordinals stay full-table even under a column restriction.
    prune: Vec<(usize, BinOp, Value)>,
    // Selected full-table column ordinals + the projected output schema,
    // when the scan is restricted to a column subset.
    columns: Option<(Vec<usize>, Schema)>,
    guard: QueryGuard,
}

impl TableScan {
    /// Scans `table` from the first row.
    pub fn new(table: Arc<Table>) -> Self {
        let end = table.len();
        Self {
            table,
            cursor: 0,
            end,
            batch_size: DEFAULT_BATCH_SIZE,
            prune: Vec::new(),
            columns: None,
            guard: QueryGuard::unlimited(),
        }
    }

    /// Attaches a [`QueryGuard`]: deadline/cancellation is checked
    /// periodically in `next()` and once per `next_batch()`, so a
    /// long-running scan aborts mid-stream instead of at drain time.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Sets the rows-per-batch capacity for batched execution (min 1).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Restricts the scan to rows `[start, end)` (clamped to the table).
    pub fn with_range(mut self, start: usize, end: usize) -> Self {
        self.end = end.min(self.table.len());
        self.cursor = start.min(self.end);
        self
    }

    /// Attaches zone-map prune hints: `column <op> literal` conjuncts that
    /// the plan's filter will apply anyway. Pages a hint proves empty are
    /// skipped without decoding. Unknown columns are ignored (no hint).
    /// Only meaningful on paged tables; resident scans ignore hints.
    pub fn with_prune_hint(mut self, hints: &[(String, BinOp, Value)]) -> Self {
        let schema = self.table.schema();
        self.prune = hints
            .iter()
            .filter_map(|(col, op, lit)| schema.index_of(col).map(|c| (c, *op, lit.clone())))
            .collect();
        self
    }

    /// Restricts the scan to the given column ordinals (full-table
    /// ordinals, in output order): the scan's schema becomes the
    /// projection, and rows and batches carry only the selected columns —
    /// on a paged table, unselected columns' pages are never even decoded.
    /// Zone-map prune hints keep addressing full-table ordinals (zone maps
    /// are consulted without decoding) and are unaffected.
    pub fn with_columns(mut self, ordinals: &[usize]) -> Self {
        let schema = self.table.schema().project(ordinals);
        self.columns = Some((ordinals.to_vec(), schema));
        self
    }

    /// Projects a fetched full-arity row down to the selected columns.
    fn project_row(&self, row: Row) -> Row {
        match &self.columns {
            Some((ords, _)) => ords.iter().map(|&c| row[c].clone()).collect(),
            None => row,
        }
    }

    /// Whether page `p` is provably empty under the prune hints.
    fn page_pruned(&self, pages: &crate::PagedTable, p: usize) -> bool {
        self.prune
            .iter()
            .any(|(c, op, lit)| !pages.zone(*c, p).may_match(*op, lit))
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Schema {
        match &self.columns {
            Some((_, schema)) => schema,
            None => self.table.schema(),
        }
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        self.guard.check_periodic(self.cursor)?;
        if let Some(pages) = self.table.paged().cloned() {
            loop {
                if self.cursor >= self.end {
                    return Ok(None);
                }
                let p = self.cursor / pages.page_rows();
                let (_, pend) = pages.page_bounds(p);
                let upper = pend.min(self.end);
                if self.page_pruned(&pages, p) {
                    pages.note_zone_skip();
                    self.cursor = upper;
                    continue;
                }
                let row = pages.row_at(self.cursor)?;
                self.cursor += 1;
                return Ok(row.map(|r| self.project_row(r)));
            }
        }
        if self.cursor >= self.end {
            return Ok(None);
        }
        let row = self.table.row(self.cursor).cloned();
        if row.is_some() {
            self.cursor += 1;
        }
        Ok(row.map(|r| self.project_row(r)))
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        self.guard.check()?;
        if let Some(pages) = self.table.paged().cloned() {
            loop {
                if self.cursor >= self.end {
                    return Ok(None);
                }
                let p = self.cursor / pages.page_rows();
                let (pstart, pend) = pages.page_bounds(p);
                let upper = pend.min(self.end);
                if self.page_pruned(&pages, p) {
                    pages.note_zone_skip();
                    self.cursor = upper;
                    continue;
                }
                // Batches never span pages, so a batch is a slice of one
                // decoded page per column (or the whole page, zero-slice).
                let take_end = (self.cursor + self.batch_size).min(upper);
                let selected: Vec<usize> = match &self.columns {
                    Some((ords, _)) => ords.clone(),
                    None => (0..pages.schema().arity()).collect(),
                };
                let mut columns = Vec::with_capacity(selected.len());
                for c in selected {
                    let page = pages.column_page(c, p)?;
                    columns.push(if self.cursor == pstart && take_end == pend {
                        (*page).clone()
                    } else {
                        ColumnVector::from_values(
                            (self.cursor - pstart..take_end - pstart)
                                .map(|i| page.value(i))
                                .collect(),
                        )
                    });
                }
                self.cursor = take_end;
                return Ok(Some(
                    RowBatch::from_columns(columns).expect("columns share the page slice length"),
                ));
            }
        }
        let rows = &self.table.rows()[..self.end];
        if self.cursor >= rows.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(rows.len());
        let slice = &rows[self.cursor..end];
        self.cursor = end;
        // Build columns directly from the row slice: one Value clone per
        // cell, no intermediate row vector. Only selected columns are built
        // under a column restriction.
        let selected: Vec<usize> = match &self.columns {
            Some((ords, _)) => ords.clone(),
            None => (0..self.table.schema().arity()).collect(),
        };
        let columns: Vec<ColumnVector> = selected
            .into_iter()
            .map(|c| ColumnVector::from_values(slice.iter().map(|r| r[c].clone()).collect()))
            .collect();
        Ok(Some(
            RowBatch::from_columns(columns).expect("columns share the slice length"),
        ))
    }

    fn batch_capacity(&self) -> usize {
        self.batch_size
    }
}

/// Scan over an explicit list of row positions of a table — the access path
/// a secondary index produces for equality predicates. Positions must be in
/// ascending order when scan-equivalent output order matters.
pub struct IndexScan {
    table: Arc<Table>,
    positions: Vec<usize>,
    cursor: usize,
    batch_size: usize,
    guard: QueryGuard,
}

impl IndexScan {
    /// Scans `table` at `positions`, in the given order.
    pub fn new(table: Arc<Table>, positions: Vec<usize>) -> Self {
        Self {
            table,
            positions,
            cursor: 0,
            batch_size: DEFAULT_BATCH_SIZE,
            guard: QueryGuard::unlimited(),
        }
    }

    /// Sets the rows-per-batch capacity for batched execution (min 1).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Attaches a [`QueryGuard`] checked as the scan advances.
    pub fn with_guard(mut self, guard: QueryGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl Operator for IndexScan {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        self.guard.check_periodic(self.cursor)?;
        let Some(&pos) = self.positions.get(self.cursor) else {
            return Ok(None);
        };
        self.cursor += 1;
        self.table
            .row_at(pos)?
            .map(Some)
            .ok_or_else(|| StorageError::Eval(format!("index position {pos} out of bounds")))
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        self.guard.check()?;
        if self.cursor >= self.positions.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(self.positions.len());
        let mut rows = Vec::with_capacity(end - self.cursor);
        for &pos in &self.positions[self.cursor..end] {
            let row = self
                .table
                .row_at(pos)?
                .ok_or_else(|| StorageError::Eval(format!("index position {pos} out of bounds")))?;
            rows.push(row);
        }
        self.cursor = end;
        Ok(Some(RowBatch::from_rows(self.table.schema().arity(), rows)))
    }

    fn batch_capacity(&self) -> usize {
        self.batch_size
    }
}

/// Filters rows by a predicate expression (NULL predicate drops the row,
/// SQL `WHERE` semantics).
pub struct Filter {
    input: Box<dyn Operator>,
    predicate: Expr,
}

impl Filter {
    /// Wraps `input`, keeping rows where `predicate` is truthy.
    pub fn new(input: Box<dyn Operator>, predicate: Expr) -> Self {
        Self { input, predicate }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        while let Some(row) = self.input.next()? {
            let keep = self.predicate.eval(&row, self.input.schema())?;
            if keep.is_truthy() {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        while let Some(batch) = self.input.next_batch()? {
            let keep = self
                .predicate
                .eval_batch(&batch, self.input.schema())?
                .truthy_mask();
            if keep.iter().all(|k| *k) {
                // Everything passed: hand the batch through untouched.
                return Ok(Some(batch));
            }
            if keep.iter().any(|k| *k) {
                return Ok(Some(batch.filter(&keep)));
            }
        }
        Ok(None)
    }

    fn batch_capacity(&self) -> usize {
        self.input.batch_capacity()
    }
}

/// Projects (and computes) output columns from expressions.
pub struct Project {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl Project {
    /// Builds a projection of `(output name, expression)` pairs. Output
    /// types are inferred as `Any` unless the expression is a plain column
    /// reference, in which case the input type is preserved.
    pub fn new(
        input: Box<dyn Operator>,
        outputs: Vec<(String, Expr)>,
    ) -> Result<Self, StorageError> {
        let schema = Self::output_schema(input.schema(), &outputs)?;
        Ok(Self {
            input,
            exprs: outputs.into_iter().map(|(_, e)| e).collect(),
            schema,
        })
    }

    /// The schema a projection of `outputs` over `input` rows produces.
    /// Exposed so drivers that assemble results away from an operator tree
    /// (e.g. the parallel pipeline merge) infer the identical schema.
    pub fn output_schema(
        input: &Schema,
        outputs: &[(String, Expr)],
    ) -> Result<Schema, StorageError> {
        use crate::{Column, DataType};
        let mut cols = Vec::with_capacity(outputs.len());
        for (name, expr) in outputs {
            let dtype = match expr {
                Expr::Col(c) => {
                    let idx = input.resolve(c)?;
                    input.column(idx).dtype
                }
                Expr::Lit(v) if !v.is_null() => v.data_type(),
                _ => DataType::Any,
            };
            cols.push(Column::new(name.clone(), dtype));
        }
        Schema::new(cols)
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let out: Row = self
                    .exprs
                    .iter()
                    .map(|e| e.eval(&row, self.input.schema()))
                    .collect::<Result<_, _>>()?;
                Ok(Some(out))
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => {
                if self.exprs.is_empty() {
                    // Degenerate arity-0 projection: keep the row count.
                    return Ok(Some(RowBatch::from_rows(
                        0,
                        vec![Vec::new(); batch.num_rows()],
                    )));
                }
                let columns: Vec<_> = self
                    .exprs
                    .iter()
                    .map(|e| e.eval_batch(&batch, self.input.schema()))
                    .collect::<Result<_, _>>()?;
                Ok(Some(
                    RowBatch::from_columns(columns).expect("expressions evaluate one batch"),
                ))
            }
        }
    }

    fn batch_capacity(&self) -> usize {
        self.input.batch_capacity()
    }
}

/// Join kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join (unmatched left rows padded with NULLs).
    Left,
}

/// The materialized build side of a [`HashJoin`]: the hash table plus the
/// right schema. Building it once and sharing it behind an `Arc` is what
/// lets parallel workers probe the same table from independent per-morsel
/// pipelines (the build is the pipeline breaker; the probe is streaming).
#[derive(Debug)]
pub struct JoinBuild {
    map: HashMap<Value, Vec<Row>>,
    right_schema: Schema,
}

impl JoinBuild {
    /// Drains `right` into the hash table keyed on `right_col`. NULL keys
    /// are dropped (they never match in SQL equi-joins).
    pub fn build(mut right: Box<dyn Operator>, right_col: &str) -> Result<Self, StorageError> {
        let right_key = right.schema().resolve(right_col)?;
        let right_schema = right.schema().clone();
        let mut map: HashMap<Value, Vec<Row>> = HashMap::new();
        // Build side drains batch-wise; all operators support next_batch.
        while let Some(batch) = right.next_batch()? {
            for i in 0..batch.num_rows() {
                let key = batch.column(right_key).value(i);
                if key.is_null() {
                    continue;
                }
                map.entry(key).or_default().push(batch.row(i));
            }
        }
        Ok(Self { map, right_schema })
    }

    /// The build rows matching `key` (NULL never matches).
    pub fn matches(&self, key: &Value) -> Option<&Vec<Row>> {
        if key.is_null() {
            None
        } else {
            self.map.get(key)
        }
    }

    /// Schema of the build (right) side.
    pub fn right_schema(&self) -> &Schema {
        &self.right_schema
    }

    /// Arity of the build side (NULL padding width for left joins).
    pub fn right_arity(&self) -> usize {
        self.right_schema.arity()
    }
}

/// Hash join on column equality. Builds on the right input, probes the left.
pub struct HashJoin {
    left: Box<dyn Operator>,
    schema: Schema,
    left_key: usize,
    built: Arc<JoinBuild>,
    kind: JoinKind,
    pending: Vec<Row>,
    // Batched probe state: the current left batch and the next row in it.
    lbatch: Option<RowBatch>,
    lcursor: usize,
}

impl HashJoin {
    /// Joins `left.left_col == right.right_col`. The right side is fully
    /// materialized into the hash table up front.
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_col: &str,
        right_col: &str,
        kind: JoinKind,
    ) -> Result<Self, StorageError> {
        let built = Arc::new(JoinBuild::build(right, right_col)?);
        Self::from_build(left, built, left_col, kind)
    }

    /// Probes an already-materialized (possibly shared) build side.
    pub fn from_build(
        left: Box<dyn Operator>,
        built: Arc<JoinBuild>,
        left_col: &str,
        kind: JoinKind,
    ) -> Result<Self, StorageError> {
        let left_key = left.schema().resolve(left_col)?;
        let schema = left.schema().join(built.right_schema(), "right");
        Ok(Self {
            left,
            schema,
            left_key,
            built,
            kind,
            pending: Vec::new(),
            lbatch: None,
            lcursor: 0,
        })
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            // Finish any left batch a batched probe started, so switching
            // protocols mid-stream (e.g. Limit's row-wise tail) loses
            // nothing.
            let mut lrow: Option<Row> = None;
            if let Some(b) = &self.lbatch {
                if self.lcursor < b.num_rows() {
                    lrow = Some(b.row(self.lcursor));
                    self.lcursor += 1;
                } else {
                    self.lbatch = None;
                }
            }
            let lrow = match lrow {
                Some(row) => row,
                None => match self.left.next()? {
                    Some(row) => row,
                    None => return Ok(None),
                },
            };
            match self.built.matches(&lrow[self.left_key]) {
                Some(rrows) => {
                    for rrow in rrows.iter().rev() {
                        let mut out = lrow.clone();
                        out.extend(rrow.iter().cloned());
                        self.pending.push(out);
                    }
                }
                None if self.kind == JoinKind::Left => {
                    let mut out = lrow.clone();
                    out.extend(std::iter::repeat_n(Value::Null, self.built.right_arity()));
                    self.pending.push(out);
                }
                None => continue,
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        let cap = self.batch_capacity();
        let mut out: Vec<Row> = Vec::new();
        // Drain rows a prior next() staged, preserving pop order.
        while let Some(row) = self.pending.pop() {
            out.push(row);
        }
        // Probe left rows one at a time so output batches stay near the
        // configured capacity even when keys fan out (one row's match list
        // is the only unbounded unit, exactly as on the row path).
        while out.len() < cap {
            let exhausted = match &self.lbatch {
                Some(b) => self.lcursor >= b.num_rows(),
                None => true,
            };
            if exhausted {
                match self.left.next_batch()? {
                    Some(b) => {
                        self.lbatch = Some(b);
                        self.lcursor = 0;
                    }
                    None => break,
                }
            }
            let lbatch = self.lbatch.as_ref().expect("refilled above");
            let i = self.lcursor;
            self.lcursor += 1;
            let keys = lbatch.column(self.left_key);
            match self.built.matches(&keys.value(i)) {
                Some(rrows) => {
                    let lrow = lbatch.row(i);
                    for rrow in rrows {
                        let mut joined = lrow.clone();
                        joined.extend(rrow.iter().cloned());
                        out.push(joined);
                    }
                }
                None if self.kind == JoinKind::Left => {
                    let mut joined = lbatch.row(i);
                    joined.extend(std::iter::repeat_n(Value::Null, self.built.right_arity()));
                    out.push(joined);
                }
                None => {}
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch::from_rows(self.schema.arity(), out)))
        }
    }

    fn batch_capacity(&self) -> usize {
        self.left.batch_capacity()
    }
}

/// Nested-loop join with an arbitrary predicate over the concatenated row.
pub struct NestedLoopJoin {
    left: Box<dyn Operator>,
    right_rows: Vec<Row>,
    predicate: Expr,
    schema: Schema,
    current_left: Option<Row>,
    right_cursor: usize,
}

impl NestedLoopJoin {
    /// Joins on any predicate; the right side is materialized.
    pub fn new(
        left: Box<dyn Operator>,
        mut right: Box<dyn Operator>,
        predicate: Expr,
    ) -> Result<Self, StorageError> {
        let schema = left.schema().join(right.schema(), "right");
        let mut right_rows = Vec::new();
        while let Some(batch) = right.next_batch()? {
            right_rows.extend(batch.into_rows());
        }
        Ok(Self {
            left,
            right_rows,
            predicate,
            schema,
            current_left: None,
            right_cursor: 0,
        })
    }
}

impl Operator for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next()?;
                self.right_cursor = 0;
                if self.current_left.is_none() {
                    return Ok(None);
                }
            }
            let lrow = self.current_left.as_ref().expect("set above").clone();
            while self.right_cursor < self.right_rows.len() {
                let rrow = &self.right_rows[self.right_cursor];
                self.right_cursor += 1;
                let mut joined = lrow.clone();
                joined.extend(rrow.iter().cloned());
                if self.predicate.eval(&joined, &self.schema)?.is_truthy() {
                    return Ok(Some(joined));
                }
            }
            self.current_left = None;
        }
    }
}

/// Aggregate functions supported by [`HashAggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` (counts rows; NULLs included).
    CountStar,
    /// `COUNT(col)` (non-NULL values).
    Count,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

/// One aggregate output: function + input column + output name.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (ignored for `CountStar`).
    pub column: Option<String>,
    /// Output column name.
    pub output: String,
}

/// Hash aggregation with optional GROUP BY keys.
pub struct HashAggregate {
    schema: Schema,
    results: std::vec::IntoIter<Row>,
}

#[derive(Clone)]
struct AggState {
    count: i64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(f) = v.as_f64() {
            self.sum += f;
        }
        let better_min = self
            .min
            .as_ref()
            .is_none_or(|m| v.total_cmp(m) == Ordering::Less);
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .is_none_or(|m| v.total_cmp(m) == Ordering::Greater);
        if better_max {
            self.max = Some(v.clone());
        }
    }

    /// Folds a later partial's state into this one. `other` must cover rows
    /// that come *after* this state's rows in scan order (min/max are order-
    /// free; sums are added in scan order to keep float results stable
    /// across worker counts).
    fn absorb(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = &other.min {
            let better = self
                .min
                .as_ref()
                .is_none_or(|cur| m.total_cmp(cur) == Ordering::Less);
            if better {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            let better = self
                .max
                .as_ref()
                .is_none_or(|cur| m.total_cmp(cur) == Ordering::Greater);
            if better {
                self.max = Some(m.clone());
            }
        }
    }

    fn finish(&self, func: AggFunc, rows_in_group: i64) -> Value {
        match func {
            AggFunc::CountStar => Value::Int(rows_in_group),
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Thread-local partial state of a hash aggregation: group states keyed by
/// the group tuple, with first-appearance order tracked for deterministic
/// output. [`HashAggregate`] is one partial consumed serially; a parallel
/// aggregation builds one partial per morsel and [`PartialAggregate::merge`]s
/// them **in morsel order**, which reproduces the exact group order (and
/// float accumulation order) of a serial run.
pub struct PartialAggregate {
    key_idx: Vec<usize>,
    agg_idx: Vec<Option<usize>>,
    aggregates: Vec<Aggregate>,
    schema: Schema,
    global: bool,
    order: Vec<Vec<Value>>,
    groups: HashMap<Vec<Value>, (i64, Vec<AggState>)>,
}

impl PartialAggregate {
    /// An empty partial aggregating `in_schema` rows grouped by `group_by`.
    pub fn new(
        in_schema: &Schema,
        group_by: &[String],
        aggregates: Vec<Aggregate>,
    ) -> Result<Self, StorageError> {
        use crate::{Column, DataType};
        let key_idx: Vec<usize> = group_by
            .iter()
            .map(|g| in_schema.resolve(g))
            .collect::<Result<_, _>>()?;
        let agg_idx: Vec<Option<usize>> = aggregates
            .iter()
            .map(|a| match (&a.column, a.func) {
                (_, AggFunc::CountStar) => Ok(None),
                (Some(c), _) => in_schema.resolve(c).map(Some),
                (None, _) => Err(StorageError::Eval(format!(
                    "aggregate {} requires a column",
                    a.output
                ))),
            })
            .collect::<Result<_, _>>()?;

        let mut cols: Vec<Column> = key_idx
            .iter()
            .map(|&i| in_schema.column(i).clone())
            .collect();
        for a in &aggregates {
            let dtype = match a.func {
                AggFunc::CountStar | AggFunc::Count => DataType::Int,
                AggFunc::Sum | AggFunc::Avg => DataType::Float,
                AggFunc::Min | AggFunc::Max => DataType::Any,
            };
            cols.push(Column::new(a.output.clone(), dtype));
        }
        let schema = Schema::new(cols)?;
        Ok(Self {
            key_idx,
            agg_idx,
            aggregates,
            schema,
            global: group_by.is_empty(),
            order: Vec::new(),
            groups: HashMap::new(),
        })
    }

    /// Output schema: group keys followed by aggregate outputs.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Folds one batch into the partial. Group keys and aggregate inputs
    /// are read straight out of the batch columns.
    pub fn absorb(&mut self, batch: &RowBatch) {
        for r in 0..batch.num_rows() {
            let key: Vec<Value> = self
                .key_idx
                .iter()
                .map(|&i| batch.column(i).value(r))
                .collect();
            let n_aggs = self.aggregates.len();
            let entry = self.groups.entry(key.clone()).or_insert_with(|| {
                self.order.push(key);
                (0, vec![AggState::new(); n_aggs])
            });
            entry.0 += 1;
            for (state, idx) in entry.1.iter_mut().zip(&self.agg_idx) {
                if let Some(i) = idx {
                    state.update(&batch.column(*i).value(r));
                }
            }
        }
    }

    /// Drains an operator into the partial, batch-at-a-time. Returns the
    /// number of batches consumed.
    pub fn consume(&mut self, op: &mut dyn Operator) -> Result<usize, StorageError> {
        let mut batches = 0;
        while let Some(batch) = op.next_batch()? {
            batches += 1;
            self.absorb(&batch);
        }
        Ok(batches)
    }

    /// Merges a partial covering *later* rows (in scan order) into this
    /// one. Groups first seen in `later` are appended in their order of
    /// appearance, exactly as a serial pass would have discovered them.
    pub fn merge(&mut self, later: PartialAggregate) {
        for key in later.order {
            let (n, states) = &later.groups[&key];
            let n_aggs = self.aggregates.len();
            let entry = self.groups.entry(key.clone()).or_insert_with(|| {
                self.order.push(key);
                (0, vec![AggState::new(); n_aggs])
            });
            entry.0 += *n;
            for (mine, theirs) in entry.1.iter_mut().zip(states) {
                mine.absorb(theirs);
            }
        }
    }

    /// Finalizes into result rows (group keys then aggregate values). With
    /// no group keys, emits a single global row even for empty input, as
    /// SQL does.
    pub fn finish(mut self) -> (Schema, Vec<Row>) {
        if self.global && self.groups.is_empty() {
            self.order.push(Vec::new());
            self.groups.insert(
                Vec::new(),
                (0, vec![AggState::new(); self.aggregates.len()]),
            );
        }
        let mut results = Vec::with_capacity(self.order.len());
        for key in &self.order {
            let (n, states) = &self.groups[key];
            let mut row = key.clone();
            for (state, agg) in states.iter().zip(&self.aggregates) {
                row.push(state.finish(agg.func, *n));
            }
            results.push(row);
        }
        (self.schema, results)
    }
}

impl HashAggregate {
    /// Aggregates `input` grouped by `group_by` columns. Output schema is
    /// group keys followed by aggregate outputs. With no group keys, emits a
    /// single global row (even for empty input, as SQL does).
    pub fn new(
        mut input: Box<dyn Operator>,
        group_by: Vec<String>,
        aggregates: Vec<Aggregate>,
    ) -> Result<Self, StorageError> {
        let mut partial = PartialAggregate::new(input.schema(), &group_by, aggregates)?;
        partial.consume(input.as_mut())?;
        let (schema, results) = partial.finish();
        Ok(Self {
            schema,
            results: results.into_iter(),
        })
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        Ok(self.results.next())
    }
}

/// Sort direction for one key.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Column to sort on.
    pub column: String,
    /// Descending if true.
    pub desc: bool,
}

/// Full sort (materializing).
pub struct Sort {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

/// Resolves sort keys into `(column index, descending)` pairs.
pub fn resolve_sort_keys(
    schema: &Schema,
    keys: &[SortKey],
) -> Result<Vec<(usize, bool)>, StorageError> {
    keys.iter()
        .map(|k| schema.resolve(&k.column).map(|i| (i, k.desc)))
        .collect()
}

/// Compares two rows under resolved sort keys (total value order).
pub fn cmp_rows(a: &Row, b: &Row, key_idx: &[(usize, bool)]) -> Ordering {
    for &(i, desc) in key_idx {
        let ord = a[i].total_cmp(&b[i]);
        let ord = if desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Stably sorts `rows` in place under resolved sort keys.
pub fn sort_rows(rows: &mut [Row], key_idx: &[(usize, bool)]) {
    rows.sort_by(|a, b| cmp_rows(a, b, key_idx));
}

/// K-way merge of stably-sorted runs into one stably-sorted stream. Runs
/// must be ordered by the position of their rows in the original input
/// (run 0 before run 1, …): ties then resolve to the earliest run, which
/// reproduces exactly the row order of a serial stable sort over the
/// concatenated input. This is the deterministic merge step of a parallel
/// sort (each worker sorts its morsel's run; the merge is serial).
pub fn merge_sorted_runs(runs: Vec<Vec<Row>>, key_idx: &[(usize, bool)]) -> Vec<Row> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<Row>>> = runs
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(|r| r.into_iter().peekable())
        .collect();
    let mut out = Vec::with_capacity(total);
    while !iters.is_empty() {
        // Linear scan over run heads: strictly-less keeps the earliest run
        // on ties (stability). Run counts are small (morsel count), so the
        // scan beats heap bookkeeping for realistic inputs.
        let mut best = 0usize;
        for i in 1..iters.len() {
            let (head, tail) = iters.split_at_mut(i);
            let candidate = tail[0].peek().expect("empty iterators are dropped");
            let current = head[best].peek().expect("empty iterators are dropped");
            if cmp_rows(candidate, current, key_idx) == Ordering::Less {
                best = i;
            }
        }
        out.push(iters[best].next().expect("peeked above"));
        if iters[best].peek().is_none() {
            let _ = iters.remove(best);
        }
    }
    out
}

impl Sort {
    /// Sorts `input` by `keys` using the total value order (stable).
    pub fn new(mut input: Box<dyn Operator>, keys: Vec<SortKey>) -> Result<Self, StorageError> {
        let schema = input.schema().clone();
        let key_idx = resolve_sort_keys(&schema, &keys)?;
        let mut rows = Vec::new();
        while let Some(batch) = input.next_batch()? {
            rows.extend(batch.into_rows());
        }
        sort_rows(&mut rows, &key_idx);
        Ok(Self {
            schema,
            rows: rows.into_iter(),
        })
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        Ok(self.rows.next())
    }
}

/// LIMIT n.
pub struct Limit {
    input: Box<dyn Operator>,
    remaining: usize,
}

impl Limit {
    /// Yields at most `n` rows from `input`.
    pub fn new(input: Box<dyn Operator>, n: usize) -> Self {
        Self {
            input,
            remaining: n,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // While the limit exceeds the batch capacity, whole input batches
        // are within the limit, so passing them through evaluates exactly
        // the rows the row path would.
        if self.remaining >= self.input.batch_capacity() {
            return match self.input.next_batch()? {
                None => Ok(None),
                Some(batch) if batch.num_rows() <= self.remaining => {
                    self.remaining -= batch.num_rows();
                    Ok(Some(batch))
                }
                Some(batch) => {
                    // Rare overshoot (join fan-out): keep the first rows.
                    let mask: Vec<bool> =
                        (0..batch.num_rows()).map(|i| i < self.remaining).collect();
                    self.remaining = 0;
                    Ok(Some(batch.filter(&mask)))
                }
            };
        }
        // Tail: pull row-wise so nothing past the limit is evaluated —
        // the lazy semantics a row-driven LIMIT gives (an erroring
        // expression beyond the limit must stay unreached on both drives).
        let mut rows = Vec::with_capacity(self.remaining);
        while rows.len() < self.remaining {
            match self.input.next()? {
                Some(row) => rows.push(row),
                None => break,
            }
        }
        self.remaining -= rows.len();
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(RowBatch::from_rows(self.input.schema().arity(), rows)))
        }
    }

    fn batch_capacity(&self) -> usize {
        self.input.batch_capacity()
    }
}

/// DISTINCT over whole rows.
pub struct Distinct {
    input: Box<dyn Operator>,
    seen: std::collections::HashSet<Row>,
}

impl Distinct {
    /// De-duplicates rows of `input`.
    pub fn new(input: Box<dyn Operator>) -> Self {
        Self {
            input,
            seen: std::collections::HashSet::new(),
        }
    }
}

impl Operator for Distinct {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        while let Some(row) = self.input.next()? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        while let Some(batch) = self.input.next_batch()? {
            let fresh: Vec<bool> = (0..batch.num_rows())
                .map(|i| self.seen.insert(batch.row(i)))
                .collect();
            if fresh.iter().all(|k| *k) {
                return Ok(Some(batch));
            }
            if fresh.iter().any(|k| *k) {
                return Ok(Some(batch.filter(&fresh)));
            }
        }
        Ok(None)
    }

    fn batch_capacity(&self) -> usize {
        self.input.batch_capacity()
    }
}

/// UNION ALL of two schema-compatible inputs.
pub struct UnionAll {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_done: bool,
}

impl UnionAll {
    /// Concatenates two inputs; arities must match.
    pub fn new(left: Box<dyn Operator>, right: Box<dyn Operator>) -> Result<Self, StorageError> {
        if left.schema().arity() != right.schema().arity() {
            return Err(StorageError::ArityMismatch {
                expected: left.schema().arity(),
                got: right.schema().arity(),
            });
        }
        Ok(Self {
            left,
            right,
            left_done: false,
        })
    }
}

impl Operator for UnionAll {
    fn schema(&self) -> &Schema {
        self.left.schema()
    }

    fn next(&mut self) -> Result<Option<Row>, StorageError> {
        if !self.left_done {
            if let Some(row) = self.left.next()? {
                return Ok(Some(row));
            }
            self.left_done = true;
        }
        self.right.next()
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, StorageError> {
        if !self.left_done {
            if let Some(batch) = self.left.next_batch()? {
                return Ok(Some(batch));
            }
            self.left_done = true;
        }
        self.right.next_batch()
    }

    fn batch_capacity(&self) -> usize {
        self.left.batch_capacity()
    }
}

/// Convenience: builds a comparison predicate `col op lit`.
pub fn col_cmp(col: &str, op: BinOp, v: impl Into<Value>) -> Expr {
    Expr::col(col).bin(op, Expr::lit(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn films() -> Arc<Table> {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("title", DataType::Str),
            ("year", DataType::Int),
        ]);
        Arc::new(
            Table::from_rows(
                "films",
                schema,
                vec![
                    vec![1i64.into(), "Guilty by Suspicion".into(), 1991i64.into()],
                    vec![2i64.into(), "Clean and Sober".into(), 1988i64.into()],
                    vec![3i64.into(), "Quiet Days".into(), 1975i64.into()],
                    vec![4i64.into(), "Night Chase".into(), 1991i64.into()],
                ],
            )
            .unwrap(),
        )
    }

    fn posters() -> Arc<Table> {
        let schema = Schema::of(&[("film_id", DataType::Int), ("boring", DataType::Bool)]);
        Arc::new(
            Table::from_rows(
                "posters",
                schema,
                vec![
                    vec![1i64.into(), true.into()],
                    vec![2i64.into(), true.into()],
                    vec![4i64.into(), false.into()],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn scan_filter_project() {
        let scan = Box::new(TableScan::new(films()));
        let filt = Box::new(Filter::new(scan, col_cmp("year", BinOp::Ge, 1988i64)));
        let proj = Project::new(filt, vec![("title".into(), Expr::col("title"))]).unwrap();
        let t = collect("recent", Box::new(proj)).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().names(), vec!["title"]);
    }

    #[test]
    fn filter_is_subset_of_scan() {
        let scan = Box::new(TableScan::new(films()));
        let filt = Filter::new(scan, col_cmp("year", BinOp::Eq, 1991i64));
        let t = collect("f", Box::new(filt)).unwrap();
        assert_eq!(t.len(), 2);
        for r in t.rows() {
            assert_eq!(r[2], Value::Int(1991));
        }
    }

    #[test]
    fn hash_join_inner_and_left() {
        let j = HashJoin::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
            "id",
            "film_id",
            JoinKind::Inner,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 3); // film 3 has no poster

        let j = HashJoin::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
            "id",
            "film_id",
            JoinKind::Left,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 4);
        let unmatched = t.rows().iter().find(|r| r[0] == Value::Int(3)).unwrap();
        assert!(unmatched[3].is_null());
    }

    #[test]
    fn hash_join_skips_null_keys() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let left = Arc::new(
            Table::from_rows(
                "l",
                schema.clone(),
                vec![vec![Value::Null], vec![1i64.into()]],
            )
            .unwrap(),
        );
        let right = Arc::new(
            Table::from_rows("r", schema, vec![vec![Value::Null], vec![1i64.into()]]).unwrap(),
        );
        let j = HashJoin::new(
            Box::new(TableScan::new(left)),
            Box::new(TableScan::new(right)),
            "k",
            "k",
            JoinKind::Inner,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 1); // NULL never equals NULL
    }

    #[test]
    fn nested_loop_join_with_predicate() {
        let pred = Expr::col("id").eq(Expr::col("film_id"));
        let j = NestedLoopJoin::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
            pred,
        )
        .unwrap();
        let t = collect("j", Box::new(j)).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn aggregate_group_by() {
        let agg = HashAggregate::new(
            Box::new(TableScan::new(films())),
            vec!["year".into()],
            vec![
                Aggregate {
                    func: AggFunc::CountStar,
                    column: None,
                    output: "n".into(),
                },
                Aggregate {
                    func: AggFunc::Min,
                    column: Some("title".into()),
                    output: "first_title".into(),
                },
            ],
        )
        .unwrap();
        let t = collect("g", Box::new(agg)).unwrap();
        assert_eq!(t.len(), 3);
        let idx = t.find("year", &Value::Int(1991)).unwrap().unwrap();
        assert_eq!(t.cell(idx, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn aggregate_global_on_empty_input_emits_one_row() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let empty = Arc::new(Table::new("e", schema));
        let agg = HashAggregate::new(
            Box::new(TableScan::new(empty)),
            vec![],
            vec![
                Aggregate {
                    func: AggFunc::CountStar,
                    column: None,
                    output: "n".into(),
                },
                Aggregate {
                    func: AggFunc::Sum,
                    column: Some("x".into()),
                    output: "s".into(),
                },
            ],
        )
        .unwrap();
        let t = collect("g", Box::new(agg)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, "n").unwrap(), &Value::Int(0));
        assert!(t.cell(0, "s").unwrap().is_null());
    }

    #[test]
    fn aggregate_avg_ignores_nulls() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let tbl = Arc::new(
            Table::from_rows(
                "t",
                schema,
                vec![vec![2i64.into()], vec![Value::Null], vec![4i64.into()]],
            )
            .unwrap(),
        );
        let agg = HashAggregate::new(
            Box::new(TableScan::new(tbl)),
            vec![],
            vec![Aggregate {
                func: AggFunc::Avg,
                column: Some("x".into()),
                output: "a".into(),
            }],
        )
        .unwrap();
        let t = collect("g", Box::new(agg)).unwrap();
        assert_eq!(t.cell(0, "a").unwrap(), &Value::Float(3.0));
    }

    #[test]
    fn sort_desc_then_limit() {
        let sort = Sort::new(
            Box::new(TableScan::new(films())),
            vec![SortKey {
                column: "year".into(),
                desc: true,
            }],
        )
        .unwrap();
        let lim = Limit::new(Box::new(sort), 2);
        let t = collect("top", Box::new(lim)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, "year").unwrap(), &Value::Int(1991));
        assert_eq!(t.cell(1, "year").unwrap(), &Value::Int(1991));
    }

    #[test]
    fn sort_is_stable() {
        let sort = Sort::new(
            Box::new(TableScan::new(films())),
            vec![SortKey {
                column: "year".into(),
                desc: true,
            }],
        )
        .unwrap();
        let t = collect("s", Box::new(sort)).unwrap();
        // ids 1 and 4 both have year 1991; input order 1 then 4 preserved.
        assert_eq!(t.cell(0, "id").unwrap(), &Value::Int(1));
        assert_eq!(t.cell(1, "id").unwrap(), &Value::Int(4));
    }

    #[test]
    fn distinct_and_union() {
        let u = UnionAll::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(films())),
        )
        .unwrap();
        let d = Distinct::new(Box::new(u));
        let t = collect("d", Box::new(d)).unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn union_rejects_arity_mismatch() {
        let r = UnionAll::new(
            Box::new(TableScan::new(films())),
            Box::new(TableScan::new(posters())),
        );
        assert!(r.is_err());
    }

    /// Builds the scan→filter→project pipeline with a given scan batch size.
    fn pipeline(batch_size: usize) -> Box<dyn Operator> {
        let scan = Box::new(TableScan::new(films()).with_batch_size(batch_size));
        let filt = Box::new(Filter::new(scan, col_cmp("year", BinOp::Ge, 1988i64)));
        Box::new(
            Project::new(
                filt,
                vec![
                    ("title".into(), Expr::col("title")),
                    (
                        "age".into(),
                        Expr::lit(2026i64).bin(BinOp::Sub, Expr::col("year")),
                    ),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn batched_pipeline_matches_row_pipeline_at_any_batch_size() {
        let row_result = collect("r", pipeline(1024)).unwrap();
        for bs in [1usize, 2, 3, 1024] {
            let (batched, batches) = collect_batched("r", pipeline(bs)).unwrap();
            assert_eq!(batched, row_result, "batch size {bs}");
            assert!(batches >= 1);
        }
    }

    #[test]
    fn batched_join_and_aggregate_match_row_path() {
        let mk_join = || {
            Box::new(
                HashJoin::new(
                    Box::new(TableScan::new(films()).with_batch_size(2)),
                    Box::new(TableScan::new(posters())),
                    "id",
                    "film_id",
                    JoinKind::Left,
                )
                .unwrap(),
            )
        };
        let row = collect("j", mk_join()).unwrap();
        let (bat, _) = collect_batched("j", mk_join()).unwrap();
        assert_eq!(row, bat);

        let mk_agg = || {
            Box::new(
                HashAggregate::new(
                    Box::new(TableScan::new(films()).with_batch_size(3)),
                    vec!["year".into()],
                    vec![Aggregate {
                        func: AggFunc::CountStar,
                        column: None,
                        output: "n".into(),
                    }],
                )
                .unwrap(),
            )
        };
        let row = collect("g", mk_agg()).unwrap();
        let (bat, _) = collect_batched("g", mk_agg()).unwrap();
        assert_eq!(row, bat);
    }

    #[test]
    fn batched_join_bounds_output_batches_under_fanout() {
        // 40 left rows × 25 matches each = 1000 join rows; with capacity 8
        // the probe must emit many small batches, not one giant one.
        let schema = Schema::of(&[("k", DataType::Int)]);
        let left = Arc::new(
            Table::from_rows(
                "l",
                schema.clone(),
                (0..40).map(|_| vec![1i64.into()]).collect(),
            )
            .unwrap(),
        );
        let right = Arc::new(
            Table::from_rows("r", schema, (0..25).map(|_| vec![1i64.into()]).collect()).unwrap(),
        );
        let mk = |bs: usize| {
            Box::new(
                HashJoin::new(
                    Box::new(TableScan::new(Arc::clone(&left)).with_batch_size(bs)),
                    Box::new(TableScan::new(Arc::clone(&right))),
                    "k",
                    "k",
                    JoinKind::Inner,
                )
                .unwrap(),
            )
        };
        let row = collect("j", mk(8)).unwrap();
        assert_eq!(row.len(), 1000);
        let (bat, batches) = collect_batched("j", mk(8)).unwrap();
        assert_eq!(bat, row);
        // Capacity 8 with 25-row fan-out per probe row: at most one probe
        // row overshoots per batch, so every batch stays under 8 + 25 rows
        // and the stream needs many batches.
        assert!(batches >= 1000 / (8 + 25), "only {batches} batches");
    }

    #[test]
    fn batched_limit_stays_lazy_past_the_limit() {
        // Row 3 divides by zero; LIMIT 2 must never evaluate it, on either
        // drive and at any batch size.
        let schema = Schema::of(&[("x", DataType::Int)]);
        let t = Arc::new(
            Table::from_rows(
                "t",
                schema,
                vec![
                    vec![1i64.into()],
                    vec![2i64.into()],
                    vec![0i64.into()],
                    vec![4i64.into()],
                ],
            )
            .unwrap(),
        );
        let mk = |bs: usize| {
            let scan = Box::new(TableScan::new(Arc::clone(&t)).with_batch_size(bs));
            let proj = Box::new(
                Project::new(
                    scan,
                    vec![("q".into(), Expr::lit(10i64).bin(BinOp::Div, Expr::col("x")))],
                )
                .unwrap(),
            );
            Box::new(Limit::new(proj, 2))
        };
        let row = collect("out", mk(1024)).unwrap();
        assert_eq!(row.len(), 2);
        for bs in [1usize, 2, 1024] {
            let (bat, _) = collect_batched("out", mk(bs)).unwrap();
            assert_eq!(bat, row, "batch size {bs}");
        }
        // Without the limit, both drives hit the error.
        let scan = Box::new(TableScan::new(Arc::clone(&t)));
        let proj = Box::new(
            Project::new(
                scan,
                vec![("q".into(), Expr::lit(10i64).bin(BinOp::Div, Expr::col("x")))],
            )
            .unwrap(),
        );
        assert!(collect_batched("out", proj).is_err());
    }

    #[test]
    fn batched_limit_switches_protocols_over_a_join() {
        // LIMIT pulls whole batches while it can, then switches to the
        // row-wise tail; HashJoin must hand over its in-progress left
        // batch instead of dropping it.
        let mk = |n: usize| {
            let join = Box::new(
                HashJoin::new(
                    Box::new(TableScan::new(films()).with_batch_size(2)),
                    Box::new(TableScan::new(posters())),
                    "id",
                    "film_id",
                    JoinKind::Left,
                )
                .unwrap(),
            );
            Box::new(Limit::new(join, n))
        };
        for n in [0usize, 1, 2, 3, 4, 10] {
            let row = collect("out", mk(n)).unwrap();
            let (bat, _) = collect_batched("out", mk(n)).unwrap();
            assert_eq!(bat, row, "limit {n}");
        }
    }

    #[test]
    fn batched_distinct_dedupes_across_batches() {
        let mk = || {
            let u = Box::new(
                UnionAll::new(
                    Box::new(TableScan::new(films()).with_batch_size(3)),
                    Box::new(TableScan::new(films()).with_batch_size(3)),
                )
                .unwrap(),
            );
            Box::new(Distinct::new(u))
        };
        let row = collect("out", mk()).unwrap();
        let (bat, batches) = collect_batched("out", mk()).unwrap();
        assert_eq!(bat, row);
        assert_eq!(bat.len(), 4);
        assert!(batches >= 2); // second pass is all duplicates, skipped
    }

    #[test]
    fn batch_count_tracks_scan_batch_size() {
        let (_, batches) =
            collect_batched("r", Box::new(TableScan::new(films()).with_batch_size(2))).unwrap();
        assert_eq!(batches, 2); // 4 rows / 2 per batch
        let (_, batches) =
            collect_batched("r", Box::new(TableScan::new(films()).with_batch_size(1024))).unwrap();
        assert_eq!(batches, 1);
    }

    #[test]
    fn index_scan_yields_positions_in_order() {
        let t = films();
        let ix = crate::HashIndex::build(&t, "year").unwrap();
        let positions = ix.lookup(&Value::Int(1991)).to_vec();
        let scan = Box::new(IndexScan::new(Arc::clone(&t), positions));
        let got = collect("hits", scan).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got.cell(0, "id").unwrap(), &Value::Int(1));
        assert_eq!(got.cell(1, "id").unwrap(), &Value::Int(4));

        // Batched drive produces the same table.
        let ix_positions = ix.lookup(&Value::Int(1991)).to_vec();
        let scan = Box::new(IndexScan::new(t, ix_positions).with_batch_size(1));
        let (bat, batches) = collect_batched("hits", scan).unwrap();
        assert_eq!(bat, got);
        assert_eq!(batches, 2);
    }

    #[test]
    fn batched_filter_skips_empty_batches() {
        // With batch size 1, three of four batches fail the predicate; the
        // batched filter must keep pulling rather than report exhaustion.
        let scan = Box::new(TableScan::new(films()).with_batch_size(1));
        let filt = Box::new(Filter::new(scan, col_cmp("year", BinOp::Eq, 1975i64)));
        let (t, batches) = collect_batched("f", filt).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(batches, 1);
    }

    #[test]
    fn default_next_batch_adapts_row_operators() {
        // Sort has no native next_batch; the default adapter chunks next().
        let sort = Sort::new(
            Box::new(TableScan::new(films())),
            vec![SortKey {
                column: "year".into(),
                desc: false,
            }],
        )
        .unwrap();
        let (t, batches) = collect_batched("s", Box::new(sort)).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(batches, 1);
        assert_eq!(t.cell(0, "year").unwrap(), &Value::Int(1975));
    }
}
