//! Secondary indexes over tables.
//!
//! KathDB materializes every intermediate view (§3); hash and sorted indexes
//! make lineage lookups (`lid -> row`) and range predicates cheap.

use crate::{StorageError, Table, Value};
use std::collections::HashMap;

/// A hash index from column value to row positions.
#[derive(Debug, Clone)]
pub struct HashIndex {
    column: String,
    map: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    /// Builds the index over one column of `table`. NULLs are not indexed.
    /// Streams page by page on paged tables (bounded by the pool budget).
    pub fn build(table: &Table, column: &str) -> Result<Self, StorageError> {
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        table.for_each_in_column(column, |pos, v| {
            if !v.is_null() {
                map.entry(v.clone()).or_default().push(pos);
            }
            Ok(())
        })?;
        Ok(Self {
            column: column.to_string(),
            map,
        })
    }

    /// The indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Row positions matching `value` (empty slice if none).
    pub fn lookup(&self, value: &Value) -> &[usize] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A sorted index supporting range scans.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    column: String,
    // (value, row position) sorted by value's total order.
    entries: Vec<(Value, usize)>,
}

impl SortedIndex {
    /// Builds the index over one column of `table`. NULLs are not indexed.
    /// Streams page by page on paged tables (bounded by the pool budget).
    pub fn build(table: &Table, column: &str) -> Result<Self, StorageError> {
        let mut entries: Vec<(Value, usize)> = Vec::new();
        table.for_each_in_column(column, |pos, v| {
            if !v.is_null() {
                entries.push((v.clone(), pos));
            }
            Ok(())
        })?;
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(Self {
            column: column.to_string(),
            entries,
        })
    }

    /// The indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Row positions with `low <= value <= high` (either bound optional).
    pub fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<usize> {
        let start = match low {
            None => 0,
            Some(lo) => self
                .entries
                .partition_point(|(v, _)| v.total_cmp(lo) == std::cmp::Ordering::Less),
        };
        let end = match high {
            None => self.entries.len(),
            Some(hi) => self
                .entries
                .partition_point(|(v, _)| v.total_cmp(hi) != std::cmp::Ordering::Greater),
        };
        self.entries[start..end.max(start)]
            .iter()
            .map(|(_, p)| *p)
            .collect()
    }

    /// Row positions equal to `value`.
    pub fn lookup(&self, value: &Value) -> Vec<usize> {
        self.range(Some(value), Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::of(&[("id", DataType::Int), ("year", DataType::Int)]);
        Table::from_rows(
            "t",
            schema,
            vec![
                vec![1i64.into(), 1991i64.into()],
                vec![2i64.into(), 1988i64.into()],
                vec![3i64.into(), Value::Null],
                vec![4i64.into(), 1991i64.into()],
                vec![5i64.into(), 2001i64.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn hash_index_lookup() {
        let t = table();
        let ix = HashIndex::build(&t, "year").unwrap();
        assert_eq!(ix.lookup(&Value::Int(1991)), &[0, 3]);
        assert_eq!(ix.lookup(&Value::Int(1900)), &[] as &[usize]);
        assert_eq!(ix.distinct_keys(), 3);
        // NULLs are not indexed.
        assert_eq!(ix.lookup(&Value::Null), &[] as &[usize]);
    }

    #[test]
    fn sorted_index_range() {
        let t = table();
        let ix = SortedIndex::build(&t, "year").unwrap();
        let got = ix.range(Some(&Value::Int(1988)), Some(&Value::Int(1991)));
        assert_eq!(got, vec![1, 0, 3]);
        let all = ix.range(None, None);
        assert_eq!(all.len(), 4);
        let upper = ix.range(Some(&Value::Int(1992)), None);
        assert_eq!(upper, vec![4]);
    }

    #[test]
    fn sorted_index_point_lookup() {
        let t = table();
        let ix = SortedIndex::build(&t, "year").unwrap();
        assert_eq!(ix.lookup(&Value::Int(1991)), vec![0, 3]);
        assert!(ix.lookup(&Value::Int(1800)).is_empty());
    }

    #[test]
    fn empty_range_when_bounds_cross() {
        let t = table();
        let ix = SortedIndex::build(&t, "year").unwrap();
        let got = ix.range(Some(&Value::Int(2005)), Some(&Value::Int(1990)));
        assert!(got.is_empty());
    }

    #[test]
    fn unknown_column_is_error() {
        let t = table();
        assert!(HashIndex::build(&t, "nope").is_err());
        assert!(SortedIndex::build(&t, "nope").is_err());
    }
}
