//! Concurrent catalog sharing: MVCC snapshots over a group-commit WAL.
//!
//! [`SharedCatalog`] is the concurrency kernel of the engine. It holds the
//! catalog as an immutable, Arc-shared [`CatalogRef`] version chain:
//! readers take an O(1) [`SharedCatalog::snapshot`] and run entire queries
//! against that frozen version while writers publish new versions —
//! copy-on-write at the catalog level (a shallow [`Catalog::clone`]: table
//! `Arc`s and derived-state maps, never row data), never in place. Writers
//! serialize on a commit mutex; durability is amortized by a group-commit
//! protocol:
//!
//! 1. Under the commit lock, a committer applies its records to a clone of
//!    the *logical head* (the newest version, durable or not), appends the
//!    records to the WAL **without fsyncing** (framed in
//!    `Begin..Commit` for multi-statement transactions, bare for
//!    autocommits), and queues the new version on the pending list keyed
//!    by its end LSN.
//! 2. The first committer to find no fsync in flight becomes the *leader*:
//!    it captures the current WAL tail, releases the lock, fsyncs, then
//!    relocks and advances the durable LSN to the captured tail — one
//!    fsync acknowledges every transaction that appended while the
//!    previous fsync ran. Followers wait on a condvar until the durable
//!    LSN covers their commit (or a failed fsync bumps the generation).
//! 3. Only then does a pending version become the *published* snapshot
//!    ([`SharedCatalog::snapshot`]): readers never observe effects of a
//!    commit that has not been acknowledged as durable, so an
//!    acknowledged-read is never lost by a crash.
//!
//! On fsync failure the leader rolls back: pending versions are dropped,
//! the logical head returns to the last published version, and the WAL
//! tail rewinds over the unacknowledged bytes, so a later commit
//! overwrites them — the failure poisons nothing.

use crate::catalog::{Catalog, Joinability};
use crate::durable::{Durability, DurabilityStatus};
use crate::index::HashIndex;
use crate::io::with_retry;
use crate::pool::BufferPool;
use crate::stats::TableStats;
use crate::table::Table;
use crate::vecindex::VectorIndex;
use crate::wal::WalRecord;
use crate::StorageError;
use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One immutable catalog version. Cloning is O(1) (an `Arc` bump + a
/// counter); the catalog behind it is never mutated — writers publish a
/// *new* version instead. Dereferences to [`Catalog`], so every read-path
/// API works on a snapshot unchanged.
#[derive(Debug, Clone)]
pub struct CatalogRef {
    version: u64,
    inner: Arc<Catalog>,
}

impl CatalogRef {
    /// The version number (monotonically increasing per [`SharedCatalog`];
    /// published versions may skip numbers when a group fsync fails).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The catalog this version freezes.
    pub fn catalog(&self) -> &Catalog {
        &self.inner
    }
}

impl Deref for CatalogRef {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.inner
    }
}

/// Commit-side state, all behind one mutex (the commit lock).
struct CommitState {
    /// The logical head: newest version, including not-yet-durable
    /// commits. New commits apply on top of this; it is published to
    /// readers only once durable.
    head: CatalogRef,
    /// Committed-but-not-yet-durable versions, in append order, keyed by
    /// the WAL tail offset after their records (their end LSN).
    pending: VecDeque<(u64, CatalogRef)>,
    /// The durable directory, when attached.
    dur: Option<Durability>,
    /// WAL offset up to which data is known fsynced.
    durable_lsn: u64,
    /// Record count matching `durable_lsn` (for rewind on fsync failure).
    durable_records: u64,
    /// Whether a leader is fsyncing outside the lock right now.
    syncing: bool,
    /// Bumped when a group fsync fails: waiters whose commit was pending
    /// under the old generation report failure instead of blocking on an
    /// LSN that will never become durable.
    gen: u64,
    /// Next transaction id for `Begin..Commit` framing.
    next_txid: u64,
    /// When false, every commit fsyncs individually under the commit lock
    /// (the per-statement baseline `txn_bench` compares against).
    group_commit: bool,
    /// Fsyncs issued by commit leaders.
    group_fsyncs: u64,
    /// Commits those fsyncs acknowledged (mean group size =
    /// `group_commits / group_fsyncs`).
    group_commits: u64,
}

struct SharedInner {
    /// The published version: what [`SharedCatalog::snapshot`] hands out.
    /// Behind its own lock so readers never touch the commit mutex.
    current: parking_lot::RwLock<CatalogRef>,
    commit: Mutex<CommitState>,
    cv: Condvar,
    sessions: AtomicUsize,
}

/// A handle to the shared, versioned catalog. Clones are cheap and all
/// refer to the same state; the handle is `Send + Sync`, so sessions on
/// different threads read and commit concurrently.
#[derive(Clone)]
pub struct SharedCatalog {
    inner: Arc<SharedInner>,
}

impl std::fmt::Debug for SharedCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("SharedCatalog")
            .field("version", &snap.version())
            .field("tables", &snap.len())
            .finish()
    }
}

impl Default for SharedCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedCatalog {
    /// An empty shared catalog (version 1, no durable directory).
    pub fn new() -> Self {
        Self::from_catalog(Catalog::new())
    }

    /// Wraps an existing catalog as version 1.
    pub fn from_catalog(catalog: Catalog) -> Self {
        let head = CatalogRef {
            version: 1,
            inner: Arc::new(catalog),
        };
        SharedCatalog {
            inner: Arc::new(SharedInner {
                current: parking_lot::RwLock::new(head.clone()),
                commit: Mutex::new(CommitState {
                    head,
                    pending: VecDeque::new(),
                    dur: None,
                    durable_lsn: 0,
                    durable_records: 0,
                    syncing: false,
                    gen: 0,
                    next_txid: 1,
                    group_commit: true,
                    group_fsyncs: 0,
                    group_commits: 0,
                }),
                cv: Condvar::new(),
                sessions: AtomicUsize::new(0),
            }),
        }
    }

    /// An *independent* shared catalog seeded from the current snapshot
    /// (shallow clone — rows stay Arc-shared). Mutations on the fork are
    /// invisible here and vice versa; the optimizer uses this to trial
    /// candidate plans against sampled state without touching the live
    /// version chain.
    pub fn fork(&self) -> SharedCatalog {
        Self::from_catalog((*self.snapshot().inner).clone())
    }

    /// The published catalog version: an O(1) frozen snapshot containing
    /// every acknowledged commit and nothing else. Queries hold one
    /// `CatalogRef` for their whole run, so they never observe a torn
    /// update.
    pub fn snapshot(&self) -> CatalogRef {
        self.inner.current.read().clone()
    }

    /// The published version number.
    pub fn version(&self) -> u64 {
        self.inner.current.read().version()
    }

    // ---- commit path ------------------------------------------------------

    /// Locks the commit mutex, recovering from a poisoned lock (a panic in
    /// an apply closure must not wedge every other session forever — the
    /// state transitions below are crash-consistent anyway).
    fn lock(&self) -> MutexGuard<'_, CommitState> {
        self.inner
            .commit
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, CommitState>) -> MutexGuard<'a, CommitState> {
        self.inner
            .cv
            .wait(guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Locks the commit mutex and waits until no fsync is in flight and no
    /// version is pending (used by non-logged publishes and checkpoints,
    /// which must build on fully acknowledged state).
    fn lock_drained(&self) -> MutexGuard<'_, CommitState> {
        let mut st = self.lock();
        while st.syncing || !st.pending.is_empty() {
            st = self.wait(st);
        }
        st
    }

    /// Commits `records` atomically: applies them to a copy of the logical
    /// head via `apply`, appends them to the WAL (framed in
    /// `Begin..Commit` when `framed`, bare otherwise), and returns once
    /// the commit is *durable* and published to readers. With no durable
    /// directory attached the new version publishes immediately.
    ///
    /// If `apply` fails nothing is logged or published. If the group fsync
    /// fails the commit reports the error and the engine state is as if it
    /// never happened (WAL rewound, head rolled back).
    pub fn submit<T, E>(
        &self,
        records: &[WalRecord],
        framed: bool,
        apply: impl FnOnce(&mut Catalog) -> Result<T, E>,
    ) -> Result<T, E>
    where
        E: From<StorageError>,
    {
        let mut st = self.lock();
        if records.is_empty() || st.dur.is_none() {
            // Nothing to make durable: wait out any in-flight group (a new
            // version must not expose unacknowledged effects), then apply
            // and publish immediately.
            while st.syncing || !st.pending.is_empty() {
                st = self.wait(st);
            }
            let mut work = (*st.head.inner).clone();
            let out = apply(&mut work)?;
            let version = st.head.version + 1;
            let new_ref = CatalogRef {
                version,
                inner: Arc::new(work),
            };
            st.head = new_ref.clone();
            *self.inner.current.write() = new_ref;
            return Ok(out);
        }

        // Apply against the logical head first: a conflicting or invalid
        // record fails here, before anything touches the log.
        let mut work = (*st.head.inner).clone();
        let out = apply(&mut work)?;

        // Append (no fsync yet). A transaction's frames go down as one
        // contiguous write so a crash can never interleave two
        // transactions' frames.
        let txid = st.next_txid;
        let dur = st.dur.as_mut().expect("checked above");
        let append = if framed {
            let begin = WalRecord::Begin(txid);
            let commit = WalRecord::Commit(txid);
            dur.log_batch_nosync(
                std::iter::once(&begin)
                    .chain(records.iter())
                    .chain(std::iter::once(&commit)),
            )
        } else {
            dur.log_batch_nosync(records.iter())
        };
        let end_lsn = append?;
        if framed {
            st.next_txid += 1;
        }
        let version = st.head.version + 1;
        let new_ref = CatalogRef {
            version,
            inner: Arc::new(work),
        };
        st.head = new_ref.clone();
        st.pending.push_back((end_lsn, new_ref));

        if !st.group_commit {
            // Per-statement durability: fsync under the lock. This is the
            // baseline group commit is measured against.
            let res = st.dur.as_ref().expect("attached").sync_wal();
            return match res {
                Ok(()) => {
                    let records_now = st.dur.as_ref().expect("attached").wal_record_count();
                    self.advance_durable(&mut st, end_lsn, records_now);
                    self.inner.cv.notify_all();
                    Ok(out)
                }
                Err(e) => {
                    self.fail_pending(&mut st);
                    self.inner.cv.notify_all();
                    Err(e.into())
                }
            };
        }

        // Group commit: wait for a leader's fsync to cover us, or become
        // the leader.
        let my_gen = st.gen;
        loop {
            if st.durable_lsn >= end_lsn {
                return Ok(out);
            }
            if st.gen != my_gen {
                return Err(StorageError::Io(
                    "group commit fsync failed; transaction rolled back".to_string(),
                )
                .into());
            }
            if !st.syncing {
                // Leader: capture the tail, fsync *outside* the lock so
                // other committers keep appending meanwhile — that overlap
                // is what batches their commits into the next fsync.
                st.syncing = true;
                let dur = st.dur.as_ref().expect("attached");
                let target_lsn = dur.wal_tail();
                let target_records = dur.wal_record_count();
                let (io, path, retry) = dur.wal_sync_handles();
                drop(st);
                let res = with_retry(&retry, || io.fsync(&path)).map_err(StorageError::from);
                st = self.lock();
                st.syncing = false;
                match res {
                    Ok(()) => {
                        self.advance_durable(&mut st, target_lsn, target_records);
                        self.inner.cv.notify_all();
                        // Loop: durable_lsn now covers our end_lsn.
                    }
                    Err(e) => {
                        self.fail_pending(&mut st);
                        self.inner.cv.notify_all();
                        return Err(e.into());
                    }
                }
            } else {
                st = self.wait(st);
            }
        }
    }

    /// Marks everything up to `lsn` durable and publishes the newest
    /// pending version it covers.
    fn advance_durable(&self, st: &mut CommitState, lsn: u64, records: u64) {
        st.durable_lsn = st.durable_lsn.max(lsn);
        st.durable_records = st.durable_records.max(records);
        let mut published = None;
        let mut acked = 0u64;
        while st
            .pending
            .front()
            .is_some_and(|(end, _)| *end <= st.durable_lsn)
        {
            published = st.pending.pop_front().map(|(_, v)| v);
            acked += 1;
        }
        if let Some(v) = published {
            *self.inner.current.write() = v;
        }
        st.group_fsyncs += 1;
        st.group_commits += acked;
    }

    /// Rolls back after a failed fsync: unacknowledged versions are
    /// dropped, the head returns to the published version, and the WAL
    /// tail rewinds over the unacknowledged bytes.
    fn fail_pending(&self, st: &mut CommitState) {
        st.gen += 1;
        st.pending.clear();
        st.head = self.inner.current.read().clone();
        let (lsn, records) = (st.durable_lsn, st.durable_records);
        if let Some(dur) = st.dur.as_mut() {
            dur.rewind_wal(lsn, records);
        }
    }

    /// Publishes an infallible non-logged mutation (materializations,
    /// index builds — state that is derivable and therefore not
    /// write-ahead logged) as a new version.
    pub fn publish<T>(&self, f: impl FnOnce(&mut Catalog) -> T) -> T {
        let mut st = self.lock_drained();
        let mut work = (*st.head.inner).clone();
        let out = f(&mut work);
        let version = st.head.version + 1;
        let new_ref = CatalogRef {
            version,
            inner: Arc::new(work),
        };
        st.head = new_ref.clone();
        *self.inner.current.write() = new_ref;
        out
    }

    /// [`SharedCatalog::publish`] for fallible mutations: on `Err` the
    /// working copy is discarded and no version is published.
    pub fn try_publish<T, E>(&self, f: impl FnOnce(&mut Catalog) -> Result<T, E>) -> Result<T, E> {
        let mut st = self.lock_drained();
        let mut work = (*st.head.inner).clone();
        let out = f(&mut work)?;
        let version = st.head.version + 1;
        let new_ref = CatalogRef {
            version,
            inner: Arc::new(work),
        };
        st.head = new_ref.clone();
        *self.inner.current.write() = new_ref;
        Ok(out)
    }

    // ---- durability management -------------------------------------------

    /// Attaches a durable directory: subsequent commits are write-ahead
    /// logged through it. `recovered_max_txid` seeds the txid allocator
    /// above every id already in the log.
    pub fn attach(&self, dur: Durability, recovered_max_txid: u64) {
        let mut st = self.lock_drained();
        st.durable_lsn = dur.wal_tail();
        st.durable_records = dur.wal_record_count();
        st.next_txid = recovered_max_txid + 1;
        st.group_fsyncs = 0;
        st.group_commits = 0;
        st.dur = Some(dur);
    }

    /// Detaches and returns the durable directory, if any. Waits for
    /// in-flight commits to drain first.
    pub fn detach(&self) -> Option<Durability> {
        let mut st = self.lock_drained();
        st.durable_lsn = 0;
        st.durable_records = 0;
        st.dur.take()
    }

    /// Whether a durable directory is attached.
    pub fn is_durable(&self) -> bool {
        self.lock().dur.is_some()
    }

    /// Records appended to the active WAL segment since open or the last
    /// checkpoint (0 when not durable).
    pub fn wal_appended(&self) -> u64 {
        self.lock()
            .dur
            .as_ref()
            .map(|d| d.appended_records())
            .unwrap_or(0)
    }

    /// Durability status with live group-commit counters filled in.
    pub fn status(&self) -> Option<DurabilityStatus> {
        let st = self.lock();
        st.dur.as_ref().map(|d| {
            let mut s = d.status();
            s.group_fsyncs = st.group_fsyncs;
            s.group_commits = st.group_commits;
            s
        })
    }

    /// Replaces the entire state with a recovered catalog + its durable
    /// directory (the tail end of `KathDB::open_dir`).
    pub fn install_recovered(&self, catalog: Catalog, dur: Durability, recovered_max_txid: u64) {
        let mut st = self.lock_drained();
        let version = st.head.version + 1;
        let new_ref = CatalogRef {
            version,
            inner: Arc::new(catalog),
        };
        st.head = new_ref.clone();
        *self.inner.current.write() = new_ref;
        st.durable_lsn = dur.wal_tail();
        st.durable_records = dur.wal_record_count();
        st.next_txid = recovered_max_txid + 1;
        st.group_fsyncs = 0;
        st.group_commits = 0;
        st.dur = Some(dur);
    }

    /// Replaces the entire state with `catalog` and no durable directory
    /// (used when an `open_dir` attempt fails and the pre-open state is
    /// restored).
    pub fn install_plain(&self, catalog: Catalog) {
        let mut st = self.lock_drained();
        let version = st.head.version + 1;
        let new_ref = CatalogRef {
            version,
            inner: Arc::new(catalog),
        };
        st.head = new_ref.clone();
        *self.inner.current.write() = new_ref;
        st.durable_lsn = 0;
        st.durable_records = 0;
        st.dur = None;
    }

    /// Checkpoints the published state through the attached durable
    /// directory: waits for in-flight commits to drain, snapshots every
    /// table, rotates the WAL, and publishes the paged table
    /// representations the checkpoint produced. Returns the new epoch.
    pub fn checkpoint(&self, functions_json: Option<&str>) -> Result<u64, StorageError> {
        let mut st = self.lock_drained();
        if st.dur.is_none() {
            return Err(StorageError::Io(
                "no durable directory attached".to_string(),
            ));
        }
        let head = st.head.clone();
        let tables: Vec<Arc<Table>> = head
            .table_names()
            .iter()
            .filter_map(|n| head.get(n).ok())
            .collect();
        let pool = Arc::clone(head.pool());
        let dur = st.dur.as_mut().expect("checked above");
        let (epoch, paged) = dur.checkpoint(&tables, &pool, functions_json)?;
        // The WAL rotated: the new segment starts empty and durable.
        let (tail, record_count) = (dur.wal_tail(), dur.wal_record_count());
        st.durable_lsn = tail;
        st.durable_records = record_count;
        // Swap the paged representations in (identical contents, so
        // derived state stays valid) and publish.
        let mut work = (*st.head.inner).clone();
        for t in paged {
            work.swap_in_identical(t);
        }
        let version = st.head.version + 1;
        let new_ref = CatalogRef {
            version,
            inner: Arc::new(work),
        };
        st.head = new_ref.clone();
        *self.inner.current.write() = new_ref;
        Ok(epoch)
    }

    /// Switches between group commit (default) and per-statement fsync.
    pub fn set_group_commit(&self, on: bool) {
        self.lock_drained().group_commit = on;
    }

    /// Whether group commit is enabled.
    pub fn group_commit(&self) -> bool {
        self.lock().group_commit
    }

    // ---- session accounting ----------------------------------------------

    /// Registers a session handle; returns the new count.
    pub fn register_session(&self) -> usize {
        self.inner.sessions.fetch_add(1, Ordering::Relaxed) + 1 // lint: relaxed-ok — session bookkeeping for diagnostics; commit safety rests on the commit mutex
    }

    /// Unregisters a session handle.
    pub fn unregister_session(&self) {
        self.inner.sessions.fetch_sub(1, Ordering::Relaxed); // lint: relaxed-ok — session bookkeeping for diagnostics; commit safety rests on the commit mutex
    }

    /// Live session handles (excluding the owning facade).
    pub fn session_count(&self) -> usize {
        self.inner.sessions.load(Ordering::Relaxed) // lint: relaxed-ok — session bookkeeping for diagnostics; commit safety rests on the commit mutex
    }

    // ---- read-path passthroughs (each takes one fresh snapshot) ----------

    /// [`Catalog::get`] against the current snapshot.
    pub fn get(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.snapshot().get(name)
    }

    /// [`Catalog::contains`] against the current snapshot.
    pub fn contains(&self, name: &str) -> bool {
        self.snapshot().contains(name)
    }

    /// [`Catalog::table_names`] against the current snapshot (owned, since
    /// the snapshot is released on return).
    pub fn table_names(&self) -> Vec<String> {
        self.snapshot()
            .table_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// [`Catalog::len`] against the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// [`Catalog::is_empty`] against the current snapshot.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// [`Catalog::describe`] against the current snapshot.
    pub fn describe(&self) -> String {
        self.snapshot().describe()
    }

    /// [`Catalog::sample_rows`] against the current snapshot.
    pub fn sample_rows(&self, name: &str, n: usize) -> Result<Table, StorageError> {
        self.snapshot().sample_rows(name, n)
    }

    /// [`Catalog::stats`] against the current snapshot.
    pub fn stats(&self, name: &str) -> Result<TableStats, StorageError> {
        self.snapshot().stats(name)
    }

    /// [`Catalog::cached_stats`] against the current snapshot.
    pub fn cached_stats(&self, name: &str) -> Option<TableStats> {
        self.snapshot().cached_stats(name)
    }

    /// [`Catalog::joinability`] against the current snapshot.
    pub fn joinability(
        &self,
        left: &str,
        left_col: &str,
        right: &str,
        right_col: &str,
    ) -> Result<Joinability, StorageError> {
        self.snapshot()
            .joinability(left, left_col, right, right_col)
    }

    /// [`Catalog::index_on`] against the current snapshot.
    pub fn index_on(&self, table: &str, column: &str) -> Option<Arc<HashIndex>> {
        self.snapshot().index_on(table, column)
    }

    /// [`Catalog::indexed_columns`] against the current snapshot.
    pub fn indexed_columns(&self, table: &str) -> Vec<String> {
        self.snapshot().indexed_columns(table)
    }

    /// [`Catalog::vector_index_for`] against the current snapshot.
    pub fn vector_index_for(
        &self,
        table: &str,
        column: &str,
    ) -> Result<Arc<VectorIndex>, StorageError> {
        self.snapshot().vector_index_for(table, column)
    }

    /// [`Catalog::vector_index_on`] against the current snapshot.
    pub fn vector_index_on(&self, table: &str, column: &str) -> Option<Arc<VectorIndex>> {
        self.snapshot().vector_index_on(table, column)
    }

    /// [`Catalog::vector_indexed_columns`] against the current snapshot.
    pub fn vector_indexed_columns(&self, table: &str) -> Vec<String> {
        self.snapshot().vector_indexed_columns(table)
    }

    /// [`Catalog::pending_refreshes`] against the current snapshot.
    pub fn pending_refreshes(&self) -> usize {
        self.snapshot().pending_refreshes()
    }

    /// [`Catalog::derived_rebuilds`] against the current snapshot.
    pub fn derived_rebuilds(&self) -> usize {
        self.snapshot().derived_rebuilds()
    }

    /// The buffer pool shared by every version of this catalog.
    pub fn pool(&self) -> Arc<BufferPool> {
        Arc::clone(self.snapshot().pool())
    }

    /// [`Catalog::set_pool_budget`] (the pool is shared across versions,
    /// so this affects all of them).
    pub fn set_pool_budget(&self, pages: usize) {
        self.snapshot().set_pool_budget(pages);
    }

    // ---- non-logged mutator passthroughs (each publishes a version) ------

    /// [`Catalog::register`] as a published version.
    pub fn register(&self, table: Table) -> Result<Arc<Table>, StorageError> {
        self.try_publish(|c| c.register(table))
    }

    /// [`Catalog::register_or_replace`] as a published version.
    pub fn register_or_replace(&self, table: Table) -> Arc<Table> {
        self.publish(|c| c.register_or_replace(table))
    }

    /// [`Catalog::drop_table`] as a published version.
    pub fn drop_table(&self, name: &str) -> Result<(), StorageError> {
        self.try_publish(|c| c.drop_table(name))
    }

    /// [`Catalog::create_index`] as a published version.
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), StorageError> {
        self.try_publish(|c| c.create_index(table, column))
    }

    /// [`Catalog::analyze`] as a published version.
    pub fn analyze(&self, table: &str) -> Result<TableStats, StorageError> {
        self.try_publish(|c| c.analyze(table))
    }

    /// [`Catalog::page_table`] as a published version.
    pub fn page_table(&self, name: &str, page_rows: usize) -> Result<bool, StorageError> {
        self.try_publish(|c| c.page_table(name, page_rows))
    }

    /// [`Catalog::swap_in_identical`] as a published version.
    pub fn swap_in_identical(&self, table: Arc<Table>) {
        self.publish(|c| c.swap_in_identical(table))
    }

    /// [`Catalog::drop_vector_index`] as a published version.
    pub fn drop_vector_index(&self, table: &str, column: &str) -> bool {
        self.publish(|c| c.drop_vector_index(table, column))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Schema, Value};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kathdb_txn_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn kv(rows: &[(i64, &str)]) -> Table {
        Table::from_rows(
            "kv",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Str)]),
            rows.iter()
                .map(|(k, v)| vec![Value::Int(*k), Value::Str(v.to_string())])
                .collect(),
        )
        .unwrap()
    }

    fn insert(k: i64, v: &str) -> WalRecord {
        WalRecord::Insert {
            table: "kv".into(),
            rows: vec![vec![k.into(), v.into()]],
        }
    }

    fn apply(c: &mut Catalog, r: &WalRecord) -> Result<(), StorageError> {
        match r {
            WalRecord::CreateTable(t) => c.register(t.clone()).map(|_| ()),
            WalRecord::Insert { table, rows } => {
                let mut t = (*c.get(table)?).clone();
                for row in rows {
                    t.push(row.clone())?;
                }
                c.register_or_replace(t);
                Ok(())
            }
            WalRecord::DropTable(n) => c.drop_table(n),
            _ => Ok(()),
        }
    }

    #[test]
    fn snapshots_are_frozen_versions() {
        let shared = SharedCatalog::new();
        shared.register(kv(&[(1, "a")])).unwrap();
        let snap = shared.snapshot();
        assert_eq!(snap.get("kv").unwrap().len(), 1);
        // A later publish is invisible to the held snapshot…
        shared
            .submit::<(), StorageError>(&[], false, |c| apply(c, &insert(2, "b")))
            .unwrap();
        assert_eq!(snap.get("kv").unwrap().len(), 1);
        // …and visible to a fresh one, under a higher version.
        let newer = shared.snapshot();
        assert_eq!(newer.get("kv").unwrap().len(), 2);
        assert!(newer.version() > snap.version());
    }

    #[test]
    fn snapshot_creation_shares_row_storage() {
        // Satellite regression: a snapshot of a 100k-row table must not
        // copy row data — the table Arc in the snapshot is the *same
        // allocation* as the one in the live catalog.
        let rows: Vec<(i64, String)> = (0..100_000).map(|i| (i, format!("row-{i}"))).collect();
        let refs: Vec<(i64, &str)> = rows.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let shared = SharedCatalog::new();
        let live = shared.register(kv(&refs)).unwrap();
        assert_eq!(live.len(), 100_000);
        let snap = shared.snapshot();
        assert!(
            Arc::ptr_eq(&live, &snap.get("kv").unwrap()),
            "snapshot must share the table allocation, not copy rows"
        );
        // And taking many snapshots is O(1) each — same allocation every
        // time, no matter how many versions exist.
        for _ in 0..100 {
            assert!(Arc::ptr_eq(&live, &shared.snapshot().get("kv").unwrap()));
        }
    }

    #[test]
    fn failed_apply_publishes_nothing() {
        let shared = SharedCatalog::new();
        shared.register(kv(&[(1, "a")])).unwrap();
        let v = shared.version();
        let err = shared.submit::<(), StorageError>(&[insert(1, "x")], false, |_c| {
            Err(StorageError::UnknownTable("boom".into()))
        });
        assert!(err.is_err());
        assert_eq!(shared.version(), v, "failed apply must not publish");
        assert_eq!(shared.get("kv").unwrap().len(), 1);
    }

    #[test]
    fn durable_commits_are_published_and_replayable() {
        let dir = tmp("durable");
        let pool = Arc::new(BufferPool::with_budget(64));
        let shared = SharedCatalog::new();
        let (dur, rec) = Durability::open(&dir, &pool).unwrap();
        assert_eq!(rec.max_txid, 0);
        shared.attach(dur, rec.max_txid);
        let create = WalRecord::CreateTable(kv(&[]));
        shared
            .submit::<(), StorageError>(std::slice::from_ref(&create), false, |c| apply(c, &create))
            .unwrap();
        // A framed two-record transaction.
        let recs = [insert(1, "a"), insert(2, "b")];
        shared
            .submit::<(), StorageError>(&recs, true, |c| recs.iter().try_for_each(|r| apply(c, r)))
            .unwrap();
        assert_eq!(shared.get("kv").unwrap().len(), 2);
        let status = shared.status().unwrap();
        assert!(status.group_fsyncs >= 1);
        assert!(status.group_commits >= 1);
        // 1 bare + Begin + 2 inserts + Commit = 5 records on disk.
        assert_eq!(status.wal_records, 5);
        drop(shared);
        // Recovery replays the bare record and the committed span.
        let (_, rec) = Durability::open(&dir, &pool).unwrap();
        assert_eq!(rec.wal_records.len(), 3);
        assert_eq!(rec.committed_txns, 1);
        assert_eq!(rec.max_txid, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fsync_failure_rolls_back_and_does_not_poison() {
        use crate::{FaultKind, FaultPlan, IoOp};
        let dir = tmp("fsyncfail");
        let io = crate::Io::real();
        let pool = Arc::new(BufferPool::with_budget_io(64, io.clone()));
        let shared = SharedCatalog::new();
        let (dur, rec) = Durability::open(&dir, &pool).unwrap();
        shared.attach(dur, rec.max_txid);
        let create = WalRecord::CreateTable(kv(&[]));
        shared
            .submit::<(), StorageError>(std::slice::from_ref(&create), false, |c| apply(c, &create))
            .unwrap();
        let v = shared.version();
        // Every fsync fails permanently: the commit must report an error…
        io.install_faults(
            FaultPlan::probabilistic(1, 1.0)
                .with_kinds(&[FaultKind::Enospc])
                .on_ops(&[IoOp::Fsync]),
        );
        let r = insert(1, "lost");
        let err =
            shared.submit::<(), StorageError>(std::slice::from_ref(&r), false, |c| apply(c, &r));
        assert!(err.is_err());
        io.clear_faults();
        // …and leave no trace: version unchanged, reads see no new row.
        assert_eq!(shared.version(), v);
        assert_eq!(shared.get("kv").unwrap().len(), 0);
        // The coordinator is not poisoned: the next commit succeeds and
        // lands where the rolled-back bytes were.
        let r2 = insert(2, "kept");
        shared
            .submit::<(), StorageError>(std::slice::from_ref(&r2), false, |c| apply(c, &r2))
            .unwrap();
        assert_eq!(shared.get("kv").unwrap().len(), 1);
        drop(shared);
        let (_, rec) = Durability::open(&dir, &pool).unwrap();
        assert_eq!(rec.wal_records, vec![create, r2]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_writers_group_their_fsyncs() {
        let dir = tmp("group");
        let pool = Arc::new(BufferPool::with_budget(64));
        let shared = SharedCatalog::new();
        let (dur, rec) = Durability::open(&dir, &pool).unwrap();
        shared.attach(dur, rec.max_txid);
        let create = WalRecord::CreateTable(kv(&[]));
        shared
            .submit::<(), StorageError>(std::slice::from_ref(&create), false, |c| apply(c, &create))
            .unwrap();
        let writers = 8;
        let per_writer = 10;
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        let r = insert((w * per_writer + i) as i64, "x");
                        shared
                            .submit::<(), StorageError>(std::slice::from_ref(&r), true, |c| {
                                apply(c, &r)
                            })
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.get("kv").unwrap().len(), writers * per_writer);
        let status = shared.status().unwrap();
        let commits = (writers * per_writer) as u64 + 1;
        assert_eq!(status.group_commits, commits);
        assert!(
            status.group_fsyncs <= commits,
            "leader fsyncs must not exceed commits ({} vs {commits})",
            status.group_fsyncs
        );
        drop(shared);
        let (_, rec) = Durability::open(&dir, &pool).unwrap();
        assert_eq!(rec.committed_txns, (writers * per_writer) as u64);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn forks_are_independent() {
        let shared = SharedCatalog::new();
        shared.register(kv(&[(1, "a")])).unwrap();
        let fork = shared.fork();
        fork.register_or_replace(kv(&[(1, "a"), (2, "b")]));
        assert_eq!(fork.get("kv").unwrap().len(), 2);
        assert_eq!(shared.get("kv").unwrap().len(), 1, "fork must not leak");
    }

    #[test]
    fn session_counter_tracks_handles() {
        let shared = SharedCatalog::new();
        assert_eq!(shared.session_count(), 0);
        assert_eq!(shared.register_session(), 1);
        assert_eq!(shared.register_session(), 2);
        shared.unregister_session();
        assert_eq!(shared.session_count(), 1);
    }

    #[test]
    fn shared_catalog_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedCatalog>();
        assert_send_sync::<CatalogRef>();
    }
}
